"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

Where :mod:`repro.tracing.paraver` targets the BSC toolchain the paper
used, this module targets the format every browser ships a viewer for:
the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
in its JSON *object* form.  Load the file at https://ui.perfetto.dev
and the Figure 4 pathology is visible without any BSC tooling: long
``alltoallv`` wait slices on every rank, with message flow arrows
converging on the congested switch windows.

Layout of the produced document:

* one *thread* per MPI rank (pid 1), carrying an ``X`` (complete)
  slice per recorded state interval, categorised by the state's kind;
* one ``s``/``f`` flow-event pair per stamped message, so Perfetto
  draws the send→receive arrows the happens-before graph walks;
* an instant event (``i``, global scope) per fault record;
* derived counter tracks (pid 2): messages in flight and cumulative
  payload bytes, sampled at every send/arrival edge;
* one end-of-trace counter sample per non-volatile metric when a
  :class:`~repro.metrics.registry.MetricsRegistry` is passed, so the
  run's scalar metrics ride along inside the trace file.

Times are microseconds (the format's native unit).
:func:`validate_chrome_trace` structurally validates a document —
phase-specific required fields, flow pairing, monotone flow timestamps
— without any external schema dependency, and is what the conformance
tests and the CLI's export path both run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import TraceError
from repro.metrics.export import registry_to_dict
from repro.metrics.registry import MetricsRegistry, NullRegistry
from repro.tracing.recorder import TraceRecorder

#: Bump when the exported document layout changes shape.
CHROME_SCHEMA_VERSION = 1

#: Event phases the exporter emits (subset of the format).
_EMITTED_PHASES = ("M", "X", "s", "f", "i", "C")

#: Phases the validator accepts (emitted set plus duration events, so
#: hand-edited or third-party documents still validate).
_KNOWN_PHASES = frozenset(_EMITTED_PHASES) | {"B", "E", "t"}

_METADATA_NAMES = frozenset(
    {"process_name", "thread_name", "process_sort_index", "thread_sort_index"}
)

_RANKS_PID = 1
_COUNTERS_PID = 2
_SECONDS_TO_US = 1e6


def _metadata(name: str, pid: int, tid: int, args: dict[str, Any]) -> dict:
    return {"ph": "M", "name": name, "pid": pid, "tid": tid, "args": args}


def _counter(name: str, ts_us: float, series: Mapping[str, float]) -> dict:
    return {
        "ph": "C",
        "name": name,
        "pid": _COUNTERS_PID,
        "tid": 0,
        "ts": ts_us,
        "args": dict(series),
    }


def _derived_counter_events(recorder: TraceRecorder) -> list[dict]:
    """Messages-in-flight and cumulative-bytes tracks from the comms."""
    edges: list[tuple[float, int, int, int]] = []
    for comm in recorder.comms:
        edges.append((comm.send_time, 0, +1, comm.nbytes))
        edges.append((comm.arrival_time, 1, -1, 0))
    edges.sort()
    events: list[dict] = []
    in_flight = 0
    total_bytes = 0
    for time_s, _order, delta, nbytes in edges:
        in_flight += delta
        total_bytes += nbytes
        ts = time_s * _SECONDS_TO_US
        events.append(_counter("messages in flight", ts, {"messages": in_flight}))
        if nbytes:
            events.append(
                _counter("payload sent", ts, {"mbytes": total_bytes / 1e6})
            )
    return events


def _registry_counter_events(
    registry: MetricsRegistry | NullRegistry, end_ts_us: float
) -> list[dict]:
    """One end-of-trace sample per non-volatile scalar metric."""
    payload = registry_to_dict(registry, deterministic=True)
    events: list[dict] = []
    for section in ("counters", "gauges"):
        for name, record in sorted(payload[section].items()):
            value = record.get("value")
            if value is None:
                continue
            events.append(_counter(name, end_ts_us, {"value": value}))
    return events


def export_chrome_trace(
    recorder: TraceRecorder,
    *,
    registry: MetricsRegistry | NullRegistry | None = None,
) -> dict[str, Any]:
    """Render *recorder* as a Chrome trace-event document (a dict).

    The output is deterministic: same trace (and registry state), same
    document.  Pass it to :func:`json.dumps`, or use
    :func:`write_chrome_trace` which also validates.
    """
    events: list[dict] = [
        _metadata("process_name", _RANKS_PID, 0, {"name": "mpi ranks"}),
        _metadata("process_name", _COUNTERS_PID, 0, {"name": "metrics"}),
    ]
    num_ranks = recorder.num_ranks
    for rank in range(num_ranks):
        events.append(
            _metadata("thread_name", _RANKS_PID, rank, {"name": f"rank {rank}"})
        )
        events.append(
            _metadata("thread_sort_index", _RANKS_PID, rank, {"sort_index": rank})
        )

    for state in sorted(
        recorder.states, key=lambda s: (s.rank, s.t0, s.t1, s.label)
    ):
        event = {
            "ph": "X",
            "name": state.label,
            "cat": state.kind,
            "pid": _RANKS_PID,
            "tid": state.rank,
            "ts": state.t0 * _SECONDS_TO_US,
            "dur": state.duration * _SECONDS_TO_US,
        }
        if state.cause >= 0:
            event["args"] = {"cause": state.cause}
        events.append(event)

    for comm in sorted(recorder.comms, key=lambda c: (c.seq, c.send_time)):
        if comm.seq < 0:
            continue  # unstamped messages have no stable flow identity
        flow = {
            "cat": "message",
            "name": comm.label,
            "id": comm.seq,
            "pid": _RANKS_PID,
        }
        events.append(
            {
                **flow,
                "ph": "s",
                "tid": comm.src,
                "ts": comm.send_time * _SECONDS_TO_US,
            }
        )
        events.append(
            {
                **flow,
                "ph": "f",
                "bp": "e",
                "tid": comm.dst,
                "ts": comm.arrival_time * _SECONDS_TO_US,
            }
        )

    for fault in recorder.faults:
        events.append(
            {
                "ph": "i",
                "s": "g",
                "name": f"{fault.kind}:{fault.target}",
                "cat": "fault",
                "pid": _RANKS_PID,
                "tid": 0,
                "ts": fault.time_s * _SECONDS_TO_US,
                "args": {key: value for key, value in fault.detail},
            }
        )

    events.extend(_derived_counter_events(recorder))
    if registry is not None:
        events.extend(
            _registry_counter_events(
                registry, recorder.end_time * _SECONDS_TO_US
            )
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": CHROME_SCHEMA_VERSION,
            "num_ranks": num_ranks,
            "end_time_s": recorder.end_time,
            "generator": "repro.tracing.chrome",
        },
    }


def write_chrome_trace(
    path: str | Path,
    recorder: TraceRecorder,
    *,
    registry: MetricsRegistry | NullRegistry | None = None,
) -> dict[str, Any]:
    """Export, validate, and write the document as JSON; returns it."""
    document = export_chrome_trace(recorder, registry=registry)
    validate_chrome_trace(document)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(document, sort_keys=True, allow_nan=False) + "\n"
    )
    return document


# -- validation -------------------------------------------------------------


def _require(condition: bool, where: str, problem: str) -> None:
    if not condition:
        raise TraceError(f"invalid chrome trace: {where}: {problem}")


def _check_common(event: Mapping[str, Any], where: str) -> None:
    _require(isinstance(event.get("pid"), int), where, "pid must be an int")
    _require(isinstance(event.get("tid"), int), where, "tid must be an int")
    name = event.get("name")
    _require(isinstance(name, str) and name != "", where, "name must be a string")


def validate_chrome_trace(document: Any) -> None:
    """Structurally validate a trace-event JSON document.

    Checks the JSON-object-format envelope, per-phase required fields,
    that every flow end (``f``) has a matching earlier start (``s``)
    with the same id, and that counter samples carry numeric series.
    Raises :class:`TraceError` naming the first offending event.
    """
    _require(isinstance(document, dict), "document", "must be a JSON object")
    events = document.get("traceEvents")
    _require(isinstance(events, list), "document", "traceEvents must be a list")
    unit = document.get("displayTimeUnit", "ms")
    _require(unit in ("ms", "ns"), "document", f"bad displayTimeUnit {unit!r}")

    flow_starts: dict[Any, float] = {}
    flow_ends: list[tuple[str, Any, float]] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        _require(isinstance(event, dict), where, "must be an object")
        phase = event.get("ph")
        _require(phase in _KNOWN_PHASES, where, f"unknown phase {phase!r}")
        _check_common(event, where)
        if phase == "M":
            _require(
                event["name"] in _METADATA_NAMES,
                where,
                f"unknown metadata {event['name']!r}",
            )
            _require(
                isinstance(event.get("args"), dict), where, "metadata needs args"
            )
            continue
        ts = event.get("ts")
        _require(
            isinstance(ts, (int, float)) and ts >= 0,
            where,
            "ts must be a non-negative number",
        )
        if phase == "X":
            dur = event.get("dur")
            _require(
                isinstance(dur, (int, float)) and dur >= 0,
                where,
                "complete events need a non-negative dur",
            )
        elif phase in ("s", "f", "t"):
            _require("id" in event, where, "flow events need an id")
            key = (event.get("cat"), event["id"])
            if phase == "s":
                _require(
                    key not in flow_starts, where, f"duplicate flow start {key}"
                )
                flow_starts[key] = ts
            elif phase == "f":
                flow_ends.append((where, key, ts))
        elif phase == "C":
            args = event.get("args")
            _require(
                isinstance(args, dict) and args != {},
                where,
                "counter events need a non-empty args dict",
            )
            _require(
                all(isinstance(v, (int, float)) for v in args.values()),
                where,
                "counter series must be numeric",
            )
        elif phase == "i":
            _require(
                event.get("s", "t") in ("g", "p", "t"),
                where,
                f"bad instant scope {event.get('s')!r}",
            )
    for where, key, ts in flow_ends:
        _require(key in flow_starts, where, f"flow end {key} without a start")
        _require(
            ts >= flow_starts[key],
            where,
            f"flow {key} ends before it starts",
        )
