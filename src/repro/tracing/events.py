"""Trace event records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import TraceError


#: The state kinds the MPI runtime emits; ``"state"`` is the neutral
#: default for hand-built traces and parsed ``.prv`` files.
STATE_KINDS = ("state", "compute", "send", "wait", "retry")


@dataclass(frozen=True)
class StateEvent:
    """One rank spent [t0, t1] in a named state (compute, send, ...).

    ``kind`` classifies the interval for the happens-before graph
    (``"compute"``, ``"send"``, ``"wait"``, ``"retry"``; plain
    ``"state"`` when unknown).  ``cause`` is the causality link the
    critical-path walk follows: for a ``"wait"`` interval it is the
    :attr:`CommEvent.seq` of the message whose arrival ended the wait,
    for a ``"send"`` interval the message the send injected; ``-1``
    means no linked message.
    """

    rank: int
    label: str
    t0: float
    t1: float
    kind: str = "state"
    cause: int = -1

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise TraceError(
                f"state {self.label!r} on rank {self.rank} ends before it begins"
            )
        if self.kind not in STATE_KINDS:
            raise TraceError(
                f"unknown state kind {self.kind!r}; want one of {STATE_KINDS}"
            )

    @property
    def duration(self) -> float:
        """State duration in seconds."""
        return self.t1 - self.t0


@dataclass(frozen=True)
class CommEvent:
    """One point-to-point message, as the recorder stores it.

    ``seq`` is the message's globally unique causal stamp, drawn from
    the DES event sequence (:meth:`repro.cluster.des.Simulator.stamp`)
    so message identity is totally ordered consistently with event
    execution; ``-1`` for hand-built or parsed traces without stamps.
    """

    src: int
    dst: int
    tag: Hashable
    nbytes: int
    send_time: float
    arrival_time: float
    label: str
    seq: int = -1

    def __post_init__(self) -> None:
        if self.arrival_time < self.send_time:
            raise TraceError("message arrives before it is sent")
        if self.nbytes < 0:
            raise TraceError("negative message size")

    @property
    def latency(self) -> float:
        """End-to-end message latency in seconds."""
        return self.arrival_time - self.send_time

    @property
    def collective_instance(self) -> tuple | None:
        """Collective instance key ``(kind, seq)`` if this message
        belongs to a collective, else None.

        MpiRank tags collective messages ``(kind, seq, round)``; the
        first two components identify the instance across ranks.
        """
        tag = self.tag
        if isinstance(tag, tuple) and len(tag) >= 2 and isinstance(tag[0], str):
            return (tag[0], tag[1])
        return None


@dataclass(frozen=True)
class FaultRecord:
    """One fault-layer event: an injection, a detection, or a recovery.

    ``kind`` is the event family (``"crash"``, ``"detect"``,
    ``"slowdown"``, ``"degrade"``, ``"flap"``, ``"buffer-shrink"``,
    ``"os-noise"``, ``"restart"``); ``target`` names the afflicted
    entity (``"node3"``, ``"fabric"``, ``"job"``); ``detail`` carries
    kind-specific numbers as a sorted, immutable item tuple so that
    same-seed traces compare (and repr) byte-identically.
    """

    kind: str
    time_s: float
    target: str
    detail: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise TraceError(f"fault {self.kind!r} before time zero: {self.time_s}")
        object.__setattr__(self, "detail", tuple(sorted(self.detail)))

    def __getitem__(self, key: str) -> Any:
        for name, value in self.detail:
            if name == key:
                return value
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        """Detail value for *key*, or *default*."""
        for name, value in self.detail:
            if name == key:
                return value
        return default

