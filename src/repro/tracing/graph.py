"""Cross-rank happens-before graph and critical-path extraction.

The paper's §IV diagnosis — delayed ``all_to_all_v`` collectives on
Tibidabo — was made by *staring* at a Paraver Gantt chart.  This module
automates the first half of that diagnosis: it rebuilds the causal
structure of a recorded MPI job and walks the **critical path**, the
chain of activity that actually determined the job's end time.

Nodes are the recorder's state intervals (compute, send, wait, retry);
edges are program order within a rank plus one cross-rank edge per
message (injection on the sender happens-before arrival on the
receiver).  The MPI layer stamps every message with a unique ``seq``
and links each receive-wait interval to the message that ended it
(:attr:`~repro.tracing.events.StateEvent.cause`), so the backward walk
never has to guess which sender to blame.

Attribution categories on the path:

* ``compute`` — useful work;
* ``send``    — injection overhead / transfer the sender was blocked on;
* ``wait``    — receiver blocked while the message was in flight (the
  network's share: on Tibidabo this is where the incast RTOs land);
* ``rework``  — retry backoff and fault-recovery states;
* ``idle``    — trace gaps (rank had nothing recorded).

The walk runs backwards from the last-finishing rank: a wait segment
whose message was sent *after* the receiver blocked jumps to the
sender's timeline at the injection time (the classic late-sender hop);
everything else steps to the same rank's previous interval.  Segments
tile ``[0, end]`` exactly, so the per-category breakdown is a complete
accounting of the job's elapsed time.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import TraceError
from repro.tracing.events import CommEvent, StateEvent
from repro.tracing.recorder import TraceRecorder

#: Timestamp tolerance (seconds) for "ends exactly where the next
#: begins" matches — far below any modelled latency (>= 1 µs).
_EPS = 1e-9

#: Critical-path attribution categories, in display order.
PATH_CATEGORIES = ("compute", "send", "wait", "rework", "idle")

_KIND_TO_CATEGORY = {
    "compute": "compute",
    "send": "send",
    "wait": "wait",
    "retry": "rework",
}

#: Labels that mean fault-recovery work even without a kind tag.
_REWORK_LABELS = frozenset({"retry", "rework", "checkpoint", "restart"})


def _category_of(state: StateEvent) -> str:
    category = _KIND_TO_CATEGORY.get(state.kind)
    if category is not None:
        return category
    if state.label in _REWORK_LABELS:
        return "rework"
    return "compute"


@dataclass(frozen=True)
class PathSegment:
    """One critical-path interval on one rank."""

    rank: int
    t0: float
    t1: float
    category: str
    label: str

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.t1 - self.t0


@dataclass(frozen=True)
class CriticalPath:
    """The extracted critical path with per-segment attribution."""

    segments: tuple[PathSegment, ...]
    total_seconds: float

    @property
    def breakdown(self) -> dict[str, float]:
        """Seconds per attribution category (all categories present)."""
        sums = {category: 0.0 for category in PATH_CATEGORIES}
        for segment in self.segments:
            sums[segment.category] += segment.duration
        return sums

    @property
    def by_label(self) -> dict[tuple[str, str], float]:
        """Seconds per ``(category, label)`` pair, largest first."""
        sums: dict[tuple[str, str], float] = {}
        for segment in self.segments:
            key = (segment.category, segment.label)
            sums[key] = sums.get(key, 0.0) + segment.duration
        return dict(sorted(sums.items(), key=lambda kv: (-kv[1], kv[0])))

    @property
    def rank_changes(self) -> int:
        """How many times the path hops between ranks."""
        return sum(
            1 for a, b in zip(self.segments, self.segments[1:]) if a.rank != b.rank
        )

    def dominant_wait_label(self) -> str | None:
        """Label carrying the most on-path wait time, if any waited."""
        waits = {
            label: seconds
            for (category, label), seconds in self.by_label.items()
            if category == "wait" and seconds > 0.0
        }
        if not waits:
            return None
        return max(sorted(waits), key=lambda label: waits[label])

    def check_coverage(self) -> None:
        """Assert the segments tile ``[0, total]`` — the walk's output
        invariant (raises :class:`TraceError` otherwise)."""
        covered = math.fsum(s.duration for s in self.segments)
        if abs(covered - self.total_seconds) > max(1e-6, 1e-6 * self.total_seconds):
            raise TraceError(
                f"critical path covers {covered:.9f}s of "
                f"{self.total_seconds:.9f}s"
            )
        for earlier, later in zip(self.segments, self.segments[1:]):
            if later.t0 < earlier.t1 - _EPS:
                raise TraceError(
                    f"critical path segments overlap: {earlier} then {later}"
                )


class HappensBeforeGraph:
    """The causal structure of one recorded job.

    Nodes are state intervals; edges are (a) program order on each
    rank and (b) message edges ``send -> arrival``.  The graph is
    acyclic by construction — every edge points forward in simulated
    time — and :meth:`validate` checks exactly that.
    """

    def __init__(self, recorder: TraceRecorder) -> None:
        if not recorder.states:
            raise TraceError("cannot build a graph from a trace without states")
        self.recorder = recorder
        #: Per-rank state intervals, sorted by (t1, t0) for the walk.
        self.states_by_rank: dict[int, list[StateEvent]] = {}
        for state in recorder.states:
            self.states_by_rank.setdefault(state.rank, []).append(state)
        for states in self.states_by_rank.values():
            states.sort(key=lambda s: (s.t1, s.t0))
        self._end_index = {
            rank: [s.t1 for s in states]
            for rank, states in self.states_by_rank.items()
        }
        #: Messages by causal stamp (only stamped messages join the graph).
        self.messages: dict[int, CommEvent] = {
            c.seq: c for c in recorder.comms if c.seq >= 0
        }

    @property
    def node_count(self) -> int:
        """State intervals in the graph."""
        return len(self.recorder.states)

    @property
    def edge_count(self) -> int:
        """Program-order edges plus stamped message edges."""
        program = sum(
            len(states) - 1 for states in self.states_by_rank.values()
        )
        return program + len(self.messages)

    @property
    def end_time(self) -> float:
        """When the last rank finished."""
        return max(times[-1] for times in self._end_index.values())

    @property
    def end_rank(self) -> int:
        """The rank whose last state ends the job (lowest on ties)."""
        end = self.end_time
        return min(
            rank
            for rank, times in self._end_index.items()
            if times[-1] >= end - _EPS
        )

    def validate(self) -> None:
        """Check every edge points forward in time (acyclicity)."""
        for message in self.messages.values():
            if message.arrival_time + _EPS < message.send_time:
                raise TraceError(f"message edge goes backwards: {message}")
        for state in self.recorder.states:
            if state.cause >= 0 and state.kind == "wait":
                message = self.messages.get(state.cause)
                if message is not None and message.arrival_time > state.t1 + _EPS:
                    raise TraceError(
                        f"wait {state} ends before its cause arrives at "
                        f"{message.arrival_time}"
                    )

    # -- the walk -----------------------------------------------------------

    def _latest_ending_at_or_before(
        self, rank: int, t: float
    ) -> tuple[int, StateEvent | None]:
        times = self._end_index.get(rank)
        if not times:
            return -1, None
        index = bisect_right(times, t + _EPS) - 1
        if index < 0:
            return -1, None
        return index, self.states_by_rank[rank][index]

    def critical_path(self) -> CriticalPath:
        """Walk backwards from the job end and attribute every second.

        Raises :class:`TraceError` if the walk fails to make progress
        (a malformed trace), which the step budget guarantees is
        detected rather than looped on.
        """
        segments: list[PathSegment] = []

        def emit(rank: int, t0: float, t1: float, category: str, label: str) -> None:
            if t1 - t0 > _EPS:
                segments.append(PathSegment(rank, t0, t1, category, label))

        rank = self.end_rank
        t = self.end_time
        total = t
        index, state = self._latest_ending_at_or_before(rank, t)
        budget = 4 * (self.node_count + len(self.messages)) + 16
        while t > _EPS:
            budget -= 1
            if budget < 0:
                raise TraceError("critical-path walk failed to converge")
            if state is None:
                # Nothing earlier on this rank: the head of the trace.
                emit(rank, 0.0, t, "idle", "idle")
                break
            if state.t1 < t - _EPS:
                # Trace gap on this rank.
                emit(rank, state.t1, t, "idle", "idle")
                t = state.t1
                continue
            if state.duration <= _EPS:
                # Zero-length marker (e.g. a mailbox-hit receive):
                # consume it and look further back on the same rank.
                index -= 1
                state = (
                    self.states_by_rank[rank][index] if index >= 0 else None
                )
                continue
            category = _category_of(state)
            message = (
                self.messages.get(state.cause)
                if state.kind == "wait" and state.cause >= 0
                else None
            )
            if message is not None:
                in_flight_start = max(state.t0, message.send_time)
                emit(rank, in_flight_start, state.t1, "wait", state.label)
                if message.send_time > state.t0 + _EPS:
                    # Blocked before the send existed: the sender's
                    # timeline owns the remainder (late-sender hop).
                    rank = message.src
                    t = message.send_time
                    index, state = self._latest_ending_at_or_before(rank, t)
                    continue
                t = state.t0
            else:
                emit(rank, state.t0, state.t1, category, state.label)
                t = state.t0
            index -= 1
            state = self.states_by_rank[rank][index] if index >= 0 else None
            if state is not None and state.t1 > t + _EPS:
                # Overlapping records (e.g. a send resumed mid-wait):
                # re-anchor on the interval that actually ends at t.
                index, state = self._latest_ending_at_or_before(rank, t)

        segments.reverse()
        path = CriticalPath(segments=tuple(segments), total_seconds=total)
        path.check_coverage()
        return path


def build_graph(recorder: TraceRecorder) -> HappensBeforeGraph:
    """Construct the happens-before graph of *recorder*'s job."""
    return HappensBeforeGraph(recorder)


def critical_path(recorder: TraceRecorder) -> CriticalPath:
    """Convenience: build the graph and extract the critical path."""
    return HappensBeforeGraph(recorder).critical_path()
