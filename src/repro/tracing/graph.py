"""Cross-rank happens-before graph and critical-path extraction.

The paper's §IV diagnosis — delayed ``all_to_all_v`` collectives on
Tibidabo — was made by *staring* at a Paraver Gantt chart.  This module
automates the first half of that diagnosis: it rebuilds the causal
structure of a recorded MPI job and walks the **critical path**, the
chain of activity that actually determined the job's end time.

Nodes are the recorder's state intervals (compute, send, wait, retry);
edges are program order within a rank plus one cross-rank edge per
message (injection on the sender happens-before arrival on the
receiver).  The MPI layer stamps every message with a unique ``seq``
and links each receive-wait interval to the message that ended it
(:attr:`~repro.tracing.events.StateEvent.cause`), so the backward walk
never has to guess which sender to blame.

Attribution categories on the path:

* ``compute`` — useful work;
* ``send``    — injection overhead / transfer the sender was blocked on;
* ``wait``    — receiver blocked while the message was in flight (the
  network's share: on Tibidabo this is where the incast RTOs land);
* ``rework``  — retry backoff and fault-recovery states;
* ``idle``    — trace gaps (rank had nothing recorded).

The walk runs backwards from the last-finishing rank: a wait segment
whose message was sent *after* the receiver blocked jumps to the
sender's timeline at the injection time (the classic late-sender hop);
everything else steps to the same rank's previous interval.  Segments
tile ``[0, end]`` exactly, so the per-category breakdown is a complete
accounting of the job's elapsed time.

The walk itself lives in :mod:`repro.tracing.attribution`, shared with
the streaming analyzer (:mod:`repro.tracing.stream`); this module is
the batch store — the whole trace materialized in sorted per-rank
arrays — plus the graph-shaped API around it.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import TraceError
from repro.tracing.attribution import (
    _EPS,
    PATH_CATEGORIES,
    CriticalPath,
    ListCursor,
    PathSegment,
    TimelineView,
    _category_of,
    extract_critical_path,
)
from repro.tracing.events import CommEvent, StateEvent
from repro.tracing.recorder import TraceRecorder

__all__ = [
    "PATH_CATEGORIES",
    "CriticalPath",
    "HappensBeforeGraph",
    "PathSegment",
    "build_graph",
    "critical_path",
]

# Re-exported for callers that import them from here.
_REEXPORTED = (PATH_CATEGORIES, CriticalPath, PathSegment, _category_of)


class HappensBeforeGraph(TimelineView):
    """The causal structure of one recorded job.

    Nodes are state intervals; edges are (a) program order on each
    rank and (b) message edges ``send -> arrival``.  The graph is
    acyclic by construction — every edge points forward in simulated
    time — and :meth:`validate` checks exactly that.
    """

    def __init__(self, recorder: TraceRecorder) -> None:
        if not recorder.states:
            raise TraceError("cannot build a graph from a trace without states")
        self.recorder = recorder
        #: Per-rank state intervals, sorted by (t1, t0) for the walk.
        self.states_by_rank: dict[int, list[StateEvent]] = {}
        for state in recorder.states:
            self.states_by_rank.setdefault(state.rank, []).append(state)
        for states in self.states_by_rank.values():
            states.sort(key=lambda s: (s.t1, s.t0))
        self._end_index = {
            rank: [s.t1 for s in states]
            for rank, states in self.states_by_rank.items()
        }
        #: Messages by causal stamp (only stamped messages join the graph).
        self.messages: dict[int, CommEvent] = {
            c.seq: c for c in recorder.comms if c.seq >= 0
        }

    @property
    def node_count(self) -> int:
        """State intervals in the graph."""
        return len(self.recorder.states)

    @property
    def edge_count(self) -> int:
        """Program-order edges plus stamped message edges."""
        program = sum(
            len(states) - 1 for states in self.states_by_rank.values()
        )
        return program + len(self.messages)

    @property
    def end_time(self) -> float:
        """When the last rank finished."""
        return max(times[-1] for times in self._end_index.values())

    @property
    def end_rank(self) -> int:
        """The rank whose last state ends the job (lowest on ties)."""
        end = self.end_time
        return min(
            rank
            for rank, times in self._end_index.items()
            if times[-1] >= end - _EPS
        )

    def validate(self) -> None:
        """Check every edge points forward in time (acyclicity)."""
        for message in self.messages.values():
            if message.arrival_time + _EPS < message.send_time:
                raise TraceError(f"message edge goes backwards: {message}")
        for state in self.recorder.states:
            if state.cause >= 0 and state.kind == "wait":
                message = self.messages.get(state.cause)
                if message is not None and message.arrival_time > state.t1 + _EPS:
                    raise TraceError(
                        f"wait {state} ends before its cause arrives at "
                        f"{message.arrival_time}"
                    )

    # -- the TimelineView the shared walk/classifier consume ---------------

    def anchor(self, rank: int, t: float, eps: float) -> ListCursor:
        states = self.states_by_rank.get(rank)
        if not states:
            return ListCursor([], -1)
        index = bisect_right(self._end_index[rank], t + eps) - 1
        return ListCursor(states, index)

    def message(self, seq: int) -> CommEvent | None:
        return self.messages.get(seq)

    def job_end_time(self) -> float:
        return self.end_time

    def job_end_rank(self) -> int:
        return self.end_rank

    def walk_budget(self) -> int:
        return 4 * (self.node_count + len(self.messages)) + 16

    # -- the walk -----------------------------------------------------------

    def _latest_ending_at_or_before(
        self, rank: int, t: float
    ) -> tuple[int, StateEvent | None]:
        times = self._end_index.get(rank)
        if not times:
            return -1, None
        index = bisect_right(times, t + _EPS) - 1
        if index < 0:
            return -1, None
        return index, self.states_by_rank[rank][index]

    def critical_path(self) -> CriticalPath:
        """Walk backwards from the job end and attribute every second
        (see :func:`repro.tracing.attribution.extract_critical_path`)."""
        return extract_critical_path(self)


def build_graph(recorder: TraceRecorder) -> HappensBeforeGraph:
    """Construct the happens-before graph of *recorder*'s job."""
    return HappensBeforeGraph(recorder)


def critical_path(recorder: TraceRecorder) -> CriticalPath:
    """Convenience: build the graph and extract the critical path."""
    return HappensBeforeGraph(recorder).critical_path()
