"""Paraver ``.prv`` trace export and parsing.

Paraver's text format (one record per line, colon-separated):

* header — ``#Paraver (d/m/y at h:m):ftime:nNodes(cpus):nAppl:applList``
* state records — ``1:cpu:appl:task:thread:begin:end:state``
* communication records —
  ``3:cpu:appl:task:thread:ltime:ptime:cpu:appl:task:thread:lrecv:precv:size:tag``

Timestamps are nanoseconds.  The exporter maps each MPI rank to one
task with one thread in a single application, which is how Extrae
writes MPI-only traces; state labels are carried through a state-value
table emitted as comments so :func:`parse_prv` can round-trip them.
"""

from __future__ import annotations

import json

from repro.errors import TraceError
from repro.tracing.events import CommEvent
from repro.tracing.recorder import TraceRecorder

_NS = 1e9

_FAULT_PREFIX = "# fault "


def _state_table(recorder: TraceRecorder) -> dict[str, int]:
    labels: dict[str, int] = {}
    for state in recorder.states:
        if state.label not in labels:
            labels[state.label] = len(labels) + 1
    return labels


def export_prv(recorder: TraceRecorder, *, job_name: str = "repro") -> str:
    """Render the recorded trace as Paraver ``.prv`` text."""
    num_ranks = recorder.num_ranks
    if num_ranks == 0:
        raise TraceError("cannot export an empty trace")
    end_ns = round(recorder.end_time * _NS)
    table = _state_table(recorder)

    lines = [
        f"#Paraver (01/01/2013 at 00:00):{end_ns}:1({num_ranks}):1:"
        f"1({','.join('1' for _ in range(num_ranks))})",
        f"# job: {job_name}",
    ]
    for label, value in table.items():
        lines.append(f"# state {value} = {label}")
    # Paraver has no native fault records; they ride along as comment
    # lines (canonical JSON) so parse_prv round-trips the full trace.
    for fault in recorder.faults:
        payload = {
            "kind": fault.kind,
            "time_s": fault.time_s,
            "target": fault.target,
            "detail": {key: value for key, value in fault.detail},
        }
        lines.append(_FAULT_PREFIX + json.dumps(payload, sort_keys=True))

    for state in recorder.states:
        cpu = task = state.rank + 1
        lines.append(
            f"1:{cpu}:1:{task}:1:{round(state.t0 * _NS)}:{round(state.t1 * _NS)}:"
            f"{table[state.label]}"
        )
    for comm in recorder.comms:
        send_ns = round(comm.send_time * _NS)
        recv_ns = round(comm.arrival_time * _NS)
        src, dst = comm.src + 1, comm.dst + 1
        lines.append(
            f"3:{src}:1:{src}:1:{send_ns}:{send_ns}:"
            f"{dst}:1:{dst}:1:{recv_ns}:{recv_ns}:{comm.nbytes}:{hash(comm.tag) & 0x7FFFFFFF}"
        )
    return "\n".join(lines) + "\n"


def export_pcf(recorder: TraceRecorder) -> str:
    """Render the Paraver configuration (``.pcf``) companion file.

    Carries the state-value table (Paraver's ``STATES`` section) so
    the timeline colors states by name, plus default display options.
    """
    table = _state_table(recorder)
    if not table:
        raise TraceError("cannot export a .pcf for a trace without states")
    lines = [
        "DEFAULT_OPTIONS",
        "",
        "LEVEL               THREAD",
        "UNITS               NANOSEC",
        "LOOK_BACK           100",
        "SPEED               1",
        "FLAG_ICONS          ENABLED",
        "",
        "STATES",
        "0    Idle",
    ]
    for label, value in table.items():
        lines.append(f"{value}    {label}")
    lines.extend([
        "",
        "STATES_COLOR",
        "0    {117,195,255}",
    ])
    palette = [
        "{0,0,255}", "{255,0,0}", "{0,255,0}", "{255,255,0}",
        "{255,0,255}", "{0,255,255}", "{255,128,0}", "{128,0,255}",
    ]
    for label, value in table.items():
        lines.append(f"{value}    {palette[(value - 1) % len(palette)]}")
    return "\n".join(lines) + "\n"


def export_row(recorder: TraceRecorder) -> str:
    """Render the Paraver names (``.row``) companion file.

    Names each hardware/application row; the exporter's layout is one
    node with one CPU (= task = thread) per MPI rank.
    """
    num_ranks = recorder.num_ranks
    if num_ranks == 0:
        raise TraceError("cannot export a .row for an empty trace")
    lines = [f"LEVEL CPU SIZE {num_ranks}"]
    lines.extend(f"CPU {i + 1}" for i in range(num_ranks))
    lines.append("")
    lines.append(f"LEVEL THREAD SIZE {num_ranks}")
    lines.extend(f"rank {i}" for i in range(num_ranks))
    return "\n".join(lines) + "\n"


def parse_prv(text: str) -> TraceRecorder:
    """Parse ``.prv`` text back into a :class:`TraceRecorder`.

    Only the records :func:`export_prv` writes are supported; the
    state-label comment table restores labels, unknown state values
    become ``"state<N>"``.
    """
    recorder = TraceRecorder()
    labels: dict[int, str] = {}
    saw_header = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#Paraver"):
            saw_header = True
            continue
        if line.startswith("# state "):
            body = line[len("# state "):]
            value_text, _, label = body.partition(" = ")
            labels[int(value_text)] = label
            continue
        if line.startswith(_FAULT_PREFIX):
            try:
                payload = json.loads(line[len(_FAULT_PREFIX):])
                # recorder.fault freezes list values back to tuples,
                # restoring the exact pre-export records.
                recorder.fault(
                    payload["kind"], payload["time_s"], payload["target"],
                    **payload["detail"],
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise TraceError(
                    f"malformed fault comment on line {line_number}: {line!r}"
                ) from exc
            continue
        if line.startswith("#"):
            continue
        fields = line.split(":")
        try:
            if fields[0] == "1":
                _, _cpu, _appl, task, _thread, begin, end, value = fields
                recorder.state(
                    int(task) - 1,
                    labels.get(int(value), f"state{value}"),
                    int(begin) / _NS,
                    int(end) / _NS,
                )
            elif fields[0] == "3":
                (_, _scpu, _sappl, stask, _sthr, ltime, _ptime,
                 _rcpu, _rappl, rtask, _rthr, lrecv, _precv, size, tag) = fields
                recorder.comms.append(
                    CommEvent(
                        src=int(stask) - 1,
                        dst=int(rtask) - 1,
                        tag=int(tag),
                        nbytes=int(size),
                        send_time=int(ltime) / _NS,
                        arrival_time=int(lrecv) / _NS,
                        label="comm",
                    )
                )
            else:
                raise TraceError(f"unsupported record type {fields[0]!r}")
        except (ValueError, IndexError) as exc:
            raise TraceError(f"malformed .prv line {line_number}: {line!r}") from exc
    if not saw_header:
        raise TraceError("missing #Paraver header")
    return recorder
