"""Extrae-style trace recorder.

Pass a :class:`TraceRecorder` as ``tracer=`` to
:class:`repro.cluster.mpi.MpiJob`; it accumulates state intervals and
message records which :mod:`repro.tracing.paraver` can export and
:mod:`repro.tracing.analysis` can mine.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TraceError
from repro.tracing.events import CommEvent, FaultRecord, StateEvent


class NullTracer:
    """A tracer that records nothing (baseline / overhead tests)."""

    def state(self, rank: int, label: str, t0: float, t1: float) -> None:
        """Discard a state interval."""

    def comm(self, message: Any) -> None:
        """Discard a message record."""

    def fault(self, kind: str, time_s: float, target: str, **detail: Any) -> None:
        """Discard a fault record."""


class TraceRecorder:
    """Accumulates the full event history of one MPI job."""

    def __init__(self) -> None:
        self.states: list[StateEvent] = []
        self.comms: list[CommEvent] = []
        self.faults: list[FaultRecord] = []

    # -- MpiJob-facing interface -------------------------------------------

    def state(self, rank: int, label: str, t0: float, t1: float) -> None:
        """Record one state interval."""
        self.states.append(StateEvent(rank=rank, label=label, t0=t0, t1=t1))

    def comm(self, message: Any) -> None:
        """Record one message (anything with the Message fields)."""
        self.comms.append(
            CommEvent(
                src=message.src,
                dst=message.dst,
                tag=message.tag,
                nbytes=message.nbytes,
                send_time=message.send_time,
                arrival_time=message.arrival_time,
                label=message.label,
            )
        )

    def fault(self, kind: str, time_s: float, target: str, **detail: Any) -> None:
        """Record one fault-layer event (injection/detection/recovery).

        List-valued details are frozen to tuples so records stay
        immutable and same-seed traces compare byte-identically.
        """
        items = tuple(
            (key, tuple(value) if isinstance(value, list) else value)
            for key, value in sorted(detail.items())
        )
        self.faults.append(
            FaultRecord(kind=kind, time_s=time_s, target=target, detail=items)
        )

    # -- queries -----------------------------------------------------------

    @property
    def num_ranks(self) -> int:
        """Highest rank observed plus one."""
        ranks = [s.rank for s in self.states] + [
            r for c in self.comms for r in (c.src, c.dst)
        ]
        return max(ranks) + 1 if ranks else 0

    @property
    def end_time(self) -> float:
        """Latest timestamp in the trace."""
        times = [s.t1 for s in self.states] + [c.arrival_time for c in self.comms]
        return max(times) if times else 0.0

    def states_of(self, rank: int, label: str | None = None) -> list[StateEvent]:
        """State intervals of one rank, optionally filtered by label."""
        return [
            s
            for s in self.states
            if s.rank == rank and (label is None or s.label == label)
        ]

    def comms_labelled(self, label: str) -> list[CommEvent]:
        """All messages with a given label (e.g. ``"alltoallv"``)."""
        return [c for c in self.comms if c.label == label]

    def faults_of(self, kind: str) -> list[FaultRecord]:
        """All fault records of one kind (e.g. ``"crash"``)."""
        return [f for f in self.faults if f.kind == kind]

    def time_in_state(self, rank: int, label: str) -> float:
        """Total seconds *rank* spent in *label* states."""
        return sum(s.duration for s in self.states_of(rank, label))

    def check_sanity(self) -> None:
        """Raise :class:`TraceError` on malformed traces (test hook)."""
        for state in self.states:
            if state.t0 < 0:
                raise TraceError(f"state before time zero: {state}")
        for comm in self.comms:
            if comm.send_time < 0:
                raise TraceError(f"message before time zero: {comm}")
        for previous, current in zip(self.faults, self.faults[1:]):
            if current.time_s < previous.time_s:
                raise TraceError(
                    f"fault records out of order: {current} after {previous}"
                )
