"""Extrae-style trace recorder.

Pass a :class:`TraceRecorder` as ``tracer=`` to
:class:`repro.cluster.mpi.MpiJob`; it accumulates state intervals and
message records which :mod:`repro.tracing.paraver` can export,
:mod:`repro.tracing.chrome` can render for Perfetto, and
:mod:`repro.tracing.analysis` / :mod:`repro.tracing.graph` /
:mod:`repro.tracing.waitstates` can mine.

:class:`NullTracer` is the cheap no-op stand-in with *full API parity*:
every recording method discards its input and every query answers as an
empty trace would, so code written against :class:`TraceRecorder` runs
unchanged (``tests/tracing/test_parity.py`` introspects both classes to
keep them from drifting).
"""

from __future__ import annotations

from typing import Any

from repro.errors import TraceError
from repro.tracing.events import CommEvent, FaultRecord, StateEvent


class NullTracer:
    """A tracer that records nothing (baseline / overhead tests).

    API-compatible with :class:`TraceRecorder`: recording methods are
    no-ops and queries behave as on an empty trace.
    """

    @property
    def states(self) -> list[StateEvent]:
        """Always empty."""
        return []

    @property
    def comms(self) -> list[CommEvent]:
        """Always empty."""
        return []

    @property
    def faults(self) -> list[FaultRecord]:
        """Always empty."""
        return []

    def state(
        self,
        rank: int,
        label: str,
        t0: float,
        t1: float,
        *,
        kind: str = "state",
        cause: int = -1,
    ) -> None:
        """Discard a state interval."""

    def comm(self, message: Any) -> None:
        """Discard a message record."""

    def fault(self, kind: str, time_s: float, target: str, **detail: Any) -> None:
        """Discard a fault record."""

    @property
    def sink(self) -> Any:
        """A null tracer never forwards anywhere."""
        return None

    @property
    def num_ranks(self) -> int:
        """An empty trace has no ranks."""
        return 0

    @property
    def end_time(self) -> float:
        """An empty trace ends at time zero."""
        return 0.0

    def states_of(self, rank: int, label: str | None = None) -> list[StateEvent]:
        """Always empty."""
        return []

    def comms_labelled(self, label: str) -> list[CommEvent]:
        """Always empty."""
        return []

    def faults_of(self, kind: str) -> list[FaultRecord]:
        """Always empty."""
        return []

    def time_in_state(self, rank: int, label: str) -> float:
        """Always zero."""
        return 0.0

    def check_sanity(self) -> None:
        """An empty trace is always sane."""


class TraceRecorder:
    """Accumulates the full event history of one MPI job.

    An optional *sink* (anything with the tracer interface — notably
    :class:`repro.tracing.stream.TraceStreamAnalyzer`) receives every
    recording call as it happens, so a run can be analyzed
    incrementally while still materializing the full trace.
    """

    def __init__(self, sink: Any = None) -> None:
        self.states: list[StateEvent] = []
        self.comms: list[CommEvent] = []
        self.faults: list[FaultRecord] = []
        self._sink = sink

    @property
    def sink(self) -> Any:
        """The tracer every recording call is forwarded to (or None)."""
        return self._sink

    # -- MpiJob-facing interface -------------------------------------------

    def state(
        self,
        rank: int,
        label: str,
        t0: float,
        t1: float,
        *,
        kind: str = "state",
        cause: int = -1,
    ) -> None:
        """Record one state interval (optionally kind-classified and
        causally linked to a message, see :class:`StateEvent`)."""
        self.states.append(
            StateEvent(rank=rank, label=label, t0=t0, t1=t1, kind=kind, cause=cause)
        )
        if self._sink is not None:
            self._sink.state(rank, label, t0, t1, kind=kind, cause=cause)

    def comm(self, message: Any) -> None:
        """Record one message (anything with the Message fields)."""
        self.comms.append(
            CommEvent(
                src=message.src,
                dst=message.dst,
                tag=message.tag,
                nbytes=message.nbytes,
                send_time=message.send_time,
                arrival_time=message.arrival_time,
                label=message.label,
                seq=getattr(message, "seq", -1),
            )
        )
        if self._sink is not None:
            self._sink.comm(message)

    def fault(self, kind: str, time_s: float, target: str, **detail: Any) -> None:
        """Record one fault-layer event (injection/detection/recovery).

        List-valued details are frozen to tuples so records stay
        immutable and same-seed traces compare byte-identically.
        """
        items = tuple(
            (key, tuple(value) if isinstance(value, list) else value)
            for key, value in sorted(detail.items())
        )
        self.faults.append(
            FaultRecord(kind=kind, time_s=time_s, target=target, detail=items)
        )
        if self._sink is not None:
            self._sink.fault(kind, time_s, target, **detail)

    # -- queries -----------------------------------------------------------

    @property
    def num_ranks(self) -> int:
        """Highest rank observed plus one."""
        ranks = [s.rank for s in self.states] + [
            r for c in self.comms for r in (c.src, c.dst)
        ]
        return max(ranks) + 1 if ranks else 0

    @property
    def end_time(self) -> float:
        """Latest timestamp in the trace."""
        times = [s.t1 for s in self.states] + [c.arrival_time for c in self.comms]
        return max(times) if times else 0.0

    def states_of(self, rank: int, label: str | None = None) -> list[StateEvent]:
        """State intervals of one rank, optionally filtered by label."""
        return [
            s
            for s in self.states
            if s.rank == rank and (label is None or s.label == label)
        ]

    def comms_labelled(self, label: str) -> list[CommEvent]:
        """All messages with a given label (e.g. ``"alltoallv"``)."""
        return [c for c in self.comms if c.label == label]

    def faults_of(self, kind: str) -> list[FaultRecord]:
        """All fault records of one kind (e.g. ``"crash"``)."""
        return [f for f in self.faults if f.kind == kind]

    def time_in_state(self, rank: int, label: str) -> float:
        """Total seconds *rank* spent in *label* states."""
        return sum(s.duration for s in self.states_of(rank, label))

    def check_sanity(self) -> None:
        """Raise :class:`TraceError` on malformed traces (test hook)."""
        for state in self.states:
            if state.t0 < 0:
                raise TraceError(f"state before time zero: {state}")
        for comm in self.comms:
            if comm.send_time < 0:
                raise TraceError(f"message before time zero: {comm}")
        for previous, current in zip(self.faults, self.faults[1:]):
            if current.time_s < previous.time_s:
                raise TraceError(
                    f"fault records out of order: {current} after {previous}"
                )
