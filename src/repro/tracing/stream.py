"""Streaming trace analytics: bounded-memory incremental analysis.

The batch pipeline (:mod:`repro.tracing.graph` +
:mod:`repro.tracing.waitstates`) materializes the whole trace before it
answers anything — fine for 36 ranks, not for thousand-rank ×
fault-injected runs.  This module analyzes the trace *while it is being
produced*: :class:`TraceStreamAnalyzer` implements the tracer interface
(``state`` / ``comm`` / ``fault``), so a simulation can drive it
directly, or a :class:`~repro.tracing.recorder.TraceRecorder` can tee
into it via its ``sink``.

Memory model
------------

Full event records live in a bounded **frontier**: per-rank state
series plus one global message series, each a sorted array in the same
total order the batch store uses — ``(t1, t0, record position)`` for
states, ``(seq, record position)`` for messages.  When the live count
exceeds ``frontier_limit``, the oldest events of the largest series
are retired to an append-only, sha256-framed **spill log** (the same
framing discipline as the run journal) in segments of
``segment_events``; a small LRU cache decodes retired segments back on
demand.  Receive waits additionally ride an append-only wait log so
the final classification replays them in exact record order.  What
never spills is scalar state only: per-label latency arrays (for the
baseline medians), per-rank useful-compute sums, collective
entry/exit extrema, and the distinct-message-id set.

Because both stores present events in the identical total order and
the arithmetic lives in :mod:`repro.tracing.attribution`, the final
numbers are **byte-identical** to the batch analysis — the golden
``fig4_trace_report.json`` reproduces exactly under ``--stream``.

For runs too large even to stream exactly, ``sample_per_label``
switches the wait log to per-label reservoir sampling (Algorithm R,
deterministic seed): wait-state totals become unbiased estimates
scaled by ``N/n`` with reported standard errors and 95% confidence
intervals, while the critical path, collective imbalance, baselines
and POP efficiencies stay exact.
"""

from __future__ import annotations

import json
import math
import os
import random
import shutil
import statistics
import tempfile
from array import array
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.engine.hashing import content_key
from repro.errors import TraceError
from repro.metrics.registry import current_registry
from repro.tracing.attribution import (
    _EPS,
    CriticalPath,
    ListCursor,
    TimelineView,
    WaitClassifier,
    extract_critical_path,
)
from repro.tracing.events import CommEvent, StateEvent
from repro.tracing.waitstates import (
    DEFAULT_CONTENTION_FACTOR,
    EfficiencyReport,
    WaitStateReport,
    baselines_from_latencies,
    collective_instance_spreads,
    wait_entries_from_buckets,
)

#: Bump when the spill-segment framing changes shape.
SPILL_SCHEMA = 1

#: How often (in ingested events) the ``trace.*`` metrics are flushed
#: to the registry between the final flush at :meth:`finalize`.
_METRICS_EVERY = 4096

#: Reservoir size for the *provisional* per-label baseline latencies
#: behind live summaries (the exact baselines are computed at
#: finalize from the full latency arrays).
_LIVE_BASELINE_RESERVOIR = 512

_INF = float("inf")


def _encode_tag(tag: Any) -> Any:
    """Message tags are hashables; frame tuples as lists for JSON."""
    if tag is None or isinstance(tag, (str, int, float)):
        return tag
    if isinstance(tag, tuple):
        return [_encode_tag(item) for item in tag]
    raise TraceError(
        f"cannot spill message tag {tag!r} of type {type(tag).__name__}; "
        "streaming analysis needs JSON-framable tags "
        "(None, str, int, float, or tuples thereof)"
    )


def _decode_tag(tag: Any) -> Any:
    if isinstance(tag, list):
        return tuple(_decode_tag(item) for item in tag)
    return tag


class SpillLog:
    """Append-only, sha256-framed segment log (journal discipline).

    One JSON line per segment; every read re-derives the content key
    and refuses corrupt or misaddressed segments, so a bad disk turns
    into a :class:`TraceError` instead of silently wrong analysis.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = open(self.path, "w+b")
        self.bytes_written = 0
        self.segments_written = 0

    def append(self, kind: str, rank: int, events: list) -> tuple[int, int]:
        """Frame one segment; returns ``(offset, length)``."""
        record = {
            "schema": SPILL_SCHEMA, "kind": kind, "rank": rank,
            "events": events,
        }
        record["sha256"] = content_key(
            {k: record[k] for k in ("schema", "kind", "rank", "events")}
        )
        data = (
            json.dumps(record, separators=(",", ":"), allow_nan=False) + "\n"
        ).encode("utf-8")
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(data)
        self._file.flush()
        self.bytes_written += len(data)
        self.segments_written += 1
        return offset, len(data)

    def read(self, offset: int, length: int, *, kind: str, rank: int) -> list:
        """Decode and verify the segment framed at *offset*."""
        self._file.seek(offset)
        data = self._file.read(length)
        try:
            record = json.loads(data)
        except (ValueError, UnicodeDecodeError) as error:
            raise TraceError(
                f"spill segment at offset {offset} of {self.path.name} "
                f"is unreadable: {error}"
            ) from error
        digest = record.pop("sha256", None) if isinstance(record, dict) else None
        if (
            not isinstance(record, dict)
            or digest != content_key(record)
            or record.get("kind") != kind
            or record.get("rank") != rank
        ):
            raise TraceError(
                f"spill segment at offset {offset} of {self.path.name} is "
                f"corrupt or misaddressed (wanted kind={kind!r} rank={rank})"
            )
        return record["events"]

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


@dataclass
class _SegRef:
    """One retired segment: where it lives and what key range it holds."""

    offset: int
    length: int
    count: int
    min_key: tuple
    max_key: tuple


class _SegmentCache:
    """Tiny LRU over decoded spill segments (bounded working set)."""

    def __init__(self, log: SpillLog, capacity: int) -> None:
        self._log = log
        self._capacity = max(1, capacity)
        self._entries: OrderedDict[tuple, tuple[list, list]] = OrderedDict()

    def get(self, series: "_EventSeries", ref: _SegRef) -> tuple[list, list]:
        key = (id(series), ref.offset)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        payload = self._log.read(
            ref.offset, ref.length, kind=series.kind, rank=series.rank
        )
        entry = series.decode(payload)
        if len(entry[0]) != ref.count:
            raise TraceError(
                f"spill segment at offset {ref.offset} decoded to "
                f"{len(entry[0])} events, expected {ref.count}"
            )
        self._entries[key] = entry
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return entry


class _SeriesCursor:
    """Backward cursor merging a series' frontier, stragglers, and
    retired segments in descending key order (the ``retreat()``
    protocol the shared walk and classifier consume)."""

    __slots__ = (
        "_series", "_f", "_s", "_g", "_w",
        "_seg_keys", "_seg_events", "_source", "state",
    )

    def __init__(self, series: "_EventSeries", f: int, s: int, g: int, w: int):
        self._series = series
        self._f = f
        self._s = s
        self._g = g
        self._w = w
        self._seg_keys: list | None = None
        self._seg_events: list | None = None
        if g >= 0:
            self._load_segment()
        self._select()

    def _load_segment(self) -> None:
        self._seg_keys, self._seg_events = self._series.cache.get(
            self._series, self._series.segments[self._g]
        )

    def _select(self) -> None:
        series = self._series
        source = None
        best_key = None
        if self._f >= 0:
            source, best_key = "f", series.keys[self._f]
        if self._s >= 0:
            key = series.straggler_keys[self._s]
            if best_key is None or key > best_key:
                source, best_key = "s", key
        if self._g >= 0 and self._w >= 0:
            key = self._seg_keys[self._w]
            if best_key is None or key > best_key:
                source, best_key = "g", key
        self._source = source
        if source == "f":
            self.state = series.events[self._f]
        elif source == "s":
            self.state = series.straggler_events[self._s]
        elif source == "g":
            self.state = self._seg_events[self._w]
        else:
            self.state = None

    def retreat(self) -> None:
        if self._source == "f":
            self._f -= 1
        elif self._source == "s":
            self._s -= 1
        elif self._source == "g":
            self._w -= 1
            if self._w < 0:
                self._g -= 1
                if self._g >= 0:
                    self._load_segment()
                    self._w = len(self._seg_keys) - 1
        self._select()


class _EventSeries:
    """One key-ordered event stream: a sorted in-memory frontier, a
    straggler overflow for keys below the spill watermark, and the
    ascending retired segments on disk.

    The total order across all three tiers is exactly the batch
    store's sort order, which is what makes cursors over a spilled
    stream behave identically to cursors over the materialized one.
    """

    kind = "events"

    def __init__(self, rank: int, cache: _SegmentCache) -> None:
        self.rank = rank
        self.cache = cache
        self.keys: list[tuple] = []
        self.events: list = []
        self.straggler_keys: list[tuple] = []
        self.straggler_events: list = []
        self.segments: list[_SegRef] = []
        self._segment_min_keys: list[tuple] = []
        self.watermark: tuple | None = None
        self.next_pos = 0

    def encode(self, event, key: tuple) -> list:
        raise NotImplementedError

    def decode(self, payload: list) -> tuple[list, list]:
        raise NotImplementedError

    def add(self, key: tuple, event) -> None:
        if self.watermark is not None and key < self.watermark:
            # Arrived after its key range was already retired: keep it
            # in memory forever (stragglers are rare by construction —
            # recorders emit per-rank times almost in order).
            index = bisect_right(self.straggler_keys, key)
            self.straggler_keys.insert(index, key)
            self.straggler_events.insert(index, event)
            return
        if self.keys and key < self.keys[-1]:
            index = bisect_right(self.keys, key)
            self.keys.insert(index, key)
            self.events.insert(index, event)
        else:
            self.keys.append(key)
            self.events.append(event)

    def spillable(self) -> int:
        return len(self.keys)

    @property
    def live(self) -> int:
        return len(self.keys) + len(self.straggler_keys)

    def spill(self, log: SpillLog, count: int) -> int:
        """Retire the oldest *count* frontier events to *log*."""
        count = min(count, len(self.keys))
        if count <= 0:
            return 0
        payload = [
            self.encode(event, key)
            for key, event in zip(self.keys[:count], self.events[:count])
        ]
        offset, length = log.append(self.kind, self.rank, payload)
        ref = _SegRef(offset, length, count, self.keys[0], self.keys[count - 1])
        self.segments.append(ref)
        self._segment_min_keys.append(ref.min_key)
        self.watermark = ref.max_key
        del self.keys[:count]
        del self.events[:count]
        return count

    def cursor_at(self, probe: tuple) -> _SeriesCursor:
        """Backward cursor at the last event with key ``<= probe``."""
        f = bisect_right(self.keys, probe) - 1
        s = bisect_right(self.straggler_keys, probe) - 1
        g = bisect_right(self._segment_min_keys, probe) - 1
        w = -1
        if g >= 0:
            seg_keys, _ = self.cache.get(self, self.segments[g])
            w = bisect_right(seg_keys, probe) - 1
        return _SeriesCursor(self, f, s, g, w)


class _StateSeries(_EventSeries):
    """Per-rank state intervals keyed ``(t1, t0, record position)``."""

    kind = "states"

    def encode(self, state: StateEvent, key: tuple) -> list:
        return [key[2], state.label, state.t0, state.t1, state.kind, state.cause]

    def decode(self, payload: list) -> tuple[list, list]:
        keys: list[tuple] = []
        events: list[StateEvent] = []
        for pos, label, t0, t1, kind, cause in payload:
            keys.append((t1, t0, pos))
            events.append(
                StateEvent(self.rank, label, t0, t1, kind=kind, cause=cause)
            )
        return keys, events


class _CommSeries(_EventSeries):
    """All stamped messages, keyed ``(seq, record position)`` so
    duplicate stamps resolve to the last-recorded message — the batch
    dict's overwrite semantics."""

    kind = "comms"

    def encode(self, comm: CommEvent, key: tuple) -> list:
        return [
            key[1], comm.src, comm.dst, _encode_tag(comm.tag), comm.nbytes,
            comm.send_time, comm.arrival_time, comm.label, comm.seq,
        ]

    def decode(self, payload: list) -> tuple[list, list]:
        keys: list[tuple] = []
        events: list[CommEvent] = []
        for gpos, src, dst, tag, nbytes, send, arrival, label, seq in payload:
            keys.append((seq, gpos))
            events.append(
                CommEvent(
                    src=src, dst=dst, tag=_decode_tag(tag), nbytes=nbytes,
                    send_time=send, arrival_time=arrival, label=label, seq=seq,
                )
            )
        return keys, events

    def lookup(self, seq: int) -> CommEvent | None:
        """The last-recorded message stamped *seq*, wherever it lives."""
        probe = (seq, _INF)
        best_key: tuple | None = None
        best: CommEvent | None = None
        index = bisect_right(self.keys, probe) - 1
        if index >= 0 and self.keys[index][0] == seq:
            best_key, best = self.keys[index], self.events[index]
        index = bisect_right(self.straggler_keys, probe) - 1
        if index >= 0 and self.straggler_keys[index][0] == seq:
            key = self.straggler_keys[index]
            if best_key is None or key > best_key:
                best_key, best = key, self.straggler_events[index]
        seg = bisect_right(self._segment_min_keys, probe) - 1
        if seg >= 0:
            seg_keys, seg_events = self.cache.get(self, self.segments[seg])
            index = bisect_right(seg_keys, probe) - 1
            if index >= 0 and seg_keys[index][0] == seq:
                key = seg_keys[index]
                if best_key is None or key > best_key:
                    best_key, best = key, seg_events[index]
        return best


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of one streaming analysis.

    ``frontier_limit`` bounds the live in-memory event count (``None``
    never evicts); ``segment_events`` sizes retired segments;
    ``sample_per_label`` switches the wait log to reservoir sampling;
    ``summary_every`` (events) drives :func:`on_summary` with
    provisional live summaries.
    """

    frontier_limit: int | None = 8192
    segment_events: int = 1024
    spill_dir: str | Path | None = None
    contention_factor: float = DEFAULT_CONTENTION_FACTOR
    summary_every: int = 0
    on_summary: Callable[[dict], None] | None = None
    sample_per_label: int | None = None
    sample_seed: int = 7
    cache_segments: int = 48

    def __post_init__(self) -> None:
        if self.frontier_limit is not None and self.frontier_limit < 1:
            raise TraceError(
                f"frontier_limit must be >= 1 or None, got {self.frontier_limit}"
            )
        if self.segment_events < 1:
            raise TraceError(
                f"segment_events must be >= 1, got {self.segment_events}"
            )
        if self.contention_factor <= 1.0:
            raise TraceError(
                f"contention_factor must exceed 1, got {self.contention_factor}"
            )
        if self.summary_every < 0:
            raise TraceError(
                f"summary_every must be >= 0, got {self.summary_every}"
            )
        if self.sample_per_label is not None and self.sample_per_label < 2:
            raise TraceError(
                "sample_per_label must be >= 2 (need variance), got "
                f"{self.sample_per_label}"
            )
        if self.cache_segments < 1:
            raise TraceError(
                f"cache_segments must be >= 1, got {self.cache_segments}"
            )


@dataclass(frozen=True)
class StreamStats:
    """Ingestion accounting of one streaming analysis."""

    events_ingested: int
    states_ingested: int
    comms_ingested: int
    faults_ingested: int
    distinct_messages: int
    frontier_live: int
    frontier_high_water: int
    spill_bytes: int
    retired_segments: int

    def to_dict(self) -> dict[str, int]:
        return {
            "events_ingested": self.events_ingested,
            "states_ingested": self.states_ingested,
            "comms_ingested": self.comms_ingested,
            "faults_ingested": self.faults_ingested,
            "distinct_messages": self.distinct_messages,
            "frontier_live": self.frontier_live,
            "frontier_high_water": self.frontier_high_water,
            "spill_bytes": self.spill_bytes,
            "retired_segments": self.retired_segments,
        }


@dataclass(frozen=True)
class StreamResult:
    """What :meth:`TraceStreamAnalyzer.finalize` learned.

    ``path`` and ``waits`` are the same types the batch analysis
    produces; ``sampling`` is ``None`` in exact mode, else the
    per-entry error bounds of the sampled wait-state estimates.
    """

    path: CriticalPath
    waits: WaitStateReport
    num_ranks: int
    runtime_seconds: float
    stats: StreamStats
    sampling: dict[str, Any] | None


class _StreamingView(TimelineView):
    """The analyzer's frontier+spill store as a timeline view."""

    def __init__(self, analyzer: "TraceStreamAnalyzer") -> None:
        self._a = analyzer

    def anchor(self, rank: int, t: float, eps: float):
        series = self._a._states.get(rank)
        if series is None:
            return ListCursor([], -1)
        return series.cursor_at((t + eps, _INF, _INF))

    def message(self, seq: int) -> CommEvent | None:
        if seq < 0:
            return None
        return self._a._comms.lookup(seq)

    def job_end_time(self) -> float:
        return max(self._a._rank_end.values())

    def job_end_rank(self) -> int:
        end = self.job_end_time()
        return min(
            rank
            for rank, t1 in self._a._rank_end.items()
            if t1 >= end - _EPS
        )

    def walk_budget(self) -> int:
        return 4 * (self._a._node_count + len(self._a._seqs)) + 16


class TraceStreamAnalyzer:
    """Incremental trace analysis behind the tracer interface.

    Drive it directly (``MpiJob(..., tracer=analyzer)``), or tee a
    recorder into it (``TraceRecorder(sink=analyzer)``); then call
    :meth:`finalize` for the exact (or sampled) analysis and
    :meth:`close` to drop the spill log.
    """

    def __init__(
        self,
        config: StreamConfig | None = None,
        *,
        registry=None,
    ) -> None:
        self.config = config or StreamConfig()
        self._registry = registry
        if self.config.spill_dir is not None:
            self._dir = Path(self.config.spill_dir)
            self._dir.mkdir(parents=True, exist_ok=True)
            self._own_dir = False
        else:
            self._dir = Path(tempfile.mkdtemp(prefix="trace-stream-"))
            self._own_dir = True
        self._log = SpillLog(self._dir / "trace.spill")
        self._cache = _SegmentCache(self._log, self.config.cache_segments)
        self._states: dict[int, _StateSeries] = {}
        self._comms = _CommSeries(-1, self._cache)
        self._comm_gpos = 0
        self._seqs: set[int] = set()
        self._latencies: dict[str, array] = {}
        self._instances: dict[tuple, dict[str, dict[int, float]]] = {}
        self._useful: list[float] = []
        self._rank_end: dict[int, float] = {}
        self._num_ranks = 0
        self._node_count = 0
        self._end_time = 0.0
        self._wait_tail: list[StateEvent] = []
        self._wait_segments: list[tuple[int, int, int]] = []
        self._samples: dict[str, list[StateEvent]] = {}
        self._sample_counts: dict[str, int] = {}
        self._sample_rngs: dict[str, random.Random] = {}
        self._events = 0
        self._states_n = 0
        self._comms_n = 0
        self._faults_n = 0
        self._live = 0
        self._high_water = 0
        self._flushed_events = 0
        self._flushed_bytes = 0
        self._flushed_segments = 0
        self._next_summary = self.config.summary_every or 0
        self._live_buckets: dict[tuple[str, str], list] = {}
        self._live_classified = 0
        self._live_pending = 0
        self._live_reservoirs: dict[str, list[float]] = {}
        self._live_rngs: dict[str, random.Random] = {}
        self._live_counts: dict[str, int] = {}
        self._live_medians: dict[str, tuple[int, float]] = {}
        self._result: StreamResult | None = None
        self._closed = False

    # -- the tracer interface ----------------------------------------------

    def state(
        self,
        rank: int,
        label: str,
        t0: float,
        t1: float,
        *,
        kind: str = "state",
        cause: int = -1,
    ) -> None:
        """Ingest one state interval."""
        self._check_open()
        event = StateEvent(rank, label, t0, t1, kind=kind, cause=cause)
        series = self._states.get(rank)
        if series is None:
            series = self._states[rank] = _StateSeries(rank, self._cache)
        pos = series.next_pos
        series.next_pos = pos + 1
        series.add((t1, t0, pos), event)
        self._live += 1
        self._node_count += 1
        self._states_n += 1
        if rank >= self._num_ranks:
            self._num_ranks = rank + 1
        if t1 > self._end_time:
            self._end_time = t1
        previous = self._rank_end.get(rank)
        if previous is None or t1 > previous:
            self._rank_end[rank] = t1
        if kind == "compute":
            while len(self._useful) <= rank:
                self._useful.append(0.0)
            self._useful[rank] += event.duration
        if kind == "wait" and cause >= 0:
            self._note_wait(event)
        self._after_ingest()

    def comm(self, message) -> None:
        """Ingest one message record (reads the same attributes the
        batch recorder does)."""
        self._check_open()
        event = CommEvent(
            src=message.src,
            dst=message.dst,
            tag=message.tag,
            nbytes=message.nbytes,
            send_time=message.send_time,
            arrival_time=message.arrival_time,
            label=message.label,
            seq=getattr(message, "seq", -1),
        )
        self._comms_n += 1
        latencies = self._latencies.get(event.label)
        if latencies is None:
            latencies = self._latencies[event.label] = array("d")
        latencies.append(event.latency)
        top = max(event.src, event.dst)
        if top >= self._num_ranks:
            self._num_ranks = top + 1
        if event.arrival_time > self._end_time:
            self._end_time = event.arrival_time
        instance = event.collective_instance
        if instance is not None:
            record = self._instances.setdefault(
                instance, {"entry": {}, "exit": {}}
            )
            entry = record["entry"].get(event.src)
            if entry is None or event.send_time < entry:
                record["entry"][event.src] = event.send_time
            exit_ = record["exit"].get(event.dst)
            if exit_ is None or event.arrival_time > exit_:
                record["exit"][event.dst] = event.arrival_time
        if event.seq >= 0:
            self._seqs.add(event.seq)
            self._comms.add((event.seq, self._comm_gpos), event)
            self._comm_gpos += 1
            self._live += 1
        if self._tracking_live():
            self._note_live_latency(event.label, event.latency)
        self._after_ingest()

    def fault(self, kind: str, time_s: float, target: str, **detail) -> None:
        """Fault records don't join the happens-before analysis; they
        are counted so ingestion accounting stays complete."""
        self._check_open()
        self._faults_n += 1
        self._after_ingest()

    # -- ingestion internals ------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise TraceError("stream analyzer is closed")
        if self._result is not None:
            raise TraceError("stream analyzer already finalized")

    def _note_wait(self, event: StateEvent) -> None:
        k = self.config.sample_per_label
        if k is not None:
            label = event.label
            seen = self._sample_counts.get(label, 0) + 1
            self._sample_counts[label] = seen
            reservoir = self._samples.setdefault(label, [])
            if len(reservoir) < k:
                reservoir.append(event)
            else:
                rng = self._sample_rngs.get(label)
                if rng is None:
                    rng = self._sample_rngs[label] = random.Random(
                        f"trace-stream-sample:{self.config.sample_seed}:{label}"
                    )
                slot = rng.randrange(seen)
                if slot < k:
                    reservoir[slot] = event
        else:
            self._wait_tail.append(event)
            self._live += 1
            if len(self._wait_tail) >= self.config.segment_events:
                self._flush_waits()
        if self._tracking_live():
            self._provisional_classify(event)

    def _flush_waits(self) -> None:
        if not self._wait_tail:
            return
        payload = [
            [e.rank, e.label, e.t0, e.t1, e.kind, e.cause]
            for e in self._wait_tail
        ]
        offset, length = self._log.append("waits", -1, payload)
        self._wait_segments.append((offset, length, len(payload)))
        self._live -= len(self._wait_tail)
        self._wait_tail = []

    def _iter_waits(self) -> Iterator[StateEvent]:
        """Replay every receive wait in exact record order."""
        for offset, length, _count in self._wait_segments:
            payload = self._log.read(offset, length, kind="waits", rank=-1)
            for rank, label, t0, t1, kind, cause in payload:
                yield StateEvent(rank, label, t0, t1, kind=kind, cause=cause)
        yield from self._wait_tail

    def _after_ingest(self) -> None:
        self._events += 1
        if self._live > self._high_water:
            self._high_water = self._live
        limit = self.config.frontier_limit
        if limit is not None and self._live > limit:
            self._evict(limit)
        if self._events - self._flushed_events >= _METRICS_EVERY:
            self._flush_metrics()
        if (
            self.config.summary_every
            and self._events >= self._next_summary
        ):
            self._next_summary = self._events + self.config.summary_every
            if self.config.on_summary is not None:
                self.config.on_summary(self.live_summary())

    def _evict(self, limit: int) -> None:
        while self._live > limit:
            candidates = [
                series
                for series in list(self._states.values()) + [self._comms]
                if series.spillable() > 0
            ]
            if not candidates:
                # Only stragglers and the wait tail remain; nothing
                # retires (high-water then reflects the overflow).
                return
            series = max(candidates, key=lambda s: s.spillable())
            spilled = series.spill(
                self._log,
                min(self.config.segment_events, series.spillable()),
            )
            self._live -= spilled

    # -- live summaries (provisional) ---------------------------------------

    def _tracking_live(self) -> bool:
        return self.config.summary_every > 0

    def _note_live_latency(self, label: str, latency: float) -> None:
        seen = self._live_counts.get(label, 0) + 1
        self._live_counts[label] = seen
        reservoir = self._live_reservoirs.setdefault(label, [])
        if len(reservoir) < _LIVE_BASELINE_RESERVOIR:
            reservoir.append(latency)
        else:
            rng = self._live_rngs.get(label)
            if rng is None:
                rng = self._live_rngs[label] = random.Random(
                    f"trace-stream-live:{self.config.sample_seed}:{label}"
                )
            slot = rng.randrange(seen)
            if slot < _LIVE_BASELINE_RESERVOIR:
                reservoir[slot] = latency
        self._live_medians.pop(label, None)

    def _live_baseline(self, label: str) -> float:
        cached = self._live_medians.get(label)
        count = self._live_counts.get(label, 0)
        if cached is not None and cached[0] == count:
            return cached[1]
        reservoir = self._live_reservoirs.get(label)
        value = (
            max(statistics.median(reservoir), 1e-12) if reservoir else 1e-12
        )
        self._live_medians[label] = (count, value)
        return value

    def _provisional_classify(self, event: StateEvent) -> None:
        """Cheap per-wait attribution at ingest: no delay-cost
        recursion, provisional (reservoir) baselines.  Feeds live
        summaries only; finalize recomputes everything exactly."""
        message = self._comms.lookup(event.cause)
        if message is None:
            self._live_pending += 1
            return
        self._live_classified += 1
        blame: dict[str, float] = {}
        if event.duration <= 0.0:
            buffered = event.t0 - message.arrival_time
            if buffered > 0.0:
                blame["late-receiver"] = buffered
        else:
            pre_send = min(message.send_time, event.t1) - event.t0
            if pre_send > 0.0:
                blame["late-sender"] = pre_send
            t0 = max(event.t0, message.send_time)
            span = event.t1 - t0
            if span > 0.0:
                baseline = self._live_baseline(message.label)
                if message.latency > self.config.contention_factor * baseline:
                    expected = message.send_time + baseline
                    normal = max(0.0, min(event.t1, expected) - t0)
                    normal = min(span, normal)
                    if normal > 0.0:
                        blame["transfer"] = normal
                    if span - normal > 0.0:
                        blame["switch-contention"] = span - normal
                else:
                    blame["transfer"] = span
        for category, seconds in blame.items():
            if seconds > 0.0:
                bucket = self._live_buckets.setdefault(
                    (category, event.label), [0.0, 0]
                )
                bucket[0] += seconds
                bucket[1] += 1

    def live_summary(self) -> dict[str, Any]:
        """A provisional wait-state summary of the stream so far.

        Numbers are marked ``provisional``: message lookups can miss
        (wait seen before its comm record) and baselines come from a
        bounded reservoir, so they converge to — but are not — the
        finalized exact analysis.
        """
        top = sorted(
            self._live_buckets.items(), key=lambda kv: (-kv[1][0], kv[0])
        )[:5]
        return {
            "provisional": True,
            "events_ingested": self._events,
            "states_ingested": self._states_n,
            "comms_ingested": self._comms_n,
            "end_time_s": self._end_time,
            "num_ranks": self._num_ranks,
            "waits_classified": self._live_classified,
            "waits_pending": self._live_pending,
            "top_wait_states": [
                {
                    "category": category,
                    "label": label,
                    "seconds": seconds,
                    "occurrences": count,
                }
                for (category, label), (seconds, count) in top
            ],
            "frontier": {
                "live": self._live,
                "high_water": self._high_water,
                "spill_bytes": self._log.bytes_written,
                "retired_segments": self._log.segments_written,
            },
        }

    # -- metrics ------------------------------------------------------------

    def _flush_metrics(self) -> None:
        registry = (
            self._registry if self._registry is not None else current_registry()
        )
        delta = self._events - self._flushed_events
        if delta:
            registry.inc("trace.events_ingested", delta, volatile=True)
        registry.gauge_max(
            "trace.frontier_high_water", float(self._high_water), volatile=True
        )
        delta = self._log.bytes_written - self._flushed_bytes
        if delta:
            registry.inc("trace.spill_bytes", delta, volatile=True)
        delta = self._log.segments_written - self._flushed_segments
        if delta:
            registry.inc("trace.retired_segments", delta, volatile=True)
        self._flushed_events = self._events
        self._flushed_bytes = self._log.bytes_written
        self._flushed_segments = self._log.segments_written

    # -- finalization -------------------------------------------------------

    @property
    def stats(self) -> StreamStats:
        """Current ingestion accounting (valid before finalize too)."""
        return StreamStats(
            events_ingested=self._events,
            states_ingested=self._states_n,
            comms_ingested=self._comms_n,
            faults_ingested=self._faults_n,
            distinct_messages=len(self._seqs),
            frontier_live=self._live,
            frontier_high_water=self._high_water,
            spill_bytes=self._log.bytes_written,
            retired_segments=self._log.segments_written,
        )

    def finalize(self) -> StreamResult:
        """Run the exact (or sampled) analysis over everything ingested.

        Idempotent: the first call computes and caches the result.
        """
        if self._result is not None:
            return self._result
        if self._closed:
            raise TraceError("stream analyzer is closed")
        if self._node_count == 0:
            raise TraceError("cannot analyze an empty trace stream")
        baselines = baselines_from_latencies(
            {label: list(values) for label, values in self._latencies.items()}
        )
        view = _StreamingView(self)
        classifier = WaitClassifier(
            view, baselines, self.config.contention_factor
        )
        buckets: dict[tuple[str, str], list] = {}

        def add(category: str, label: str, seconds: float) -> None:
            bucket = buckets.setdefault((category, label), [0.0, 0])
            bucket[0] += seconds
            bucket[1] += 1

        sampling: dict[str, Any] | None = None
        if self.config.sample_per_label is None:
            for event in self._iter_waits():
                message = view.message(event.cause)
                if (
                    message is not None
                    and message.arrival_time > event.t1 + _EPS
                ):
                    raise TraceError(
                        f"wait {event} ends before its cause arrives at "
                        f"{message.arrival_time}"
                    )
                for category, seconds in classifier.classify(event).items():
                    if seconds > 0.0:
                        add(category, event.label, seconds)
        else:
            sampling = self._classify_sampled(classifier, add)

        for kind, spread in collective_instance_spreads(self._instances):
            add("collective-imbalance", kind, spread)

        path = extract_critical_path(view)
        useful = list(self._useful)
        useful.extend([0.0] * (self._num_ranks - len(useful)))
        waits = WaitStateReport(
            entries=wait_entries_from_buckets(buckets),
            efficiencies=EfficiencyReport(
                runtime_seconds=self._end_time,
                useful_seconds=tuple(useful),
            ),
            baseline_latency_s=dict(sorted(baselines.items())),
            contention_factor=self.config.contention_factor,
        )
        self._flush_metrics()
        self._result = StreamResult(
            path=path,
            waits=waits,
            num_ranks=self._num_ranks,
            runtime_seconds=self._end_time,
            stats=self.stats,
            sampling=sampling,
        )
        return self._result

    def _classify_sampled(self, classifier: WaitClassifier, add) -> dict:
        """Classify the per-label reservoirs exactly, scale by N/n, and
        report per-entry error bounds.

        Estimates are Horvitz–Thompson style: each sampled wait stands
        for ``N/n`` waits of its label, so category totals are unbiased;
        the standard error is ``N * sd(s_i) / sqrt(n)`` over the
        per-sample category seconds (zeros included).
        """
        entries: list[dict[str, Any]] = []
        for label in self._samples:
            reservoir = self._samples[label]
            population = self._sample_counts[label]
            sampled = len(reservoir)
            scale = population / sampled
            blames = [classifier.classify(event) for event in reservoir]
            categories = sorted({c for blame in blames for c in blame})
            for category in categories:
                values = [blame.get(category, 0.0) for blame in blames]
                total = math.fsum(values)
                if total <= 0.0:
                    continue
                estimate = scale * total
                sd = statistics.stdev(values) if sampled > 1 else 0.0
                stderr = population * sd / math.sqrt(sampled)
                add(category, label, estimate)
                entries.append(
                    {
                        "category": category,
                        "label": label,
                        "estimate_s": estimate,
                        "stderr_s": stderr,
                        "ci95_s": 1.96 * stderr,
                        "sampled": sampled,
                        "population": population,
                    }
                )
        return {
            "mode": "reservoir",
            "per_label_reservoir": self.config.sample_per_label,
            "seed": self.config.sample_seed,
            "entries": sorted(
                entries, key=lambda e: (-e["estimate_s"], e["category"], e["label"])
            ),
        }

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the spill log and drop an analyzer-owned spill dir."""
        if self._closed:
            return
        self._closed = True
        self._log.close()
        if self._own_dir:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "TraceStreamAnalyzer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def build_synthetic_trace(
    tracer,
    *,
    num_ranks: int = 36,
    rounds: int = 100,
    seed: int = 7,
) -> int:
    """Drive *tracer* with a fig4-shaped synthetic workload.

    Each round every rank computes, sends to three peers over a
    congestible fabric (8% of messages see an 8× latency tail, the
    incast pathology), and waits for its inbound messages in arrival
    order; message tags carry a collective instance so imbalance
    accounting engages.  Event volume is ~``10 * num_ranks`` per round
    (36 ranks → 360 events/round), so ``rounds`` scales the trace to
    any multiple of the fig4 event count.  Returns the event count.
    """
    if num_ranks < 2:
        raise TraceError(f"synthetic trace needs >= 2 ranks, got {num_ranks}")
    rng = random.Random(f"trace-synthetic:{seed}")
    now = [0.0] * num_ranks
    seq = 0
    events = 0
    for round_index in range(rounds):
        for rank in range(num_ranks):
            dt = 0.01 + 0.002 * rng.random()
            tracer.state(rank, "compute", now[rank], now[rank] + dt,
                         kind="compute")
            now[rank] += dt
            events += 1
        messages: list[CommEvent] = []
        for src in range(num_ranks):
            peers = [
                (src + 1) % num_ranks,
                (src + 7) % num_ranks,
                rng.randrange(num_ranks),
            ]
            for dst in peers:
                if dst == src:
                    dst = (src + 13) % num_ranks
                latency = 0.001 * (1.0 + 0.2 * rng.random())
                if rng.random() < 0.08:
                    latency *= 8.0
                send_time = now[src]
                tracer.state(src, "alltoallv", send_time, send_time + 1e-5,
                             kind="send", cause=seq)
                now[src] = send_time + 1e-5
                events += 1
                message = CommEvent(
                    src=src, dst=dst,
                    tag=("alltoallv", round_index, src),
                    nbytes=64 * 1024,
                    send_time=send_time,
                    arrival_time=send_time + latency,
                    label="alltoallv", seq=seq,
                )
                # Recorded at send time, the way MpiJob does — so an
                # incremental consumer can resolve a wait's cause the
                # moment the wait is ingested.
                tracer.comm(message)
                events += 1
                messages.append(message)
                seq += 1
        inbound: dict[int, list[CommEvent]] = {}
        for message in messages:
            inbound.setdefault(message.dst, []).append(message)
        for dst in range(num_ranks):
            arrivals = sorted(
                inbound.get(dst, ()), key=lambda m: (m.arrival_time, m.seq)
            )
            for message in arrivals:
                t0 = now[dst]
                t1 = max(t0, message.arrival_time)
                tracer.state(dst, "alltoallv", t0, t1, kind="wait",
                             cause=message.seq)
                now[dst] = t1
                events += 1
    return events
