"""ASCII timeline rendering of traces — Paraver's view, in a terminal.

The paper reads Figure 4 off a Paraver timeline: one row per rank,
colored state blocks, the delayed collectives visible as long stretches.
:func:`render_timeline` produces the terminal equivalent: one character
column per time bucket, one row per rank, the busiest state's symbol in
each cell — enough to *see* the delayed alltoallv regions in test logs
and examples.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.tracing.recorder import TraceRecorder

#: Symbols per state label; unknown labels cycle through the spares.
_STATE_SYMBOLS = {
    "compute": "#",
    "convolution": "#",
    "element-update": "#",
    "update": "#",
    "panel": "P",
    "send": ">",
    "recv": "<",
    "alltoallv": "A",
    "allreduce": "R",
    "barrier": "B",
    "bcast": "V",
    "halo": "H",
    "gather": "G",
    "scatter": "S",
    "retry": "r",
    "checkpoint": "C",
    "rework": "w",
}
_SPARE_SYMBOLS = "abcdefghijklm"
_IDLE = "."


def render_timeline(
    recorder: TraceRecorder,
    *,
    width: int = 100,
    ranks: list[int] | None = None,
    t_start: float = 0.0,
    t_end: float | None = None,
) -> str:
    """Render a per-rank state timeline.

    Each cell shows the state that occupied most of its time bucket on
    that rank (idle = ``.``).  A legend line maps symbols to labels.
    """
    if width < 10:
        raise TraceError(f"timeline width must be >= 10, got {width}")
    if not recorder.states:
        raise TraceError("cannot render an empty trace")
    end = recorder.end_time if t_end is None else t_end
    if end <= t_start:
        raise TraceError(f"empty time window [{t_start}, {end}]")
    all_ranks = sorted({s.rank for s in recorder.states})
    shown = all_ranks if ranks is None else [r for r in ranks if r in all_ranks]
    if not shown:
        raise TraceError("no requested rank appears in the trace")

    bucket = (end - t_start) / width
    symbols = dict(_STATE_SYMBOLS)
    spare = iter(_SPARE_SYMBOLS)

    def symbol_for(label: str) -> str:
        if label not in symbols:
            symbols[label] = next(spare, "?")
        return symbols[label]

    # occupancy[rank][column][label] -> seconds
    occupancy: dict[int, list[dict[str, float]]] = {
        rank: [dict() for _ in range(width)] for rank in shown
    }
    for state in recorder.states:
        if state.rank not in occupancy or state.t1 <= t_start or state.t0 >= end:
            continue
        first = max(0, int((state.t0 - t_start) / bucket))
        last = min(width - 1, int((state.t1 - t_start) / bucket))
        for column in range(first, last + 1):
            col_start = t_start + column * bucket
            overlap = min(state.t1, col_start + bucket) - max(state.t0, col_start)
            if overlap <= 0:
                continue
            cell = occupancy[state.rank][column]
            cell[state.label] = cell.get(state.label, 0.0) + overlap

    lines = []
    for rank in shown:
        row = []
        for cell in occupancy[rank]:
            if not cell:
                row.append(_IDLE)
            else:
                dominant = max(cell, key=cell.get)
                row.append(symbol_for(dominant))
        lines.append(f"rank {rank:3d} |{''.join(row)}|")

    by_symbol: dict[str, list[str]] = {}
    for label, sym in symbols.items():
        if any(sym in line for line in lines):
            by_symbol.setdefault(sym, []).append(label)
    legend = "  ".join(
        f"{sym}={'/'.join(sorted(labels))}"
        for sym, labels in sorted(by_symbol.items())
    )
    header = (
        f"timeline [{t_start:.3f}s .. {end:.3f}s] "
        f"({bucket * 1e3:.2f} ms/column)"
    )
    return "\n".join([header, *lines, f"legend: {legend}  .=idle"])
