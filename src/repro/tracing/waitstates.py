"""Scalasca-style wait-state classification and POP efficiency metrics.

The paper's Figure 4 finding — "when using 36 cores most of these
collective communications are longer and delayed", traced to "the
Ethernet switches used in Tibidabo" — is a *wait-state diagnosis*:
ranks sit blocked in ``MPI_Alltoallv`` not because peers are slow but
because the fabric is.  This module machine-reproduces that diagnosis.

Every receive-blocked second in a trace is attributed to a root cause,
the way Scalasca's wait-state and delay-cost analyses do:

* ``transfer``           — in-flight time within the trace-wide
  baseline latency for that operation: the network doing its job
  (benign);
* ``switch-contention``  — in-flight time *beyond* the baseline on a
  congested message: buffer overflow, RTO stalls, incast collapse —
  the Figure 4 pathology;
* ``late-sender``        — blocked before the matching send was even
  posted **and** the sender's lateness bottoms out in its own work
  rather than in earlier blocking: genuine peer slowness;
* ``late-receiver``      — the message sat delivered in the mailbox
  before the receive was posted.  Severity is the buffered time; no
  rank is blocked during it, so it is diagnostic only (benign);
* ``collective-imbalance`` — entry-time spread *introduced* since the
  previous collective (Scalasca's "wait at N×N", with inherited
  network skew factored out so it is not double-billed).

Blocked-before-send time is not taken at face value: a sender that
posts late because *it* was stuck behind congested messages earlier is
a victim, not a culprit.  :func:`classify_wait_states` therefore walks
the sender's timeline backwards (skipping intrinsic compute/send work)
and recursively blames the sender's own most recent blocked intervals
— Scalasca's delay-cost propagation.  Only lateness that survives the
walk with no blocking to blame is charged as ``late-sender``.  Costs
are per blocked receiver, so one congested message can legitimately be
billed for several ranks' waits (that is what "cost of a delay" means).

On top sit the POP-style efficiency metrics computed from per-rank
useful-compute time: load balance, communication efficiency, and
parallel efficiency (their product).

The per-wait arithmetic lives in
:class:`repro.tracing.attribution.WaitClassifier`, shared with the
streaming analyzer; this module holds the batch driver and the report
types both modes assemble.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.stats import summarize
from repro.errors import TraceError
from repro.tracing.attribution import WaitClassifier
from repro.tracing.graph import HappensBeforeGraph
from repro.tracing.recorder import TraceRecorder

#: Wait-state categories in display order.
WAIT_CATEGORIES = (
    "switch-contention",
    "late-sender",
    "collective-imbalance",
    "transfer",
    "late-receiver",
)

#: Categories that never count as the dominant pathology: ``transfer``
#: is the network doing its job, ``late-receiver`` severity is buffered
#: time during which no rank is blocked.
BENIGN_CATEGORIES = frozenset({"transfer", "late-receiver"})

#: A message whose end-to-end latency exceeds this multiple of its
#: label's trace-wide median counts as congested.
DEFAULT_CONTENTION_FACTOR = 3.0

_EPS = 1e-12


@dataclass(frozen=True)
class WaitEntry:
    """Aggregate wait time of one ``(category, label)`` pair."""

    category: str
    label: str
    seconds: float
    occurrences: int


@dataclass(frozen=True)
class EfficiencyReport:
    """POP-style efficiencies mined from per-rank useful compute time.

    ``parallel_efficiency == load_balance * communication_efficiency``
    holds by construction (both sides divide by max then runtime).
    """

    runtime_seconds: float
    useful_seconds: tuple[float, ...]

    @property
    def num_ranks(self) -> int:
        """Ranks the report covers."""
        return len(self.useful_seconds)

    @property
    def load_balance(self) -> float:
        """Mean over max useful compute time (1.0 = perfectly even)."""
        peak = max(self.useful_seconds)
        if peak <= 0.0:
            return 1.0
        return math.fsum(self.useful_seconds) / len(self.useful_seconds) / peak

    @property
    def communication_efficiency(self) -> float:
        """Best rank's useful share of the runtime (1.0 = no comm cost)."""
        if self.runtime_seconds <= 0.0:
            return 1.0
        return max(self.useful_seconds) / self.runtime_seconds

    @property
    def parallel_efficiency(self) -> float:
        """Average useful share of total rank-time; LB × CommE."""
        if self.runtime_seconds <= 0.0:
            return 1.0
        return (
            math.fsum(self.useful_seconds)
            / len(self.useful_seconds)
            / self.runtime_seconds
        )


@dataclass(frozen=True)
class WaitStateReport:
    """Outcome of the wait-state classification of one trace."""

    entries: tuple[WaitEntry, ...]
    efficiencies: EfficiencyReport
    baseline_latency_s: dict[str, float]
    contention_factor: float

    @property
    def total_wait_seconds(self) -> float:
        """All classified wait time (every category, all ranks)."""
        return math.fsum(entry.seconds for entry in self.entries)

    @property
    def blocked_seconds(self) -> float:
        """Wait time during which some rank was actually blocked
        (everything except ``late-receiver`` buffered time)."""
        return math.fsum(
            entry.seconds
            for entry in self.entries
            if entry.category != "late-receiver"
        )

    def seconds(self, category: str, label: str | None = None) -> float:
        """Wait time in *category*, optionally for one label."""
        return math.fsum(
            entry.seconds
            for entry in self.entries
            if entry.category == category
            and (label is None or entry.label == label)
        )

    @property
    def dominant(self) -> WaitEntry | None:
        """The single largest pathological entry, or ``None`` when
        nothing pathological was found.

        Benign categories (:data:`BENIGN_CATEGORIES`) never dominate,
        and neither does noise: an entry must carry at least 1% of the
        blocked time to count as a diagnosis.
        """
        floor = max(0.01 * self.blocked_seconds, _EPS)
        pathological = [
            entry
            for entry in self.entries
            if entry.category not in BENIGN_CATEGORIES
            and entry.seconds > floor
        ]
        if not pathological:
            return None
        return max(
            sorted(pathological, key=lambda e: (e.category, e.label)),
            key=lambda e: e.seconds,
        )

    def explain(self) -> str:
        """One sentence naming the root cause — the automated
        equivalent of the paper's Figure 4 caption."""
        top = self.dominant
        if top is None:
            return "no pathological wait states detected"
        blocked = self.blocked_seconds
        share = top.seconds / blocked if blocked > 0 else 0.0
        return (
            f"dominant wait state: {top.category} on {top.label!r} "
            f"({top.seconds:.3f}s across {top.occurrences} waits, "
            f"{share:.0%} of all blocked time)"
        )


def efficiency_report(recorder: TraceRecorder) -> EfficiencyReport:
    """POP efficiencies from *recorder*'s compute intervals."""
    if not recorder.states:
        raise TraceError("cannot compute efficiencies of an empty trace")
    useful = [0.0] * recorder.num_ranks
    for state in recorder.states:
        if state.kind == "compute":
            useful[state.rank] += state.duration
    return EfficiencyReport(
        runtime_seconds=recorder.end_time, useful_seconds=tuple(useful)
    )


def _baselines(recorder: TraceRecorder) -> dict[str, float]:
    latencies: dict[str, list[float]] = {}
    for comm in recorder.comms:
        latencies.setdefault(comm.label, []).append(comm.latency)
    return baselines_from_latencies(latencies)


def baselines_from_latencies(
    latencies: Mapping[str, Iterable[float]]
) -> dict[str, float]:
    """Per-label baseline latency: the trace-wide median (floored at
    :data:`_EPS`).  The median is order-independent, so batch and
    streaming ingestion agree exactly."""
    return {
        label: max(summarize(list(values)).median, _EPS)
        for label, values in latencies.items()
    }


def wait_entries_from_buckets(
    buckets: Mapping[tuple[str, str], list]
) -> tuple[WaitEntry, ...]:
    """Sort accumulated ``(category, label) -> [seconds, count]``
    buckets into the report's entry order (largest first)."""
    return tuple(
        WaitEntry(category, label, seconds, int(count))
        for (category, label), (seconds, count) in sorted(
            buckets.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
    )


def collective_instance_spreads(
    instances: Mapping[tuple, Mapping[str, Mapping[int, float]]]
) -> list[tuple[str, float]]:
    """Entry-time spread per collective instance, *introduced* since
    the previous instance (inherited skew is the previous waits' fault
    and already billed there).

    *instances* maps ``(kind, seq)`` to ``{"entry": {rank: first send
    time}, "exit": {rank: last arrival}}`` — min/max accumulations, so
    batch and streaming ingestion build the identical structure.
    """
    spreads: list[tuple[str, float]] = []
    previous_exit: Mapping[int, float] = {}
    for kind, _sequence in sorted(instances, key=lambda k: (k[1], k[0])):
        record = instances[(kind, _sequence)]
        entries = record["entry"]
        if len(entries) >= 2:
            introduced = {
                rank: entry - previous_exit.get(rank, 0.0)
                for rank, entry in entries.items()
            }
            latest = max(introduced.values())
            spread = math.fsum(latest - value for value in introduced.values())
            if spread > 0.0:
                spreads.append((kind, spread))
        previous_exit = record["exit"]
    return spreads


def _introduced_imbalance(
    recorder: TraceRecorder,
) -> list[tuple[str, float]]:
    instances: dict[tuple, dict[str, dict[int, float]]] = {}
    for comm in recorder.comms:
        instance = comm.collective_instance
        if instance is None:
            continue
        record = instances.setdefault(instance, {"entry": {}, "exit": {}})
        entry = record["entry"].get(comm.src)
        if entry is None or comm.send_time < entry:
            record["entry"][comm.src] = comm.send_time
        exit_ = record["exit"].get(comm.dst)
        if exit_ is None or comm.arrival_time > exit_:
            record["exit"][comm.dst] = comm.arrival_time
    return collective_instance_spreads(instances)


def classify_wait_states(
    recorder: TraceRecorder,
    *,
    contention_factor: float = DEFAULT_CONTENTION_FACTOR,
) -> WaitStateReport:
    """Root-cause every receive wait in *recorder* (see module docs).

    The baseline latency per operation label is the trace-wide median
    — on a congested run most messages are still clean (the Figure 4
    observation), so the median is the uncongested reference and
    messages beyond ``contention_factor`` times it are congested.
    """
    if contention_factor <= 1.0:
        raise TraceError(
            f"contention_factor must exceed 1, got {contention_factor}"
        )
    if not recorder.states:
        raise TraceError("cannot classify an empty trace")

    view = HappensBeforeGraph(recorder)
    classifier = WaitClassifier(view, _baselines(recorder), contention_factor)
    buckets: dict[tuple[str, str], list] = {}

    def add(category: str, label: str, seconds: float) -> None:
        bucket = buckets.setdefault((category, label), [0.0, 0])
        bucket[0] += seconds
        bucket[1] += 1

    for state in recorder.states:
        if state.kind != "wait" or state.cause < 0:
            continue
        for category, seconds in classifier.classify(state).items():
            if seconds > 0.0:
                add(category, state.label, seconds)

    for kind, spread in _introduced_imbalance(recorder):
        add("collective-imbalance", kind, spread)

    return WaitStateReport(
        entries=wait_entries_from_buckets(buckets),
        efficiencies=efficiency_report(recorder),
        baseline_latency_s=dict(sorted(classifier.baselines.items())),
        contention_factor=contention_factor,
    )
