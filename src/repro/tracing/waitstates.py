"""Scalasca-style wait-state classification and POP efficiency metrics.

The paper's Figure 4 finding — "when using 36 cores most of these
collective communications are longer and delayed", traced to "the
Ethernet switches used in Tibidabo" — is a *wait-state diagnosis*:
ranks sit blocked in ``MPI_Alltoallv`` not because peers are slow but
because the fabric is.  This module machine-reproduces that diagnosis.

Every receive-blocked second in a trace is attributed to a root cause,
the way Scalasca's wait-state and delay-cost analyses do:

* ``transfer``           — in-flight time within the trace-wide
  baseline latency for that operation: the network doing its job
  (benign);
* ``switch-contention``  — in-flight time *beyond* the baseline on a
  congested message: buffer overflow, RTO stalls, incast collapse —
  the Figure 4 pathology;
* ``late-sender``        — blocked before the matching send was even
  posted **and** the sender's lateness bottoms out in its own work
  rather than in earlier blocking: genuine peer slowness;
* ``late-receiver``      — the message sat delivered in the mailbox
  before the receive was posted.  Severity is the buffered time; no
  rank is blocked during it, so it is diagnostic only (benign);
* ``collective-imbalance`` — entry-time spread *introduced* since the
  previous collective (Scalasca's "wait at N×N", with inherited
  network skew factored out so it is not double-billed).

Blocked-before-send time is not taken at face value: a sender that
posts late because *it* was stuck behind congested messages earlier is
a victim, not a culprit.  :func:`classify_wait_states` therefore walks
the sender's timeline backwards (skipping intrinsic compute/send work)
and recursively blames the sender's own most recent blocked intervals
— Scalasca's delay-cost propagation.  Only lateness that survives the
walk with no blocking to blame is charged as ``late-sender``.  Costs
are per blocked receiver, so one congested message can legitimately be
billed for several ranks' waits (that is what "cost of a delay" means).

On top sit the POP-style efficiency metrics computed from per-rank
useful-compute time: load balance, communication efficiency, and
parallel efficiency (their product).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from repro.core.stats import summarize
from repro.errors import TraceError
from repro.tracing.events import CommEvent, StateEvent
from repro.tracing.recorder import TraceRecorder

#: Wait-state categories in display order.
WAIT_CATEGORIES = (
    "switch-contention",
    "late-sender",
    "collective-imbalance",
    "transfer",
    "late-receiver",
)

#: Categories that never count as the dominant pathology: ``transfer``
#: is the network doing its job, ``late-receiver`` severity is buffered
#: time during which no rank is blocked.
BENIGN_CATEGORIES = frozenset({"transfer", "late-receiver"})

#: A message whose end-to-end latency exceeds this multiple of its
#: label's trace-wide median counts as congested.
DEFAULT_CONTENTION_FACTOR = 3.0

#: How many late-sender hops the delay-cost walk follows before giving
#: up and charging the remainder as ``late-sender``.
_MAX_PROPAGATION_DEPTH = 8

_EPS = 1e-12


@dataclass(frozen=True)
class WaitEntry:
    """Aggregate wait time of one ``(category, label)`` pair."""

    category: str
    label: str
    seconds: float
    occurrences: int


@dataclass(frozen=True)
class EfficiencyReport:
    """POP-style efficiencies mined from per-rank useful compute time.

    ``parallel_efficiency == load_balance * communication_efficiency``
    holds by construction (both sides divide by max then runtime).
    """

    runtime_seconds: float
    useful_seconds: tuple[float, ...]

    @property
    def num_ranks(self) -> int:
        """Ranks the report covers."""
        return len(self.useful_seconds)

    @property
    def load_balance(self) -> float:
        """Mean over max useful compute time (1.0 = perfectly even)."""
        peak = max(self.useful_seconds)
        if peak <= 0.0:
            return 1.0
        return math.fsum(self.useful_seconds) / len(self.useful_seconds) / peak

    @property
    def communication_efficiency(self) -> float:
        """Best rank's useful share of the runtime (1.0 = no comm cost)."""
        if self.runtime_seconds <= 0.0:
            return 1.0
        return max(self.useful_seconds) / self.runtime_seconds

    @property
    def parallel_efficiency(self) -> float:
        """Average useful share of total rank-time; LB × CommE."""
        if self.runtime_seconds <= 0.0:
            return 1.0
        return (
            math.fsum(self.useful_seconds)
            / len(self.useful_seconds)
            / self.runtime_seconds
        )


@dataclass(frozen=True)
class WaitStateReport:
    """Outcome of the wait-state classification of one trace."""

    entries: tuple[WaitEntry, ...]
    efficiencies: EfficiencyReport
    baseline_latency_s: dict[str, float]
    contention_factor: float

    @property
    def total_wait_seconds(self) -> float:
        """All classified wait time (every category, all ranks)."""
        return math.fsum(entry.seconds for entry in self.entries)

    @property
    def blocked_seconds(self) -> float:
        """Wait time during which some rank was actually blocked
        (everything except ``late-receiver`` buffered time)."""
        return math.fsum(
            entry.seconds
            for entry in self.entries
            if entry.category != "late-receiver"
        )

    def seconds(self, category: str, label: str | None = None) -> float:
        """Wait time in *category*, optionally for one label."""
        return math.fsum(
            entry.seconds
            for entry in self.entries
            if entry.category == category
            and (label is None or entry.label == label)
        )

    @property
    def dominant(self) -> WaitEntry | None:
        """The single largest pathological entry, or ``None`` when
        nothing pathological was found.

        Benign categories (:data:`BENIGN_CATEGORIES`) never dominate,
        and neither does noise: an entry must carry at least 1% of the
        blocked time to count as a diagnosis.
        """
        floor = max(0.01 * self.blocked_seconds, _EPS)
        pathological = [
            entry
            for entry in self.entries
            if entry.category not in BENIGN_CATEGORIES
            and entry.seconds > floor
        ]
        if not pathological:
            return None
        return max(
            sorted(pathological, key=lambda e: (e.category, e.label)),
            key=lambda e: e.seconds,
        )

    def explain(self) -> str:
        """One sentence naming the root cause — the automated
        equivalent of the paper's Figure 4 caption."""
        top = self.dominant
        if top is None:
            return "no pathological wait states detected"
        blocked = self.blocked_seconds
        share = top.seconds / blocked if blocked > 0 else 0.0
        return (
            f"dominant wait state: {top.category} on {top.label!r} "
            f"({top.seconds:.3f}s across {top.occurrences} waits, "
            f"{share:.0%} of all blocked time)"
        )


def efficiency_report(recorder: TraceRecorder) -> EfficiencyReport:
    """POP efficiencies from *recorder*'s compute intervals."""
    if not recorder.states:
        raise TraceError("cannot compute efficiencies of an empty trace")
    useful = [0.0] * recorder.num_ranks
    for state in recorder.states:
        if state.kind == "compute":
            useful[state.rank] += state.duration
    return EfficiencyReport(
        runtime_seconds=recorder.end_time, useful_seconds=tuple(useful)
    )


def _baselines(recorder: TraceRecorder) -> dict[str, float]:
    latencies: dict[str, list[float]] = {}
    for comm in recorder.comms:
        latencies.setdefault(comm.label, []).append(comm.latency)
    return {
        label: max(summarize(values).median, _EPS)
        for label, values in latencies.items()
    }


class _Classifier:
    """One classification pass over a trace (see module docs)."""

    def __init__(self, recorder: TraceRecorder, contention_factor: float) -> None:
        self.messages: dict[int, CommEvent] = {
            c.seq: c for c in recorder.comms if c.seq >= 0
        }
        self.baselines = _baselines(recorder)
        self.factor = contention_factor
        self.states_by_rank: dict[int, list[StateEvent]] = {}
        for state in recorder.states:
            self.states_by_rank.setdefault(state.rank, []).append(state)
        for states in self.states_by_rank.values():
            states.sort(key=lambda s: (s.t1, s.t0))
        self._end_index = {
            rank: [s.t1 for s in states]
            for rank, states in self.states_by_rank.items()
        }

    def congested(self, message: CommEvent) -> bool:
        baseline = self.baselines.get(message.label, _EPS)
        return message.latency > self.factor * baseline

    def split_in_flight(
        self, message: CommEvent, t0: float, t1: float, blame: dict[str, float]
    ) -> None:
        """Attribute blocked-while-in-flight time ``[t0, t1]``."""
        span = t1 - t0
        if span <= 0.0:
            return
        if self.congested(message):
            # Within the baseline the network is merely transferring;
            # everything past the expected arrival is the switch.
            expected_arrival = message.send_time + self.baselines.get(
                message.label, _EPS
            )
            normal = max(0.0, min(t1, expected_arrival) - t0)
            blame["transfer"] = blame.get("transfer", 0.0) + min(span, normal)
            excess = span - min(span, normal)
            if excess > 0.0:
                blame["switch-contention"] = (
                    blame.get("switch-contention", 0.0) + excess
                )
        else:
            blame["transfer"] = blame.get("transfer", 0.0) + span

    def attribute_lateness(
        self, rank: int, before: float, gap: float, blame: dict[str, float], depth: int
    ) -> None:
        """Blame *rank*'s most recent blocking before *before* for *gap*
        seconds of lateness (Scalasca-style delay-cost propagation).

        Intrinsic work (compute, send overhead) is skipped: equal work
        cannot make one rank later than another, earlier blocking can.
        Lateness not explained by any blocking is genuine
        ``late-sender``.
        """
        if depth > _MAX_PROPAGATION_DEPTH:
            blame["late-sender"] = blame.get("late-sender", 0.0) + gap
            return
        states = self.states_by_rank.get(rank, [])
        index = bisect_right(self._end_index.get(rank, []), before + _EPS) - 1
        while gap > _EPS and index >= 0:
            state = states[index]
            index -= 1
            if state.kind != "wait" or state.duration <= 0.0 or state.cause < 0:
                continue
            message = self.messages.get(state.cause)
            if message is None:
                continue
            # Most recent lateness first: the in-flight tail of the
            # wait, then (recursively) the blocked-before-send head.
            in_flight = max(0.0, state.t1 - max(state.t0, message.send_time))
            take = min(gap, in_flight)
            if take > 0.0:
                self.split_in_flight(
                    message, state.t1 - take, state.t1, blame
                )
                gap -= take
            pre_send = max(0.0, min(message.send_time, state.t1) - state.t0)
            take = min(gap, pre_send)
            if take > 0.0:
                self.attribute_lateness(
                    message.src, message.send_time, take, blame, depth + 1
                )
                gap -= take
        if gap > _EPS:
            blame["late-sender"] = blame.get("late-sender", 0.0) + gap

    def classify(self, state: StateEvent) -> dict[str, float]:
        """Root-cause one receive wait; returns seconds per category."""
        blame: dict[str, float] = {}
        message = self.messages.get(state.cause)
        if message is None:
            return blame
        if state.duration <= 0.0:
            buffered = state.t0 - message.arrival_time
            if buffered > 0.0:
                blame["late-receiver"] = buffered
            return blame
        pre_send = min(message.send_time, state.t1) - state.t0
        if pre_send > 0.0:
            self.attribute_lateness(
                message.src, message.send_time, pre_send, blame, 0
            )
        self.split_in_flight(
            message, max(state.t0, message.send_time), state.t1, blame
        )
        return blame


def _introduced_imbalance(
    recorder: TraceRecorder,
) -> list[tuple[str, float]]:
    """Entry-time spread per collective instance, *introduced* since the
    previous instance (inherited skew is the previous waits' fault and
    already billed there)."""
    instances: dict[tuple, dict[str, dict[int, float]]] = {}
    for comm in recorder.comms:
        instance = comm.collective_instance
        if instance is None:
            continue
        record = instances.setdefault(instance, {"entry": {}, "exit": {}})
        entry = record["entry"].get(comm.src)
        if entry is None or comm.send_time < entry:
            record["entry"][comm.src] = comm.send_time
        exit_ = record["exit"].get(comm.dst)
        if exit_ is None or comm.arrival_time > exit_:
            record["exit"][comm.dst] = comm.arrival_time
    spreads: list[tuple[str, float]] = []
    previous_exit: dict[int, float] = {}
    for kind, _sequence in sorted(instances, key=lambda k: (k[1], k[0])):
        record = instances[(kind, _sequence)]
        entries = record["entry"]
        if len(entries) >= 2:
            introduced = {
                rank: entry - previous_exit.get(rank, 0.0)
                for rank, entry in entries.items()
            }
            latest = max(introduced.values())
            spread = math.fsum(latest - value for value in introduced.values())
            if spread > 0.0:
                spreads.append((kind, spread))
        previous_exit = record["exit"]
    return spreads


def classify_wait_states(
    recorder: TraceRecorder,
    *,
    contention_factor: float = DEFAULT_CONTENTION_FACTOR,
) -> WaitStateReport:
    """Root-cause every receive wait in *recorder* (see module docs).

    The baseline latency per operation label is the trace-wide median
    — on a congested run most messages are still clean (the Figure 4
    observation), so the median is the uncongested reference and
    messages beyond ``contention_factor`` times it are congested.
    """
    if contention_factor <= 1.0:
        raise TraceError(
            f"contention_factor must exceed 1, got {contention_factor}"
        )
    if not recorder.states:
        raise TraceError("cannot classify an empty trace")

    classifier = _Classifier(recorder, contention_factor)
    buckets: dict[tuple[str, str], list[float]] = {}

    def add(category: str, label: str, seconds: float) -> None:
        bucket = buckets.setdefault((category, label), [0.0, 0])
        bucket[0] += seconds
        bucket[1] += 1

    for state in recorder.states:
        if state.kind != "wait" or state.cause < 0:
            continue
        for category, seconds in classifier.classify(state).items():
            if seconds > 0.0:
                add(category, state.label, seconds)

    for kind, spread in _introduced_imbalance(recorder):
        add("collective-imbalance", kind, spread)

    entries = tuple(
        WaitEntry(category, label, seconds, int(count))
        for (category, label), (seconds, count) in sorted(
            buckets.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
    )
    return WaitStateReport(
        entries=entries,
        efficiencies=efficiency_report(recorder),
        baseline_latency_s=dict(sorted(classifier.baselines.items())),
        contention_factor=contention_factor,
    )
