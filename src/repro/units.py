"""Unit helpers used throughout the library.

The simulators internally work in SI base units: seconds, bytes, hertz,
flop/s, watts and joules.  This module centralizes the conversion
constants and formatting helpers so that magic numbers such as ``1e9``
never appear at call sites.

Two families of byte constants are provided because the paper mixes
them freely (cache sizes are binary, network rates are decimal):

* binary (IEC): :data:`KiB`, :data:`MiB`, :data:`GiB`
* decimal (SI): :data:`KB`, :data:`MB`, :data:`GB`
"""

from __future__ import annotations

# --- frequency -------------------------------------------------------------

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- bytes, binary (IEC) ---------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# --- bytes, decimal (SI) ---------------------------------------------------

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# --- rates -----------------------------------------------------------------

MFLOPS = 1e6
GFLOPS = 1e9
TFLOPS = 1e12
PFLOPS = 1e15
EFLOPS = 1e18

#: Bits per second for network rates ("100 Mb Ethernet", "1 GbE").
MBIT_PER_S = 1e6
GBIT_PER_S = 1e9

# --- time ------------------------------------------------------------------

NS = 1e-9
US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count (or bit rate) to bytes (or bytes/s)."""
    return bits / 8.0


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count (or byte rate) to bits (or bits/s)."""
    return nbytes * 8.0


def format_bytes(nbytes: float, *, binary: bool = True) -> str:
    """Render a byte count with an appropriate IEC or SI suffix.

    >>> format_bytes(32 * 1024)
    '32.0 KiB'
    >>> format_bytes(1e9, binary=False)
    '1.0 GB'
    """
    step = 1024.0 if binary else 1000.0
    suffixes = (
        ["B", "KiB", "MiB", "GiB", "TiB"] if binary else ["B", "KB", "MB", "GB", "TB"]
    )
    value = float(nbytes)
    for suffix in suffixes:
        if abs(value) < step or suffix == suffixes[-1]:
            return f"{value:.1f} {suffix}"
        value /= step
    raise AssertionError("unreachable")


def format_rate(flops: float) -> str:
    """Render a flop/s rate with an appropriate suffix.

    >>> format_rate(24e9)
    '24.0 GFLOPS'
    """
    for threshold, suffix in (
        (EFLOPS, "EFLOPS"),
        (PFLOPS, "PFLOPS"),
        (TFLOPS, "TFLOPS"),
        (GFLOPS, "GFLOPS"),
        (MFLOPS, "MFLOPS"),
    ):
        if abs(flops) >= threshold:
            return f"{flops / threshold:.1f} {suffix}"
    return f"{flops:.1f} FLOPS"


def format_seconds(seconds: float) -> str:
    """Render a duration compactly, switching units below one second.

    >>> format_seconds(0.0000021)
    '2.100 us'
    >>> format_seconds(186.8)
    '186.800 s'
    """
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f} s"
    if abs(seconds) >= MS:
        return f"{seconds / MS:.3f} ms"
    if abs(seconds) >= US:
        return f"{seconds / US:.3f} us"
    return f"{seconds / NS:.3f} ns"
