"""Tests for the application catalog (Table I) and the cluster-side
behaviour of the scalable app models (Figure 3 scaling shapes on a
small Tibidabo)."""

import pytest

from repro.apps import BigDFT, Linpack, Specfem3D
from repro.apps.catalog import MONT_BLANC_APPLICATIONS, application_by_code
from repro.cluster import tibidabo
from repro.errors import ConfigurationError


class TestCatalog:
    def test_eleven_applications(self):
        """Table I: 'Eleven applications were selected'."""
        assert len(MONT_BLANC_APPLICATIONS) == 11

    def test_paper_studies_specfem_and_bigdft(self):
        studied = [a.code for a in MONT_BLANC_APPLICATIONS if a.studied_in_paper]
        assert sorted(studied) == ["BigDFT", "SPECFEM3D"]

    def test_lookup_case_insensitive(self):
        assert application_by_code("bigdft").institution == "CEA"

    def test_unknown_code_rejected(self):
        with pytest.raises(ConfigurationError):
            application_by_code("DOOM")

    def test_domains_match_table1(self):
        assert application_by_code("YALES2").domain == "Combustion"
        assert application_by_code("BQCD").domain == "Particle Physics"
        assert application_by_code("COSMO").domain == "Weather Forecast"


@pytest.fixture(scope="module")
def small_cluster():
    return tibidabo(num_nodes=16, seed=11)


class TestClusterRuns:
    def test_linpack_parallel_beats_serial(self, small_cluster):
        app = Linpack(cluster_n=4096, nb=256)
        t1 = app.run_cluster(small_cluster, 1)
        t8 = app.run_cluster(small_cluster, 8)
        assert t8 < t1 / 4

    def test_specfem_scales_nearly_ideally(self, small_cluster):
        app = Specfem3D(timesteps=5)
        t4 = app.run_cluster(small_cluster, 4)
        t16 = app.run_cluster(small_cluster, 16)
        speedup = 4 * t4 / t16
        assert speedup > 0.9 * 16

    def test_bigdft_scales_worse_than_specfem(self, small_cluster):
        """Figure 3: BigDFT's efficiency 'drops rapidly' while
        SPECFEM3D's stays excellent."""
        bigdft = BigDFT(scf_iterations=3)
        specfem = Specfem3D(timesteps=5)

        def efficiency(app):
            t2 = app.run_cluster(small_cluster, 2)
            t16 = app.run_cluster(small_cluster, 16)
            return (2 * t2 / t16) / 16

        assert efficiency(specfem) > efficiency(bigdft)

    def test_speedup_curve_requires_baseline_in_sweep(self, small_cluster):
        app = Specfem3D(timesteps=2)
        with pytest.raises(ConfigurationError):
            app.speedup_curve(small_cluster, [8, 16], baseline_cores=4)

    def test_speedup_curve_baseline_normalization(self, small_cluster):
        """The Figure 3b convention: speedup(baseline) == baseline."""
        app = Specfem3D(timesteps=3)
        curve = dict(app.speedup_curve(small_cluster, [4, 8], baseline_cores=4))
        assert curve[4] == pytest.approx(4.0)

    def test_specfem_memory_constraint(self, small_cluster):
        """'the use-case cannot be run on less than 2 nodes'."""
        app = Specfem3D()
        with pytest.raises(ConfigurationError):
            app.validate_memory(small_cluster, 2)  # 2 ranks -> 1 node
        app.validate_memory(small_cluster, 4)

    def test_upgraded_switches_help_bigdft(self):
        """The paper's anticipated fix: 'upgrading the Ethernet
        switches' removes the collapse."""
        app = BigDFT(scf_iterations=3)
        lossy = tibidabo(num_nodes=16, seed=3)
        clean = tibidabo(num_nodes=16, seed=3, upgraded_switches=True)
        t_lossy = app.run_cluster(lossy, 32)
        t_clean = app.run_cluster(clean, 32)
        assert t_clean < t_lossy

    def test_pairwise_alltoallv_ablation_beats_linear(self):
        """The gentle pairwise algorithm avoids the incast the linear
        (real-library) algorithm creates."""
        cluster = tibidabo(num_nodes=16, seed=3)
        linear = BigDFT(scf_iterations=3, alltoallv_algorithm="linear")
        pairwise = BigDFT(scf_iterations=3, alltoallv_algorithm="pairwise")
        assert pairwise.run_cluster(cluster, 32) < linear.run_cluster(cluster, 32)

    def test_rank_flop_conservation(self, small_cluster):
        """Strong scaling: total LINPACK update work is independent of
        P (within panel rounding)."""
        app = Linpack(cluster_n=2048, nb=256)
        base = app.cluster_flops()
        assert base == pytest.approx((2 / 3) * 2048**3)
