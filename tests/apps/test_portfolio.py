"""Tests for repro.apps.portfolio (the full Table I portfolio)."""

import pytest

from repro.apps.catalog import MONT_BLANC_APPLICATIONS
from repro.apps.portfolio import (
    CharacterizedApp,
    CommPattern,
    PORTFOLIO_CHARACTERS,
    WorkloadCharacter,
    character_by_code,
    portfolio_apps,
    portfolio_scaling_report,
)
from repro.arch.isa import Precision
from repro.arch.machines import SNOWBALL_A9500, XEON_X5550
from repro.cluster import tibidabo
from repro.errors import ConfigurationError


class TestCharacters:
    def test_portfolio_completes_table1(self):
        """Nine characterized codes + the two detailed models = the
        full eleven of Table I."""
        table1 = {a.code for a in MONT_BLANC_APPLICATIONS}
        characterized = {c.code for c in PORTFOLIO_CHARACTERS}
        assert characterized | {"SPECFEM3D", "BigDFT"} == table1
        assert len(characterized) == 9

    def test_domains_match_table1(self):
        by_code = {a.code: a.domain for a in MONT_BLANC_APPLICATIONS}
        for character in PORTFOLIO_CHARACTERS:
            assert character.domain == by_code[character.code]

    def test_lookup(self):
        assert character_by_code("bqcd").pattern is CommPattern.HALO_EXCHANGE
        with pytest.raises(ConfigurationError):
            character_by_code("DOOM")

    def test_spectral_codes_are_alltoall(self):
        """Plane-wave DFT transposes — the BigDFT-syndrome candidates."""
        assert (
            character_by_code("Quantum Expresso").pattern
            is CommPattern.TRANSPOSE_ALLTOALL
        )

    def test_invalid_characters_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadCharacter(
                code="x", domain="d", precision=Precision.DOUBLE,
                total_flops=0, kernel_efficiency=0.5, bytes_per_flop=0.1,
                pattern=CommPattern.EMBARRASSING, comm_volume_bytes=0, steps=1,
            )
        with pytest.raises(ConfigurationError):
            WorkloadCharacter(
                code="x", domain="d", precision=Precision.DOUBLE,
                total_flops=1e9, kernel_efficiency=1.5, bytes_per_flop=0.1,
                pattern=CommPattern.EMBARRASSING, comm_volume_bytes=0, steps=1,
            )

    def test_app_requires_character(self):
        with pytest.raises(ConfigurationError):
            CharacterizedApp()


class TestSingleNode:
    @pytest.mark.parametrize("code", [c.code for c in PORTFOLIO_CHARACTERS])
    def test_every_code_runs_on_both_platforms(self, code):
        app = portfolio_apps()[code]
        snow = app.run(SNOWBALL_A9500)
        xeon = app.run(XEON_X5550)
        assert snow.elapsed_seconds > xeon.elapsed_seconds
        assert snow.metric_name == "s"

    def test_memory_bound_codes_track_bandwidth_not_peak(self):
        """YALES2 (0.9 B/flop) must show a ratio far below the 42x DP
        peak gap; compute-bound SMMP sits near it."""
        apps = portfolio_apps()
        def ratio(code):
            app = apps[code]
            return (
                app.run(SNOWBALL_A9500).elapsed_seconds
                / app.run(XEON_X5550).elapsed_seconds
            )
        assert ratio("SMMP") > 35
        assert ratio("YALES2") < ratio("SMMP") + 1


class TestClusterScaling:
    @pytest.fixture(scope="class")
    def cluster(self):
        return tibidabo(num_nodes=32, seed=11)

    def test_report_covers_all_nine(self, cluster):
        verdicts = portfolio_scaling_report(cluster, cores=16, baseline=2)
        assert len(verdicts) == 9

    def test_halo_codes_scale_cleanly(self, cluster):
        verdicts = {
            v.code: v for v in portfolio_scaling_report(cluster, cores=32, baseline=2)
        }
        for code in ("COSMO", "BQCD", "YALES2"):
            assert verdicts[code].efficiency > 0.85, code

    def test_monte_carlo_codes_are_trivially_scalable(self, cluster):
        verdicts = {
            v.code: v for v in portfolio_scaling_report(cluster, cores=32, baseline=2)
        }
        for code in ("SMMP", "PorFASI"):
            assert verdicts[code].efficiency > 0.95, code

    def test_transpose_code_shows_the_bigdft_syndrome(self, cluster):
        """Quantum Espresso's alltoall transposition is the worst
        scaler of the portfolio, mirroring Figure 3c."""
        verdicts = portfolio_scaling_report(cluster, cores=32, baseline=2)
        worst = min(verdicts, key=lambda v: v.efficiency)
        assert worst.pattern is CommPattern.TRANSPOSE_ALLTOALL

    def test_invalid_sweep_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            portfolio_scaling_report(cluster, cores=2, baseline=2)
