"""Tests for the single-node application models (Table II)."""

import pytest

from repro.apps import BigDFT, CoreMark, Linpack, Specfem3D, StockFish
from repro.apps.base import RunResult
from repro.apps.bigdft import convolution_efficiency
from repro.apps.linpack import hpl_efficiency, hpl_problem_size
from repro.arch.machines import EXYNOS5_DUAL, SNOWBALL_A9500, TEGRA2_NODE, XEON_X5550
from repro.errors import ConfigurationError

ALL_APPS = [Linpack(), CoreMark(), StockFish(), Specfem3D(), BigDFT()]


class TestRunResult:
    def test_energy_is_tdp_times_time(self):
        result = RunResult(
            app="x", machine="m", cores=2, elapsed_seconds=10.0,
            metric_name="s", metric_value=10.0, tdp_watts=2.5,
        )
        assert result.energy_joules == 25.0

    def test_nonpositive_runtime_rejected(self):
        with pytest.raises(ConfigurationError):
            RunResult(app="x", machine="m", cores=1, elapsed_seconds=0.0,
                      metric_name="s", metric_value=0.0, tdp_watts=1.0)


class TestCommon:
    @pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
    def test_runs_on_both_table2_platforms(self, app):
        for machine in (SNOWBALL_A9500, XEON_X5550):
            result = app.run(machine)
            assert result.elapsed_seconds > 0
            assert result.metric_value > 0
            assert result.cores == machine.num_cores

    @pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
    def test_invalid_core_counts_rejected(self, app):
        with pytest.raises(ConfigurationError):
            app.run(XEON_X5550, cores=5)
        with pytest.raises(ConfigurationError):
            app.run(XEON_X5550, cores=0)

    @pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
    def test_xeon_is_always_faster(self, app):
        """Table II: the Xeon wins every performance column."""
        snow = app.run(SNOWBALL_A9500)
        xeon = app.run(XEON_X5550)
        if app.higher_is_better:
            assert xeon.metric_value > snow.metric_value
        else:
            assert xeon.metric_value < snow.metric_value


class TestLinpack:
    def test_snowball_620_mflops(self):
        result = Linpack().run(SNOWBALL_A9500)
        assert result.metric_value == pytest.approx(620, rel=0.02)

    def test_xeon_24_gflops(self):
        result = Linpack().run(XEON_X5550)
        assert result.metric_value == pytest.approx(24000, rel=0.02)

    def test_mflops_scale_with_cores(self):
        one = Linpack().run(XEON_X5550, cores=1)
        four = Linpack().run(XEON_X5550, cores=4)
        assert four.metric_value == pytest.approx(4 * one.metric_value)

    def test_problem_fills_memory(self):
        n = hpl_problem_size(SNOWBALL_A9500)
        matrix_bytes = n * n * 8
        assert 0.6 * SNOWBALL_A9500.memory.total_bytes < matrix_bytes
        assert matrix_bytes <= 0.82 * SNOWBALL_A9500.memory.total_bytes

    def test_efficiency_by_fpu_style(self):
        assert hpl_efficiency(XEON_X5550) == pytest.approx(0.564)
        assert hpl_efficiency(SNOWBALL_A9500) == pytest.approx(0.62)
        assert hpl_efficiency(TEGRA2_NODE) == pytest.approx(0.62)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Linpack(cluster_n=128, nb=256)


class TestCoreMark:
    def test_table2_scores(self):
        snow = CoreMark().run(SNOWBALL_A9500)
        xeon = CoreMark().run(XEON_X5550)
        assert snow.metric_value == pytest.approx(5877, rel=0.02)
        assert xeon.metric_value == pytest.approx(41950, rel=0.02)

    def test_coremark_per_mhz_is_era_typical(self):
        """~2.9 CoreMark/MHz on the A9, ~3.9 on Nehalem."""
        cm = CoreMark()
        a9 = cm.score_per_core(SNOWBALL_A9500) / 1000.0
        nehalem = cm.score_per_core(XEON_X5550) / 2660.0
        assert a9 == pytest.approx(2.9, abs=0.15)
        assert nehalem == pytest.approx(3.9, abs=0.2)

    def test_embarrassingly_parallel(self):
        cm = CoreMark()
        assert cm.run(XEON_X5550, cores=2).metric_value == pytest.approx(
            2 * cm.run(XEON_X5550, cores=1).metric_value
        )


class TestStockFish:
    def test_table2_nodes_per_second(self):
        snow = StockFish().run(SNOWBALL_A9500)
        xeon = StockFish().run(XEON_X5550)
        assert snow.metric_value == pytest.approx(224113, rel=0.03)
        assert xeon.metric_value == pytest.approx(4521733, rel=0.03)

    def test_64bit_emulation_hurts_arm(self):
        """The 20x StockFish gap (vs CoreMark's 7x) comes from 64-bit
        bitboards on a 32-bit ISA."""
        sf = StockFish()
        cycles_arm = sf.cycles_per_node(SNOWBALL_A9500)
        cycles_x86 = sf.cycles_per_node(XEON_X5550)
        assert cycles_arm > 3 * cycles_x86


class TestSpecfem3D:
    def test_table2_times(self):
        snow = Specfem3D().run(SNOWBALL_A9500)
        xeon = Specfem3D().run(XEON_X5550)
        assert snow.metric_value == pytest.approx(186.8, rel=0.03)
        assert xeon.metric_value == pytest.approx(23.5, rel=0.03)

    def test_bandwidth_bound_does_not_scale_past_saturation(self):
        """Adding Xeon cores barely helps once the bus is saturated —
        the paper's memory-bus-saturation remark."""
        app = Specfem3D()
        two = app.run(XEON_X5550, cores=2).elapsed_seconds
        four = app.run(XEON_X5550, cores=4).elapsed_seconds
        assert four > 0.85 * two


class TestBigDFT:
    def test_table2_times(self):
        snow = BigDFT().run(SNOWBALL_A9500)
        xeon = BigDFT().run(XEON_X5550)
        assert snow.metric_value == pytest.approx(420.4, rel=0.03)
        assert xeon.metric_value == pytest.approx(18.1, rel=0.03)

    def test_convolution_efficiency_motivates_autotuning(self):
        """The Xeon leaves 3/4 of its DP peak on the table in the
        un-tuned convolutions (the §V-B motivation); the scalar VFP is
        closer to its (much lower) ceiling."""
        assert convolution_efficiency(XEON_X5550) < 0.3
        assert convolution_efficiency(SNOWBALL_A9500) > 0.4

    def test_runs_on_exynos(self):
        result = BigDFT().run(EXYNOS5_DUAL)
        assert result.elapsed_seconds < BigDFT().run(SNOWBALL_A9500).elapsed_seconds
