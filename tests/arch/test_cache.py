"""Tests for repro.arch.cache."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.cache import CacheGeometry, IndexingPolicy
from repro.errors import ConfigurationError


def _l1_arm() -> CacheGeometry:
    """The Snowball's L1: 32 KiB, 4-way, 32 B lines, physical index."""
    return CacheGeometry(
        name="L1d", size_bytes=32 * 1024, associativity=4, line_bytes=32,
        latency_cycles=4, indexing=IndexingPolicy.PHYSICAL,
    )


class TestGeometry:
    def test_num_sets(self):
        assert _l1_arm().num_sets == 256

    def test_way_size(self):
        assert _l1_arm().way_size_bytes == 8 * 1024

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry("c", 32 * 1024, 4, 48, 4)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry("c", 33000, 4, 32, 4)

    def test_zero_associativity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry("c", 32 * 1024, 0, 32, 4)

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry("c", 32 * 1024, 4, 32, 0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry("c", 32 * 1024, 4, 32, 4, bandwidth_bytes_per_cycle=-1)


class TestAddressMath:
    def test_index_wraps_at_way_size(self):
        cache = _l1_arm()
        assert cache.index_of(0) == cache.index_of(cache.way_size_bytes)

    def test_same_line_same_index_and_tag(self):
        cache = _l1_arm()
        assert cache.index_of(100) == cache.index_of(101)
        assert cache.tag_of(100) == cache.tag_of(101)

    def test_line_address_alignment(self):
        cache = _l1_arm()
        assert cache.line_address(100) == 96
        assert cache.line_address(96) == 96

    @given(st.integers(0, 2**40))
    def test_property_index_in_range(self, address):
        cache = _l1_arm()
        assert 0 <= cache.index_of(address) < cache.num_sets

    @given(st.integers(0, 2**40))
    def test_property_tag_index_offset_reconstruct_address(self, address):
        cache = _l1_arm()
        line = cache.line_address(address)
        rebuilt = (
            cache.tag_of(address) * cache.num_sets + cache.index_of(address)
        ) * cache.line_bytes
        assert rebuilt == line


class TestFrameSensitivity:
    def test_arm_l1_sees_page_placement(self):
        """32 KiB / 4-way -> 8 KiB ways > 4 KiB pages: index bits come
        from the frame number — the §V-A-1 precondition."""
        assert _l1_arm().uses_frame_bits(4096)

    def test_xeon_l1_does_not(self):
        """32 KiB / 8-way -> 4 KiB ways == page size: VIPT-safe."""
        xeon_l1 = CacheGeometry(
            name="L1d", size_bytes=32 * 1024, associativity=8, line_bytes=64,
            latency_cycles=4, indexing=IndexingPolicy.VIRTUAL,
        )
        assert not xeon_l1.uses_frame_bits(4096)

    def test_physical_8way_same_geometry_is_also_safe(self):
        geometry = CacheGeometry(
            name="L1d", size_bytes=32 * 1024, associativity=8, line_bytes=64,
            latency_cycles=4, indexing=IndexingPolicy.PHYSICAL,
        )
        assert not geometry.uses_frame_bits(4096)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ConfigurationError):
            _l1_arm().uses_frame_bits(3000)
