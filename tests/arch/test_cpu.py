"""Tests for repro.arch.cpu."""

import dataclasses

import pytest

from repro.arch.cpu import MemoryModel
from repro.arch.isa import Precision
from repro.arch.machines import SNOWBALL_A9500, XEON_X5550
from repro.errors import ConfigurationError


class TestCoreModel:
    def test_peak_flops_double_xeon(self):
        """4 DP flops/cycle x 2.66 GHz per Nehalem core."""
        assert XEON_X5550.core.peak_flops(Precision.DOUBLE) == pytest.approx(10.64e9)

    def test_peak_flops_double_snowball(self):
        """Non-pipelined VFP: 0.5 DP flops/cycle at 1 GHz."""
        assert SNOWBALL_A9500.core.peak_flops(Precision.DOUBLE) == pytest.approx(0.5e9)

    def test_cycle_time(self):
        assert SNOWBALL_A9500.core.cycle_time_s == pytest.approx(1e-9)

    def test_cycles_to_seconds(self):
        assert XEON_X5550.core.cycles_to_seconds(2.66e9) == pytest.approx(1.0)

    def test_branch_cost_scales_with_entropy(self):
        core = SNOWBALL_A9500.core
        full = core.branch_cost_cycles(1000, taken_entropy=1.0)
        half = core.branch_cost_cycles(1000, taken_entropy=0.5)
        assert full == pytest.approx(2 * half)

    def test_branch_cost_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SNOWBALL_A9500.core.branch_cost_cycles(-1)

    def test_register_file_lookup_error_lists_class(self):
        from repro.arch.registers import RegisterClass
        with pytest.raises(ConfigurationError, match="float"):
            XEON_X5550.core.register_file(RegisterClass.FLOAT)


class TestMemoryModel:
    def test_sustained_bandwidth(self):
        memory = MemoryModel("t", 1024, 100.0, 10e9, 0.5)
        assert memory.sustained_bandwidth == 5e9

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel("t", 1024, 100.0, 10e9, 1.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel("t", 0, 100.0, 10e9, 0.5)


class TestMachineModel:
    def test_peak_flops_all_cores(self):
        assert XEON_X5550.peak_flops(Precision.DOUBLE) == pytest.approx(42.56e9)

    def test_peak_flops_core_subset(self):
        assert XEON_X5550.peak_flops(Precision.DOUBLE, 2) == pytest.approx(21.28e9)

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ConfigurationError):
            XEON_X5550.peak_flops(Precision.DOUBLE, 5)

    def test_cache_lookup_by_name(self):
        assert XEON_X5550.cache("L3").shared

    def test_unknown_cache_rejected(self):
        with pytest.raises(ConfigurationError, match="L3"):
            SNOWBALL_A9500.cache("L3")

    def test_l1_and_last_level(self):
        assert SNOWBALL_A9500.l1.name == "L1d"
        assert SNOWBALL_A9500.last_level.name == "L2"

    def test_energy_model_uses_tdp(self):
        """The paper's rough energy model: TDP x time."""
        assert SNOWBALL_A9500.energy_joules(10.0) == pytest.approx(25.0)
        assert XEON_X5550.energy_joules(10.0) == pytest.approx(950.0)

    def test_energy_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            XEON_X5550.energy_joules(-1.0)

    def test_cache_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                SNOWBALL_A9500, caches=tuple(reversed(SNOWBALL_A9500.caches))
            )

    def test_describe_mentions_key_facts(self):
        text = XEON_X5550.describe()
        assert "Nehalem" in text
        assert "95" in text

    def test_gflops_per_watt(self):
        snow = SNOWBALL_A9500.gflops_per_watt(Precision.SINGLE)
        xeon = XEON_X5550.gflops_per_watt(Precision.SINGLE)
        assert snow > xeon  # the low-power premise of the paper
