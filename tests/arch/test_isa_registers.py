"""Tests for repro.arch.isa and repro.arch.registers."""

import pytest

from repro.arch.isa import ISA, NEON_A9, NEON_A15, Precision, SSE42, VectorExtension
from repro.arch.registers import RegisterClass, RegisterFile
from repro.errors import ConfigurationError


class TestPrecision:
    def test_byte_widths(self):
        assert Precision.SINGLE.bytes == 4
        assert Precision.DOUBLE.bytes == 8


class TestVectorExtension:
    def test_neon_a9_is_single_precision_only(self):
        """The paper: 'a Neon floating point unit (single precision
        only)'."""
        assert not NEON_A9.supports_double
        assert SSE42.supports_double

    def test_neon_a9_half_width_datapath(self):
        """128-bit NEON ops take two cycles on the A9's 64-bit datapath
        — the Figure 6b mechanism."""
        assert NEON_A9.cycles_per_op(128) == 2
        assert NEON_A9.cycles_per_op(64) == 1

    def test_sse_full_width(self):
        assert SSE42.cycles_per_op(128) == 1

    def test_lanes(self):
        assert SSE42.lanes(Precision.DOUBLE) == 2
        assert SSE42.lanes(Precision.SINGLE) == 4
        assert NEON_A9.lanes(Precision.SINGLE) == 4

    def test_datapath_wider_than_register_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorExtension("bad", register_bits=64, datapath_bits=128,
                            supports_double=False)

    def test_invalid_operand_rejected(self):
        with pytest.raises(ConfigurationError):
            SSE42.cycles_per_op(0)


class TestISA:
    def _arm(self) -> ISA:
        return ISA(
            name="armv7", word_bits=32, vector=NEON_A9,
            scalar_flops_per_cycle={Precision.DOUBLE: 0.5, Precision.SINGLE: 1.0},
        )

    def test_double_falls_back_to_scalar_on_a9(self):
        """NEON contributes nothing in double precision."""
        arm = self._arm()
        assert arm.peak_flops_per_cycle(Precision.DOUBLE, fp_pipes=1) == 0.5

    def test_single_uses_neon(self):
        arm = self._arm()
        assert arm.peak_flops_per_cycle(Precision.SINGLE, fp_pipes=1) == 2.0

    def test_sse_double_with_two_pipes(self):
        x86 = ISA(
            name="x86_64", word_bits=64, vector=SSE42,
            scalar_flops_per_cycle={Precision.DOUBLE: 2.0},
        )
        assert x86.peak_flops_per_cycle(Precision.DOUBLE, fp_pipes=2) == 4.0

    def test_vector_flops_zero_without_vector_unit(self):
        scalar = ISA(name="vfp-only", word_bits=32,
                     scalar_flops_per_cycle={Precision.DOUBLE: 0.5})
        assert scalar.vector_flops_per_cycle(Precision.DOUBLE) == 0.0

    def test_a15_neon_full_width(self):
        assert NEON_A15.cycles_per_op(128) == 1

    def test_invalid_word_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ISA(name="bad", word_bits=16)

    def test_invalid_fp_pipes_rejected(self):
        with pytest.raises(ConfigurationError):
            self._arm().peak_flops_per_cycle(Precision.DOUBLE, fp_pipes=0)


class TestRegisterFile:
    def test_vfp_d16_capacity(self):
        """Tegra2's VFPv3-D16: 16 doubles — the Figure 7b constraint."""
        d16 = RegisterFile(RegisterClass.FLOAT, 16, 64)
        assert d16.capacity(64) == 16
        assert d16.doubles_capacity() == 16

    def test_xmm_capacity_in_doubles(self):
        """Nehalem's 16 XMM registers hold 32 doubles."""
        xmm = RegisterFile(RegisterClass.VECTOR, 16, 128)
        assert xmm.capacity(64) == 32
        assert xmm.capacity(32) == 64

    def test_wide_elements_need_register_pairs(self):
        d32 = RegisterFile(RegisterClass.FLOAT, 32, 64)
        assert d32.capacity(128) == 16

    def test_narrow_registers_hold_no_doubles(self):
        gpr32 = RegisterFile(RegisterClass.GENERAL, 14, 32)
        assert gpr32.doubles_capacity() == 0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(RegisterClass.FLOAT, 0, 64)
        with pytest.raises(ConfigurationError):
            RegisterFile(RegisterClass.FLOAT, 16, 0)

    def test_invalid_element_rejected(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(RegisterClass.FLOAT, 16, 64).capacity(0)
