"""Tests for repro.arch.topology and repro.arch.machines (Figure 2)."""

import pytest

from repro.arch.isa import Precision
from repro.arch.machines import (
    EXYNOS5_DUAL,
    SNOWBALL_A9500,
    TEGRA2_NODE,
    TEGRA3_NODE,
    XEON_X5550,
    catalog,
    machine_by_name,
)
from repro.arch.registers import RegisterClass
from repro.arch.topology import build_topology, render_topology
from repro.errors import ConfigurationError


class TestTopologyTree:
    def test_xeon_counts_match_fig2a(self):
        tree = build_topology(XEON_X5550)
        assert tree.count("Core") == 4
        assert tree.count("PU") == 4  # hyperthreading disabled
        assert tree.count("Cache") == 9  # 1x L3 + 4x (L2 + L1)

    def test_snowball_counts_match_fig2b(self):
        tree = build_topology(SNOWBALL_A9500)
        assert tree.count("Core") == 2
        assert tree.count("Cache") == 3  # shared L2 + 2x L1

    def test_shared_cache_appears_once(self):
        tree = build_topology(SNOWBALL_A9500)
        l2_nodes = [n for n in tree.walk() if n.label == "L2 (512KB)"]
        assert len(l2_nodes) == 1

    def test_leaves_are_pus(self):
        tree = build_topology(XEON_X5550)
        assert all(n.kind == "PU" for n in tree.leaves())


class TestRenderTopology:
    def test_xeon_render_matches_fig2a_labels(self):
        text = render_topology(build_topology(XEON_X5550))
        assert "Machine (12GB)" in text
        assert "L3 (8192KB)" in text
        assert "L2 (256KB)" in text
        assert "L1 (32KB)" in text
        assert "Core P#3" in text

    def test_snowball_render_matches_fig2b_labels(self):
        text = render_topology(build_topology(SNOWBALL_A9500))
        assert "Machine (796MB)" in text
        assert "L2 (512KB)" in text
        assert "PU P#1" in text

    def test_indentation_nests(self):
        text = render_topology(build_topology(SNOWBALL_A9500))
        lines = text.splitlines()
        assert lines[0].startswith("Machine")
        assert lines[1].startswith("  Socket")


class TestCatalog:
    def test_all_five_platforms_present(self):
        names = set(catalog())
        assert len(names) == 5

    def test_aliases(self):
        assert machine_by_name("snowball") is SNOWBALL_A9500
        assert machine_by_name("xeon") is XEON_X5550
        assert machine_by_name("tibidabo") is TEGRA2_NODE

    def test_full_name_lookup(self):
        assert machine_by_name("Intel Xeon X5550") is XEON_X5550

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigurationError):
            machine_by_name("cray-1")

    def test_tegra2_has_no_neon(self):
        """Tegra2's Cortex-A9 ships without NEON — only VFPv3-D16."""
        assert TEGRA2_NODE.core.isa.vector is None
        d16 = TEGRA2_NODE.core.register_file(RegisterClass.FLOAT)
        assert d16.count == 16

    def test_snowball_has_neon_with_32_doubles(self):
        vec = SNOWBALL_A9500.core.register_file(RegisterClass.VECTOR)
        assert vec.capacity(64) == 32

    def test_paper_power_figures(self):
        assert SNOWBALL_A9500.tdp_watts == 2.5
        assert XEON_X5550.tdp_watts == 95.0

    def test_exynos5_perspectives_envelope(self):
        """§VI-A: 'about a 100 GFLOPS for a power consumption of 5
        Watts'."""
        total = EXYNOS5_DUAL.peak_flops_with_accelerator(Precision.SINGLE)
        assert 80e9 <= total <= 110e9
        assert EXYNOS5_DUAL.tdp_watts == 5.0
        efficiency = EXYNOS5_DUAL.gflops_per_watt(
            Precision.SINGLE, include_accelerator=True
        )
        assert efficiency >= 15.0  # far beyond the 2012 Green500 top

    def test_tegra3_is_quad_core_with_gpu(self):
        assert TEGRA3_NODE.num_cores == 4
        assert TEGRA3_NODE.accelerator is not None
