"""Tests for repro.autotune.space and repro.autotune.search."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.autotune.genetic import GeneticSearch
from repro.autotune.search import ExhaustiveSearch, HillClimbSearch, RandomSearch
from repro.autotune.space import ParameterSpace
from repro.errors import SearchError


class TestParameterSpace:
    def test_size(self):
        space = ParameterSpace({"a": [1, 2, 3], "b": ["x", "y"]})
        assert space.size == 6

    def test_iteration_covers_everything(self):
        space = ParameterSpace({"a": [1, 2], "b": [3, 4]})
        points = list(space)
        assert len(points) == 4
        assert {"a": 2, "b": 3} in points

    def test_contains(self):
        space = ParameterSpace({"a": [1, 2]})
        assert space.contains({"a": 1})
        assert not space.contains({"a": 3})
        assert not space.contains({"a": 1, "b": 2})
        assert not space.contains({})

    def test_empty_space_rejected(self):
        with pytest.raises(SearchError):
            ParameterSpace({})
        with pytest.raises(SearchError):
            ParameterSpace({"a": []})

    def test_duplicate_levels_rejected(self):
        with pytest.raises(SearchError):
            ParameterSpace({"a": [1, 1]})

    def test_neighbors_step_one_ordinal(self):
        space = ParameterSpace({"unroll": [1, 2, 4, 8]})
        assert space.neighbors({"unroll": 2}) == [{"unroll": 1}, {"unroll": 4}]
        assert space.neighbors({"unroll": 1}) == [{"unroll": 2}]

    def test_neighbors_of_invalid_point_rejected(self):
        space = ParameterSpace({"unroll": [1, 2]})
        with pytest.raises(SearchError):
            space.neighbors({"unroll": 7})

    def test_random_point_is_valid(self):
        space = ParameterSpace({"a": [1, 2, 3], "b": "xy"})
        rng = random.Random(0)
        for _ in range(20):
            assert space.contains(space.random_point(rng))

    def test_mutate_stays_in_space(self):
        space = ParameterSpace({"a": [1, 2, 3], "b": [4, 5]})
        rng = random.Random(0)
        point = {"a": 1, "b": 4}
        for _ in range(20):
            point = space.mutate(point, rng)
            assert space.contains(point)

    def test_crossover_inherits_from_parents(self):
        space = ParameterSpace({"a": [1, 2], "b": [3, 4]})
        rng = random.Random(0)
        child = space.crossover({"a": 1, "b": 3}, {"a": 2, "b": 4}, rng)
        assert child["a"] in (1, 2)
        assert child["b"] in (3, 4)


def _quadratic(optimum):
    def objective(point):
        return sum((point[k] - v) ** 2 for k, v in optimum.items())
    return objective


class TestExhaustiveSearch:
    def test_finds_global_optimum(self):
        space = ParameterSpace({"x": range(-5, 6), "y": range(-5, 6)})
        result = ExhaustiveSearch().minimize(_quadratic({"x": 2, "y": -3}), space)
        assert result.best_point == {"x": 2, "y": -3}
        assert result.best_value == 0
        assert result.evaluations == space.size
        # Exhaustive search visits every point exactly once.
        assert result.total_calls == result.evaluations
        assert result.memo_hits == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(-4, 4), st.integers(-4, 4))
    def test_property_always_optimal(self, ox, oy):
        space = ParameterSpace({"x": range(-4, 5), "y": range(-4, 5)})
        result = ExhaustiveSearch().minimize(_quadratic({"x": ox, "y": oy}), space)
        assert result.best_point == {"x": ox, "y": oy}


class TestRandomSearch:
    def test_respects_budget(self):
        space = ParameterSpace({"x": range(100)})
        result = RandomSearch(budget=10, seed=0).minimize(_quadratic({"x": 50}), space)
        assert result.evaluations <= 10

    def test_seeded(self):
        space = ParameterSpace({"x": range(100)})
        a = RandomSearch(budget=15, seed=4).minimize(_quadratic({"x": 7}), space)
        b = RandomSearch(budget=15, seed=4).minimize(_quadratic({"x": 7}), space)
        assert a.best_point == b.best_point

    def test_invalid_budget_rejected(self):
        with pytest.raises(SearchError):
            RandomSearch(budget=0)

    def test_best_value_matches_history(self):
        space = ParameterSpace({"x": range(30)})
        result = RandomSearch(budget=10, seed=1).minimize(_quadratic({"x": 3}), space)
        assert result.best_value == min(v for _, v in result.history)


class TestHillClimbSearch:
    def test_descends_convex_landscape_to_optimum(self):
        """Figure 7-style convex curves are exactly where descent
        shines."""
        space = ParameterSpace({"unroll": range(1, 13)})
        result = HillClimbSearch(restarts=1, seed=0).minimize(
            lambda p: (p["unroll"] - 6) ** 2, space
        )
        assert result.best_point == {"unroll": 6}

    def test_cheaper_than_exhaustive_on_big_spaces(self):
        space = ParameterSpace({"x": range(200)})
        result = HillClimbSearch(restarts=2, seed=0).minimize(
            _quadratic({"x": 111}), space
        )
        assert result.evaluations < space.size

    def test_restarts_escape_local_minima(self):
        space = ParameterSpace({"x": range(30)})

        def two_wells(point):
            x = point["x"]
            return min((x - 3) ** 2 + 5, (x - 25) ** 2)  # global at 25

        single = HillClimbSearch(restarts=1, seed=2).minimize(two_wells, space)
        many = HillClimbSearch(restarts=8, seed=2).minimize(two_wells, space)
        assert many.best_value <= single.best_value
        assert many.best_point == {"x": 25}

    def test_invalid_restarts_rejected(self):
        with pytest.raises(SearchError):
            HillClimbSearch(restarts=0)

    def test_revisits_counted_as_total_calls_not_evaluations(self):
        """Regression: a climb that revisits points used to report only
        unique cache entries, under-counting the work its memo absorbed."""
        space = ParameterSpace({"x": range(12)})
        calls = {"n": 0}

        def objective(point):
            calls["n"] += 1
            return (point["x"] - 6) ** 2

        result = HillClimbSearch(restarts=4, seed=0).minimize(objective, space)
        # Unique evaluations == actual objective invocations == history.
        assert result.evaluations == calls["n"] == len(result.history)
        # Restarts from nearby points re-probe known neighbors: the
        # revisits show up in total_calls, never in evaluations.
        assert result.total_calls > result.evaluations
        assert result.memo_hits == result.total_calls - result.evaluations


class TestGeneticSearch:
    def test_finds_good_point_on_separable_landscape(self):
        space = ParameterSpace({"x": range(16), "y": range(16)})
        result = GeneticSearch(population=10, generations=12, seed=1).minimize(
            _quadratic({"x": 9, "y": 4}), space
        )
        assert result.best_value <= 2

    def test_seeded(self):
        space = ParameterSpace({"x": range(50)})
        a = GeneticSearch(seed=3).minimize(_quadratic({"x": 17}), space)
        b = GeneticSearch(seed=3).minimize(_quadratic({"x": 17}), space)
        assert a.best_point == b.best_point

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SearchError):
            GeneticSearch(population=1)
        with pytest.raises(SearchError):
            GeneticSearch(mutation_rate=2.0)
        with pytest.raises(SearchError):
            GeneticSearch(elite=20, population=10)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_property_all_evaluated_points_valid(self, ox, oy):
        space = ParameterSpace({"x": range(16), "y": range(16)})
        result = GeneticSearch(population=6, generations=4, seed=0).minimize(
            _quadratic({"x": ox, "y": oy}), space
        )
        for point, _ in result.history:
            assert space.contains(point)
