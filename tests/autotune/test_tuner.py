"""Tests for repro.autotune.tuner (the §VI-B two-level tuner)."""

import pytest

from repro.arch.machines import TEGRA2_NODE, XEON_X5550
from repro.autotune.search import HillClimbSearch, RandomSearch
from repro.autotune.space import ParameterSpace
from repro.autotune.tuner import AutoTuner, tune_magicfilter
from repro.kernels.magicfilter import MagicFilterBenchmark


class TestAutoTuner:
    def _tuner(self):
        return AutoTuner(space=ParameterSpace({"x": range(10)}))

    def test_static_tuning(self):
        report = self._tuner().tune_static("plat", lambda p: (p["x"] - 4) ** 2)
        assert report.level == "static"
        assert report.best_point == {"x": 4}
        assert report.instance is None

    def test_instance_tuning_depends_on_instance(self):
        """§VI-B: 'some good optimization parameters depend on the
        problem size'."""
        tuner = self._tuner()

        def factory(instance):
            return lambda p: (p["x"] - instance) ** 2

        small = tuner.tune_instance("plat", 2, factory)
        large = tuner.tune_instance("plat", 7, factory)
        assert small.best_point == {"x": 2}
        assert large.best_point == {"x": 7}

    def test_instance_cache_avoids_research(self):
        """The JIT-kernel-cache analogue: the second occurrence of a
        problem size must not search again."""
        tuner = self._tuner()
        calls = {"n": 0}

        def factory(instance):
            def objective(p):
                calls["n"] += 1
                return (p["x"] - instance) ** 2
            return objective

        first = tuner.tune_instance("plat", 3, factory)
        calls_after_first = calls["n"]
        second = tuner.tune_instance("plat", 3, factory)
        assert calls["n"] == calls_after_first
        assert second is first
        assert tuner.cached_instances == 1

    def test_cache_keyed_by_platform_too(self):
        tuner = self._tuner()

        def factory(instance):
            return lambda p: (p["x"] - instance) ** 2

        tuner.tune_instance("a", 3, factory)
        tuner.tune_instance("b", 3, factory)
        assert tuner.cached_instances == 2


class TestTuneMagicfilter:
    def test_tegra2_tunes_into_the_sweet_spot(self):
        """Static tuning must land inside the Figure 7b [4:7] range."""
        report = tune_magicfilter(TEGRA2_NODE)
        assert report.best_point["unroll"] in (4, 5, 6, 7)

    def test_nehalem_optimum_differs_from_tegra2(self):
        """'The porting and optimization efforts should not be lost
        when moving from one to the other' — the tuned configurations
        differ across platforms, which is the whole point."""
        nehalem = tune_magicfilter(XEON_X5550).best_point["unroll"]
        tegra = tune_magicfilter(TEGRA2_NODE).best_point["unroll"]
        assert nehalem != tegra

    def test_exhaustive_matches_benchmark_best(self):
        report = tune_magicfilter(TEGRA2_NODE)
        bench = MagicFilterBenchmark(TEGRA2_NODE)
        assert report.best_point["unroll"] == bench.best_unroll()

    def test_hill_climb_finds_the_same_optimum_cheaper(self):
        """The curves are roughly convex (the paper's observation), so
        local search should match exhaustive at lower cost."""
        exhaustive = tune_magicfilter(TEGRA2_NODE)
        climbed = tune_magicfilter(
            TEGRA2_NODE, strategy=HillClimbSearch(restarts=2, seed=0)
        )
        assert climbed.best_point == exhaustive.best_point
        assert climbed.result.evaluations <= exhaustive.result.evaluations

    def test_random_search_quality_is_bounded_by_budget(self):
        full = tune_magicfilter(XEON_X5550)
        sampled = tune_magicfilter(
            XEON_X5550, strategy=RandomSearch(budget=4, seed=5)
        )
        assert sampled.result.best_value >= full.result.best_value
