"""Chaos: damaged result-cache shards.

Every corruption mode must yield the same safe behavior: the bad entry
is quarantined under ``corrupt/``, the read reports a (typed) miss, the
engine recomputes the point, and the healed entry round-trips.  A
corrupt shard must never surface as a wrong value — the ``bad-checksum``
mode plants a *plausible* wrong payload that only the embedded sha256
can catch.
"""

import json

import pytest

from repro.engine import (
    CORRUPT_DIR,
    ExperimentEngine,
    ResultCache,
    SweepSpec,
    content_key,
)
from repro.engine.chaos import CORRUPTION_MODES, corrupt_cache_entry
from repro.engine.sweeps import run_chaos_sweep
from repro.errors import CacheCorruption
from repro.metrics.registry import MetricsRegistry, use_registry

KEY = {"experiment": "chaos-cache", "point": 3}
PAYLOAD = {"value": {"x": 3, "value": 9}}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCorruptionMatrix:
    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_corrupt_entry_is_quarantined_typed_miss_then_heals(
        self, cache, mode
    ):
        cache.put(KEY, PAYLOAD)
        path = corrupt_cache_entry(cache, KEY, mode)

        # Strict read: the corruption surfaces as its typed error.
        strict = ResultCache(cache.root)
        with pytest.raises(CacheCorruption):
            strict.get(KEY, strict=True)

        # The strict read quarantined the shard; the entry is now a
        # plain miss for everyone else.
        assert strict.corruptions == 1
        assert not path.exists()
        quarantined = list((cache.root / CORRUPT_DIR).iterdir())
        assert [q.name for q in quarantined] == [path.name]
        assert cache.get(KEY) is None
        assert cache.misses == 1

        # Recompute + put heals the entry; the value round-trips.
        cache.put(KEY, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD

    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_engine_recomputes_through_corruption(self, tmp_path, mode):
        """End-to-end: a poisoned cache never changes sweep results."""
        xs = (1, 2, 3)
        state = str(tmp_path / "state")
        engine = ExperimentEngine(cache=ResultCache(tmp_path / "cache"))
        baseline = run_chaos_sweep(engine, xs=xs, state_dir=state)

        point_params = {"x": 3, "state_dir": state, "faults": {}}
        spec = SweepSpec(
            "chaos/squares", lambda p: None, [point_params],
            key={"experiment": "chaos-squares"},
        )
        corrupt_cache_entry(
            engine.cache, engine.point_key(spec, point_params), mode
        )

        again = run_chaos_sweep(engine, xs=xs, state_dir=state)
        assert again == baseline
        manifest = engine.manifests[-1]
        assert manifest.hits == 2 and manifest.misses == 1
        # The recomputed point carries the corruption as a transient,
        # healed error in its manifest record.
        record = manifest.points[2]
        assert record.transient_errors[0]["type"] == "CacheCorruption"

    def test_corruption_metric_ticks(self, tmp_path):
        with use_registry(MetricsRegistry()) as registry:
            cache = ResultCache(tmp_path / "cache")
            cache.put(KEY, PAYLOAD)
            corrupt_cache_entry(cache, KEY, "garbage")
            assert cache.get(KEY) is None
        counters = registry.snapshot()["counters"]
        assert counters["cache.corrupt_entries"]["value"] == 1


class TestVerify:
    def test_verify_scans_quarantines_and_reports(self, cache):
        keys = [{"experiment": "verify", "point": i} for i in range(4)]
        for key in keys:
            cache.put(key, {"value": key["point"]})
        corrupt_cache_entry(cache, keys[0], "truncate")
        corrupt_cache_entry(cache, keys[2], "bad-checksum")

        report = cache.verify()
        assert report.scanned == 4
        assert report.ok == 2
        assert len(report.corrupt) == 2
        assert len(cache) == 2
        assert len(list((cache.root / CORRUPT_DIR).iterdir())) == 2
        text = report.format()
        assert "scanned 4 | ok 2 | corrupt 2" in text
        assert "quarantined" in text

        # A second scan finds a clean store.
        again = cache.verify()
        assert again.scanned == 2 and again.ok == 2 and not again.corrupt

    def test_verify_sweeps_stale_temps(self, cache):
        import os
        import time

        from repro.engine.cache import STALE_TEMP_MAX_AGE_S

        cache.put(KEY, PAYLOAD)
        shard = next(cache.root.iterdir())
        temp = shard / ".tmp-deadbeef.tmp"
        temp.write_text("partial")
        # Age the temp past the abandonment threshold: only then is it
        # a crashed writer's leftover rather than a live put().
        old = time.time() - STALE_TEMP_MAX_AGE_S - 1.0
        os.utime(temp, (old, old))
        report = cache.verify()
        assert report.stale_temps == 1
        assert not list(shard.glob(".tmp-*"))

    def test_verify_spares_fresh_temps(self, cache):
        # A fresh temp is a concurrent writer between its write and
        # its rename; sweeping it would fail that put() for no reason.
        cache.put(KEY, PAYLOAD)
        shard = next(cache.root.iterdir())
        temp = shard / ".tmp-live-writer.tmp"
        temp.write_text("partial")
        report = cache.verify()
        assert report.stale_temps == 0
        assert temp.exists()
        assert cache.clear() == 1  # clear also spares it
        assert temp.exists()

    def test_quarantined_entries_do_not_count_as_shards(self, cache):
        cache.put(KEY, PAYLOAD)
        corrupt_cache_entry(cache, KEY, "empty")
        cache.get(KEY)
        assert len(cache) == 0
        assert cache.verify().scanned == 0

    def test_clear_sweeps_quarantine(self, cache):
        cache.put(KEY, PAYLOAD)
        corrupt_cache_entry(cache, KEY, "garbage")
        cache.get(KEY)
        cache.put(KEY, PAYLOAD)
        assert cache.clear() == 1
        assert not list((cache.root / CORRUPT_DIR).glob("*"))

    def test_sibling_directories_are_not_cache_entries(self, cache):
        # The CLI keeps run manifests under <cache-root>/manifests; verify
        # must not quarantine them and clear must not delete them.
        cache.put(KEY, PAYLOAD)
        manifests = cache.root / "manifests"
        manifests.mkdir()
        manifest = manifests / "fig7-sweep-deadbeef.json"
        manifest.write_text(json.dumps({"sweep": "s", "points": []}))

        assert len(cache) == 1
        report = cache.verify()
        assert (report.scanned, report.ok, report.corrupt) == (1, 1, [])
        assert cache.clear() == 1
        assert manifest.exists()


class TestCliCacheCommand:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_cache_verify_clean_store_exits_zero(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        cache.put(KEY, PAYLOAD)
        code, out, _ = self.run_cli(
            ["cache", "verify", "--cache-dir", str(cache.root)], capsys
        )
        assert code == 0
        assert "scanned 1 | ok 1 | corrupt 0" in out

    def test_cache_verify_corrupt_store_exits_one(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        cache.put(KEY, PAYLOAD)
        path = corrupt_cache_entry(cache, KEY, "wrong-schema")
        code, out, _ = self.run_cli(
            ["cache", "verify", "--cache-dir", str(cache.root)], capsys
        )
        assert code == 1
        assert "corrupt 1" in out
        assert path.name in out

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        cache.put(KEY, PAYLOAD)
        code, out, _ = self.run_cli(
            ["cache", "stats", "--cache-dir", str(cache.root)], capsys
        )
        assert code == 0 and "1 entries" in out
        code, out, _ = self.run_cli(
            ["cache", "clear", "--cache-dir", str(cache.root)], capsys
        )
        assert code == 0 and "removed 1" in out
        assert len(cache) == 0

    def test_cache_rejects_unknown_action(self, tmp_path, capsys):
        code, _, err = self.run_cli(
            ["cache", "defrag", "--cache-dir", str(tmp_path)], capsys
        )
        assert code == 1
        assert "verify" in err


def test_entry_embeds_matching_checksum(cache):
    cache.put(KEY, PAYLOAD)
    path = cache._path(content_key(KEY))
    entry = json.loads(path.read_text(encoding="utf-8"))
    assert set(entry) == {"key", "payload", "sha256"}
    assert entry["payload"] == PAYLOAD
    assert entry["sha256"] == content_key(
        {"key": entry["key"], "payload": entry["payload"]}
    )
