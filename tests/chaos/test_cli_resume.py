"""Chaos: interrupted-and-resumed CLI runs.

The acceptance property for ``--resume``: an interrupted ``fig7`` run
resumed with ``--jobs 4`` produces stdout and deterministic manifest
point records byte-identical to a single uninterrupted ``--jobs 4``
run.  The journal is the only state that carries across — the caches
are disabled, so every surviving byte came through the resume path.
"""

import json
from pathlib import Path

from repro.cli import main
from repro.engine import RunJournal, load_manifests
from repro.engine.chaos import truncate_journal


def deterministic_points(manifest_dir):
    """The resume-invariant view of every saved manifest."""
    manifests, skipped = [], []
    for manifest in load_manifests(manifest_dir):
        manifests.append((
            manifest["sweep"],
            [
                {k: p[k] for k in ("index", "params", "key", "cache_hit")}
                for p in manifest["points"]
            ],
        ))
    return sorted(manifests)


class TestResumeByteIdentity:
    def test_fig7_resumed_run_is_byte_identical(self, tmp_path, capsys):
        ref_dir = tmp_path / "reference"
        run_dir = tmp_path / "interrupted"

        # The uninterrupted reference run.
        assert main([
            "fig7", "--no-cache", "--jobs", "4", "--run-dir", str(ref_dir),
        ]) == 0
        reference = capsys.readouterr()

        # A run that "died" partway: complete it, then tear its journal
        # back to 7 of 24 points with a torn half-record at the tail.
        assert main([
            "fig7", "--no-cache", "--run-dir", str(run_dir),
        ]) == 0
        capsys.readouterr()
        kept = truncate_journal(run_dir / "journal.jsonl", keep=7, tear=True)
        assert kept == 7

        # Resume in parallel; only the 17-point tail executes.
        assert main([
            "fig7", "--no-cache", "--jobs", "4", "--resume", str(run_dir),
        ]) == 0
        resumed = capsys.readouterr()

        assert resumed.out == reference.out
        assert "replayed 7 | appended 17" in resumed.err
        assert deterministic_points(run_dir / "manifests") == \
               deterministic_points(ref_dir / "manifests")

        # The resumed journal converges on the full record set.
        journal = RunJournal(run_dir / "journal.jsonl", resume=True)
        assert len(journal) == 24

    def test_resume_of_a_complete_run_computes_nothing(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["fig7", "--no-cache", "--run-dir", str(run_dir)]) == 0
        first = capsys.readouterr()
        assert main(["fig7", "--no-cache", "--resume", str(run_dir)]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "replayed 24 | appended 0" in second.err


class TestResumeFlagHandling:
    def test_run_dir_and_resume_are_mutually_exclusive(self, tmp_path, capsys):
        code = main([
            "fig7", "--run-dir", str(tmp_path / "a"),
            "--resume", str(tmp_path / "b"),
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resume_with_corrupt_journal_fails_typed(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["fig7", "--no-cache", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        path = run_dir / "journal.jsonl"
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "garbage, not a record"
        path.write_text("".join(line + "\n" for line in lines))
        code = main(["fig7", "--no-cache", "--resume", str(run_dir)])
        err = capsys.readouterr().err
        assert code == 1
        assert "error opening run journal" in err
        assert "line 2" in err

    def test_run_dir_writes_manifests_without_cache(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["fig7", "--no-cache", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        saved = sorted(Path(run_dir, "manifests").glob("*.json"))
        assert len(saved) == 2  # one per machine
        for path in saved:
            manifest = json.loads(path.read_text(encoding="utf-8"))
            assert manifest["misses"] == 12


class TestRetryFlags:
    def test_retry_flags_build_a_fault_tolerant_policy(self):
        from repro.cli import build_parser, _build_policy

        args = build_parser().parse_args([
            "fig7", "--retries", "2", "--point-timeout", "1.5",
            "--retry-delay", "0.2",
        ])
        policy = _build_policy(args)
        assert policy.fault_tolerant
        assert policy.max_attempts == 3
        assert policy.point_timeout_s == 1.5
        assert policy.retry.timeout_s == 0.2

    def test_default_flags_keep_the_legacy_policy(self):
        from repro.cli import build_parser, _build_policy

        args = build_parser().parse_args(["fig7"])
        assert _build_policy(args) is None
