"""Chaos: the write-ahead journal under disk failure and torn writes.

Resume safety has two halves: damage an interrupted run *expects*
(a torn final record) is dropped silently and the point recomputed,
while damage that breaks the journal's prefix property (garbage in the
middle, a full disk mid-run) surfaces as a typed
:class:`~repro.errors.JournalError` — resuming from a lie is worse
than failing loudly.
"""

import json

import pytest

from repro.engine import (
    ExecutionPolicy,
    ExperimentEngine,
    ResultCache,
    RunJournal,
)
from repro.engine.chaos import FlakyJournal, truncate_journal
from repro.engine.sweeps import run_chaos_sweep
from repro.errors import JournalError

XS = tuple(range(8))
EXPECTED = {x: x * x for x in XS}


def run_sweep(tmp_path, journal, *, xs=XS, jobs=2, cache_name="cache"):
    engine = ExperimentEngine(
        cache=ResultCache(tmp_path / cache_name),
        jobs=jobs,
        journal=journal,
        policy=ExecutionPolicy(point_timeout_s=30.0),
    )
    values = run_chaos_sweep(
        engine, xs=xs, state_dir=str(tmp_path / "state")
    )
    return engine, values


class TestDurability:
    def test_journal_records_every_completed_point(self, tmp_path):
        path = tmp_path / "run" / "journal.jsonl"
        with RunJournal(path) as journal:
            _, values = run_sweep(tmp_path, journal)
        assert values == EXPECTED
        assert journal.appended == len(XS)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(XS)
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"schema", "key", "value", "sha256"}

    def test_enospc_mid_run_raises_typed_error(self, tmp_path):
        journal = FlakyJournal(tmp_path / "journal.jsonl", capacity=3)
        with pytest.raises(JournalError) as excinfo:
            run_sweep(tmp_path, journal, jobs=1)
        assert "no space left" in str(excinfo.value)
        # The three durable records survived the failure.
        assert journal.appended == 3

    def test_enospc_then_resume_completes_the_run(self, tmp_path):
        flaky = FlakyJournal(tmp_path / "journal.jsonl", capacity=3)
        with pytest.raises(JournalError):
            run_sweep(tmp_path, flaky, jobs=1)
        flaky.close()

        resumed = RunJournal(tmp_path / "journal.jsonl", resume=True)
        engine, values = run_sweep(
            tmp_path, resumed, cache_name="cache-resume"
        )
        resumed.close()
        assert values == EXPECTED
        assert resumed.replayed == 3
        assert resumed.appended == len(XS) - 3
        replays = [p for p in engine.manifests[0].points if p.resumed]
        assert len(replays) == 3


class TestRecovery:
    def seed_journal(self, tmp_path, *, keep, tear):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            run_sweep(tmp_path, journal, jobs=1)
        kept = truncate_journal(path, keep=keep, tear=tear)
        return path, kept

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        path, kept = self.seed_journal(tmp_path, keep=5, tear=True)
        journal = RunJournal(path, resume=True)
        assert len(journal) == kept

    def test_clean_truncation_resumes_the_prefix(self, tmp_path):
        path, kept = self.seed_journal(tmp_path, keep=4, tear=False)
        journal = RunJournal(path, resume=True)
        assert len(journal) == 4

    def test_mid_file_garbage_is_a_typed_error(self, tmp_path):
        path, _ = self.seed_journal(tmp_path, keep=6, tear=False)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[2] = '{"schema": 1, "key": "forged", "value": 1, "sha256": "no"}'
        path.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(JournalError) as excinfo:
            RunJournal(path, resume=True)
        assert "line 3" in str(excinfo.value)

    def test_foreign_schema_is_a_typed_error(self, tmp_path):
        path, _ = self.seed_journal(tmp_path, keep=6, tear=False)
        lines = path.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[1])
        record["schema"] = 999
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(JournalError):
            RunJournal(path, resume=True)

    def test_fresh_run_truncates_a_stale_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            run_sweep(tmp_path, journal, jobs=1, xs=(1, 2, 3))
        with RunJournal(path) as journal:  # resume=False: fresh run
            run_sweep(tmp_path, journal, jobs=1, xs=(9,),
                      cache_name="cache-b")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1


class TestResumeEquivalence:
    def test_interrupted_then_resumed_equals_uninterrupted(self, tmp_path):
        """The tentpole property: resume is byte-invisible.

        An interrupted run (disk full after 4 points) resumed with
        ``--jobs``-style parallelism must produce values and
        *deterministic* manifest point records identical to one
        uninterrupted run.
        """
        flaky = FlakyJournal(tmp_path / "a" / "journal.jsonl", capacity=4)
        with pytest.raises(JournalError):
            run_sweep(tmp_path, flaky, jobs=1, cache_name="cache-a")
        flaky.close()

        resumed_journal = RunJournal(
            tmp_path / "a" / "journal.jsonl", resume=True
        )
        resumed_engine, resumed_values = run_sweep(
            tmp_path, resumed_journal, jobs=4, cache_name="cache-a2"
        )
        resumed_journal.close()

        with RunJournal(tmp_path / "b" / "journal.jsonl") as clean_journal:
            clean_engine, clean_values = run_sweep(
                tmp_path, clean_journal, jobs=4, cache_name="cache-b"
            )

        assert resumed_values == clean_values == EXPECTED
        deterministic = lambda engine: json.dumps(
            engine.manifests[0].to_dict(deterministic=True), sort_keys=True
        )
        assert deterministic(resumed_engine) == deterministic(clean_engine)
        # And the resumed journal converges to the full record set.
        assert len(resumed_journal) == len(XS)
