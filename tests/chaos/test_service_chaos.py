"""Chaos: the job service under storms, crashes, and kill -9.

The acceptance proofs for the service tentpole live here:

* a submission storm against a full queue is shed with typed 429s and
  the job table stays bounded;
* k concurrent identical cold submissions run the engine exactly once
  (the chaos worker's attempt odometer is the witness);
* an open circuit breaker sheds only its own scenario class;
* workers killed or hung mid-request are retried and heal;
* ``kill -9`` mid-run, then restart: completed jobs are re-served
  byte-identically with zero recomputation, unfinished ones requeue.
"""

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.errors import CircuitOpen, ServiceOverloaded
from repro.metrics.registry import MetricsRegistry, use_registry
from repro.service import JobService, ServiceClient, ServiceConfig
from repro.service.http import ServiceServer
from repro.service.jobs import JobState


def run(coro):
    return asyncio.run(coro)


def attempt_bytes(state_dir: Path) -> int:
    if not state_dir.exists():
        return 0
    return sum(p.stat().st_size for p in state_dir.iterdir())


@pytest.fixture
def live_server(tmp_path):
    """A service on a real socket (own thread); yields a client factory
    so storm tests can open one connection per simulated client."""
    started = threading.Event()
    state = {}

    def host():
        async def main():
            with use_registry(MetricsRegistry()):
                service = JobService(ServiceConfig(
                    cache_root=tmp_path / "cache",
                    pool_size=1,
                    queue_limit=2,
                    breaker_threshold=3,
                    breaker_cooldown_s=30.0,
                ))
                server = ServiceServer(service, port=0, read_timeout_s=2.0)
                await server.start()
                state["port"] = server.port
                state["loop"] = asyncio.get_running_loop()
                state["stop"] = asyncio.Event()
                started.set()
                await state["stop"].wait()
                await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert started.wait(timeout=10)
    yield lambda: ServiceClient(
        f"http://127.0.0.1:{state['port']}", timeout_s=60
    )
    state["loop"].call_soon_threadsafe(state["stop"].set)
    thread.join(timeout=10)


class TestAdmissionStorm:
    def test_storm_against_a_full_queue_is_shed_not_buffered(
        self, live_server, tmp_path
    ):
        client = live_server()
        blocker = client.submit(
            "sleepy", {"duration_s": 60.0, "tag": "blocker"}, wait=False
        )["job"]
        deadline = time.monotonic() + 10
        while client.status(blocker["job_id"])["job"]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)

        admitted, rejected = [], []
        for i in range(10):
            try:
                reply = client.submit(
                    "sleepy", {"duration_s": 60.0, "tag": f"s{i}"},
                    wait=False,
                )
                admitted.append(reply["job"]["job_id"])
            except ServiceOverloaded as error:
                rejected.append(error)

        # Exactly the queue's capacity was admitted; the rest got the
        # typed 429 with an honest hint, and the table stayed bounded.
        assert len(admitted) == 2
        assert len(rejected) == 8
        for error in rejected:
            assert error.status == 429
            assert error.retry_after_s > 0
            assert error.capacity == 2
        stats = client.stats()
        assert stats["jobs"] == 3  # blocker + the two admitted
        assert stats["queue_depth"] == 2


class TestExactlyOnce:
    def test_concurrent_identical_cold_submissions_compute_once(
        self, live_server, tmp_path
    ):
        state_dir = tmp_path / "odometer"
        params = {
            "x": 4,
            "state_dir": str(state_dir),
            # times=0: no fault ever fires, but every engine execution
            # ticks the odometer — the exactly-once witness.
            "faults": {"4": {"kind": "raise", "times": 0}},
        }

        def one_client(i):
            return live_server().submit("chaos-squares", dict(params))

        with ThreadPoolExecutor(max_workers=6) as pool:
            replies = list(pool.map(one_client, range(6)))

        for reply in replies:
            assert reply["job"]["state"] == "done"
        bodies = {
            live_server().result_bytes(r["job"]["job_id"])
            for r in replies
        }
        assert len(bodies) == 1  # every client got identical bytes
        assert attempt_bytes(state_dir) == 1  # one engine run, total
        computed_jobs = {
            r["job"]["job_id"]
            for r in replies if r["job"]["source"] == "computed"
        }
        assert len(computed_jobs) == 1  # one computation fanned out
        dedup_hits = sum(r["deduped"] for r in replies)
        warm_hits = sum(
            r["job"]["source"] in ("cache", "journal") for r in replies
        )
        assert dedup_hits + warm_hits == 5  # nobody recomputed


class TestBreakerIsolation:
    def test_open_breaker_sheds_only_its_scenario_class(
        self, live_server, tmp_path
    ):
        client = live_server()
        for x in (51, 52, 53):
            reply = client.submit("chaos-squares", {
                "x": x,
                "state_dir": str(tmp_path / "state"),
                "faults": {str(x): {"kind": "raise", "times": 99}},
            })
            assert reply["job"]["state"] == "failed"

        with pytest.raises(CircuitOpen) as info:
            client.submit("chaos-squares", {
                "x": 99, "state_dir": str(tmp_path / "state"),
            })
        assert info.value.scenario_class == "chaos"
        assert info.value.status == 503
        assert info.value.retry_after_s > 0

        # The demo class flows on, full service, same instant.
        healthy = client.submit("squares", {"x": 6})
        assert healthy["job"]["state"] == "done"
        assert client.stats()["breakers"] == {
            "chaos": "open", "demo": "closed",
        }


class TestWorkerFaults:
    def make_service(self, tmp_path, **overrides):
        defaults = dict(
            cache_root=tmp_path / "cache",
            pool_size=1,
            retries=2,
            retry_delay_s=0.01,
        )
        defaults.update(overrides)
        return JobService(ServiceConfig(**defaults))

    def submit_and_wait(self, service_coro):
        return run(service_coro)

    def test_killed_workers_are_retried_until_the_point_heals(
        self, tmp_path
    ):
        async def scenario():
            service = self.make_service(tmp_path)
            await service.start()
            try:
                job, _ = await service.submit("chaos-squares", {
                    "x": 6,
                    "state_dir": str(tmp_path / "state"),
                    # Die like an OOM-kill on the first two attempts.
                    "faults": {"6": {"kind": "exit", "times": 2,
                                     "exitcode": 137}},
                })
                await asyncio.wait_for(job.wait_terminal(), timeout=60)
                return job
            finally:
                await service.shutdown(drain_s=1.0)

        job = run(scenario())
        assert job.state is JobState.DONE
        assert job.value == {"x": 6, "value": 36}
        assert job.attempts == 3

    def test_hung_workers_are_killed_at_the_point_timeout(self, tmp_path):
        async def scenario():
            service = self.make_service(
                tmp_path, point_timeout_s=0.3, retries=1
            )
            await service.start()
            try:
                job, _ = await service.submit("chaos-squares", {
                    "x": 7,
                    "state_dir": str(tmp_path / "state"),
                    "faults": {"7": {"kind": "hang", "times": 1,
                                     "hang_s": 300.0}},
                })
                await asyncio.wait_for(job.wait_terminal(), timeout=60)
                return job
            finally:
                await service.shutdown(drain_s=1.0)

        job = run(scenario())
        assert job.state is JobState.DONE
        assert job.value == {"x": 7, "value": 49}
        assert job.attempts == 2


class ServeProcess:
    """One ``repro serve`` OS process, started on an ephemeral port."""

    def __init__(self, run_dir: Path, cache_dir: Path):
        env = dict(os.environ)
        env["PYTHONUNBUFFERED"] = "1"
        src = str(Path(__file__).resolve().parents[2] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src if not existing else src + os.pathsep + existing
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--run-dir", str(run_dir),
                "--cache-dir", str(cache_dir),
                "--pool", "1",
                "--drain", "0.5",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.port = self._await_port()

    def _await_port(self) -> int:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if "listening on http://" in line:
                return int(line.rsplit(":", 1)[-1])
            if not line and self.proc.poll() is not None:
                break
        raise AssertionError("serve process never announced its port")

    def client(self) -> ServiceClient:
        return ServiceClient(f"http://127.0.0.1:{self.port}", timeout_s=60)

    def kill9(self):
        self.proc.kill()
        self.proc.wait(timeout=10)

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


class TestKillDashNine:
    def test_restart_reserves_results_byte_identically(self, tmp_path):
        run_dir = tmp_path / "run"
        first = ServeProcess(run_dir, tmp_path / "cache-1")
        try:
            client = first.client()
            done = client.submit("squares", {"x": 13})["job"]
            assert done["state"] == "done"
            first_bytes = client.result_bytes(done["job_id"])
            unfinished = client.submit(
                "sleepy", {"duration_s": 120.0}, wait=False
            )["job"]
            deadline = time.monotonic() + 10
            while (
                client.status(unfinished["job_id"])["job"]["state"]
                == "queued"
            ):
                assert time.monotonic() < deadline
                time.sleep(0.01)
        finally:
            first.kill9()  # no drain, no goodbye

        # Fresh cache root: the journal is the only possible source of
        # warmth on the second instance.
        second = ServeProcess(run_dir, tmp_path / "cache-2")
        try:
            client = second.client()
            recovered = client.status(done["job_id"])["job"]
            assert recovered["state"] == "done"
            assert recovered["recovered"]
            assert recovered["source"] == "journal"
            assert client.result_bytes(done["job_id"]) == first_bytes

            resubmit = client.submit("squares", {"x": 13})["job"]
            assert resubmit["state"] == "done"
            assert resubmit["source"] == "journal"  # zero recompute
            assert (
                client.result_bytes(resubmit["job_id"]) == first_bytes
            )

            requeued = client.status(unfinished["job_id"])["job"]
            assert requeued["recovered"]
            assert requeued["state"] in ("queued", "running")
        finally:
            second.terminate()

    def test_sigterm_is_a_graceful_drain(self, tmp_path):
        server = ServeProcess(tmp_path / "run", tmp_path / "cache")
        client = server.client()
        assert client.submit("squares", {"x": 2})["job"]["state"] == "done"
        server.terminate()
        assert server.proc.returncode == 0
        tail = server.proc.stderr.read()
        assert "drained" in tail
