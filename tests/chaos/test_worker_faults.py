"""Chaos: killed, hung, raising and result-mangling workers.

The property under test is the engine's core safety contract: a sweep
*terminates*, and either returns exactly what a fault-free run would
have returned or raises a typed error — never a silent wrong answer,
never a wedged pool.
"""

import pytest

from repro.engine import ExecutionPolicy, ExperimentEngine, ResultCache, SweepSpec
from repro.engine.chaos import ChaosFault, chaos_point
from repro.engine.sweeps import run_chaos_sweep
from repro.errors import PointTimeout, RetryExhausted, WorkerCrash
from repro.faults.detect import RetryPolicy
from repro.metrics.registry import MetricsRegistry, use_registry

XS = tuple(range(6))
EXPECTED = {x: x * x for x in XS}


def engine_with(tmp_path, *, jobs=4, retries=3, timeout=None, cache=True):
    policy = ExecutionPolicy(
        # RetryPolicy needs >= 1 retry; retries=0 means "fault-tolerant
        # but single-attempt", expressed as a timeout-only policy.
        point_timeout_s=timeout if timeout is not None else (
            None if retries else 30.0
        ),
        retry=(
            RetryPolicy(timeout_s=0.01, max_retries=retries)
            if retries else None
        ),
        jitter=0.0,
        seed=11,
    )
    return ExperimentEngine(
        cache=ResultCache(tmp_path / "cache") if cache else None,
        jobs=jobs,
        policy=policy,
    )


class TestCrashIsolation:
    def test_killed_worker_fails_only_its_point(self, tmp_path):
        engine = engine_with(tmp_path)
        got = run_chaos_sweep(
            engine, xs=XS, state_dir=str(tmp_path / "state"),
            faults={"3": {"kind": "exit", "times": 2}},
        )
        assert got == EXPECTED
        record = engine.manifests[0].points[3]
        assert record.attempts == 3
        assert [e["type"] for e in record.transient_errors] == [
            "WorkerCrash", "WorkerCrash",
        ]
        # Siblings were untouched by the deaths.
        assert all(
            p.attempts == 1 for p in engine.manifests[0].points if p.index != 3
        )

    def test_persistent_crash_exhausts_budget(self, tmp_path):
        engine = engine_with(tmp_path, retries=2)
        with pytest.raises(RetryExhausted) as excinfo:
            run_chaos_sweep(
                engine, xs=XS, state_dir=str(tmp_path / "state"),
                faults={"2": {"kind": "exit", "times": 99, "exitcode": 9}},
            )
        (failure,) = excinfo.value.failures
        assert failure["index"] == 2
        assert failure["type"] == "WorkerCrash"
        assert failure["attempts"] == 3  # 1 initial + 2 retries
        # The sweep still recorded every healthy point's result.
        manifest = engine.manifests[0]
        assert manifest.failed == 1
        assert manifest.points[2].error["type"] == "WorkerCrash"

    def test_worker_exception_retries_then_propagates_typed(self, tmp_path):
        engine = engine_with(tmp_path, retries=1)
        with pytest.raises(RetryExhausted) as excinfo:
            run_chaos_sweep(
                engine, xs=XS, state_dir=str(tmp_path / "state"),
                faults={"0": {"kind": "raise", "times": 99}},
            )
        (failure,) = excinfo.value.failures
        assert failure["type"] == "ChaosFault"
        assert "injected failure at x=0" in failure["message"]

    def test_unpicklable_result_is_a_typed_crash(self, tmp_path):
        engine = engine_with(tmp_path, retries=0)
        with pytest.raises(RetryExhausted) as excinfo:
            run_chaos_sweep(
                engine, xs=(1, 2), state_dir=str(tmp_path / "state"),
                faults={"1": {"kind": "unpicklable", "times": 99}},
            )
        (failure,) = excinfo.value.failures
        assert failure["type"] == "WorkerCrash"
        assert "unpicklable result" in failure["message"]

    def test_crash_metrics_tick(self, tmp_path):
        with use_registry(MetricsRegistry()) as registry:
            engine = engine_with(tmp_path)
            run_chaos_sweep(
                engine, xs=XS, state_dir=str(tmp_path / "state"),
                faults={"4": {"kind": "exit", "times": 1}},
            )
        counters = registry.snapshot()["counters"]
        assert counters["engine.worker_crashes"]["value"] == 1
        assert counters["engine.retries"]["value"] == 1


class TestHangs:
    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        with use_registry(MetricsRegistry()) as registry:
            engine = engine_with(tmp_path, timeout=0.5)
            got = run_chaos_sweep(
                engine, xs=XS, state_dir=str(tmp_path / "state"),
                faults={"5": {"kind": "hang", "times": 1, "hang_s": 60.0}},
            )
        assert got == EXPECTED
        record = engine.manifests[0].points[5]
        assert record.attempts == 2
        assert record.transient_errors[0]["type"] == "PointTimeout"
        timeouts = registry.snapshot()["counters"]["engine.timeouts"]
        assert timeouts["value"] == 1

    def test_persistent_hang_exhausts_budget(self, tmp_path):
        engine = engine_with(tmp_path, retries=1, timeout=0.3)
        with pytest.raises(RetryExhausted) as excinfo:
            run_chaos_sweep(
                engine, xs=(1, 2, 3), state_dir=str(tmp_path / "state"),
                faults={"2": {"kind": "hang", "times": 99, "hang_s": 60.0}},
            )
        (failure,) = excinfo.value.failures
        assert failure["type"] == "PointTimeout"
        assert failure["attempts"] == 2


class TestFaultFreeEquivalence:
    def test_results_identical_to_fault_free_run(self, tmp_path):
        """Deterministic-manifest equality: chaos run == clean run."""
        faulty = engine_with(tmp_path, timeout=2.0)
        got_faulty = run_chaos_sweep(
            faulty, xs=XS, state_dir=str(tmp_path / "state-a"),
            faults={
                "1": {"kind": "exit", "times": 1},
                "4": {"kind": "raise", "times": 2},
            },
        )
        clean = ExperimentEngine(cache=ResultCache(tmp_path / "clean"), jobs=4)
        got_clean = run_chaos_sweep(
            clean, xs=XS, state_dir=str(tmp_path / "state-b"),
        )
        assert got_faulty == got_clean
        # Values (and hence any downstream artefact bytes) match; the
        # deterministic manifest forms differ only through the params'
        # state_dir/fault plan, which the test varies deliberately.
        assert [p.cache_hit for p in faulty.manifests[0].points] == \
               [p.cache_hit for p in clean.manifests[0].points]

    def test_default_policy_still_propagates_original_exception(self, tmp_path):
        """No policy configured -> the historical contract holds."""
        engine = ExperimentEngine(jobs=4)
        with pytest.raises(ChaosFault):
            engine.run(SweepSpec(
                "legacy", chaos_point,
                [
                    {"x": x, "state_dir": str(tmp_path / "state"),
                     "faults": {"1": {"kind": "raise", "times": 99}}}
                    for x in (0, 1, 2)
                ],
            ))

    def test_serial_mode_retries_too(self, tmp_path):
        engine = engine_with(tmp_path, jobs=1)
        got = run_chaos_sweep(
            engine, xs=(7, 8), state_dir=str(tmp_path / "state"),
            faults={"7": {"kind": "raise", "times": 2}},
        )
        assert got == {7: 49, 8: 64}
        assert engine.manifests[0].points[0].attempts == 3


class TestTimeoutErrorTypes:
    def test_point_timeout_reports_budget_and_attempt(self):
        error = PointTimeout(1.5, attempt=3)
        assert "1.5" in str(error)
        assert error.attempt == 3

    def test_worker_crash_kinds(self):
        by_exit = WorkerCrash("died", kind="exit", exitcode=137)
        by_protocol = WorkerCrash("bad bytes", kind="protocol")
        assert by_exit.exitcode == 137
        assert by_exit.kind == "exit"
        assert by_protocol.kind == "protocol"
