"""Tests for the additional MPI collectives (reduce, gather, scatter,
allgather)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import tibidabo
from repro.cluster.mpi import MpiJob


def _run(program, ranks, nodes=8, seed=0):
    cluster = tibidabo(num_nodes=nodes, seed=seed)
    return MpiJob(cluster, ranks, program, tracer=None).run()


class TestReduce:
    @pytest.mark.parametrize("ranks", [2, 3, 4, 5, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_completes_for_any_size_and_root(self, ranks, root):
        if root >= ranks:
            pytest.skip("root outside communicator")

        def program(rank):
            yield rank.compute(0.001)
            yield from rank.reduce(root, 8_000)

        result = _run(program, ranks)
        # Binomial tree: exactly ranks-1 messages.
        assert result.messages_delivered == ranks - 1

    def test_single_rank_noop(self):
        def program(rank):
            yield rank.compute(0.001)
            yield from rank.reduce(0, 1000)

        assert _run(program, 1).messages_delivered == 0


class TestGatherScatter:
    @pytest.mark.parametrize("ranks", [2, 4, 7])
    def test_gather_message_count(self, ranks):
        def program(rank):
            yield from rank.gather(0, 4_000)

        assert _run(program, ranks).messages_delivered == ranks - 1

    @pytest.mark.parametrize("ranks", [2, 4, 7])
    def test_scatter_message_count(self, ranks):
        def program(rank):
            yield from rank.scatter(0, 4_000)

        assert _run(program, ranks).messages_delivered == ranks - 1

    def test_gather_root_finishes_last(self):
        finish = {}

        def program(rank):
            yield rank.compute(0.01 * rank.rank)
            yield from rank.gather(0, 4_000)
            finish[rank.rank] = job.sim.now

        cluster = tibidabo(num_nodes=4, seed=0)
        job = MpiJob(cluster, 8, program)
        job.run()
        assert finish[0] >= max(finish.values()) - 1e-9


class TestAllgather:
    @pytest.mark.parametrize("ranks", [2, 3, 6])
    def test_ring_message_count(self, ranks):
        def program(rank):
            yield from rank.allgather(2_000)

        assert _run(program, ranks).messages_delivered == ranks * (ranks - 1)

    def test_single_rank_noop(self):
        def program(rank):
            yield rank.compute(0.001)
            yield from rank.allgather(1000)

        assert _run(program, 1).messages_delivered == 0


class TestComposition:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 2))
    def test_property_mixed_collective_workloads_complete(self, ranks, seed):
        """Any same-order composition of the full collective set runs
        to completion (no deadlock, no mismatched tags)."""
        def program(rank):
            yield rank.compute(0.0005)
            yield from rank.reduce(ranks - 1, 4_096)
            yield from rank.scatter(0, 2_048)
            yield from rank.allgather(1_024)
            yield from rank.gather(ranks // 2, 2_048)
            yield from rank.barrier()

        result = _run(program, ranks, seed=seed)
        assert all(t > 0 for t in result.rank_finish_times)
