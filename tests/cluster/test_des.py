"""Tests for repro.cluster.des (incl. hypothesis causality checks)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.des import Process, Simulator, Timeout
from repro.errors import SimulationError


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.5, lambda: None)

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_delay_rejected(self, delay):
        with pytest.raises(SimulationError, match="finite"):
            Simulator().schedule(delay, lambda: None)

    def test_non_finite_absolute_time_rejected(self):
        with pytest.raises(SimulationError, match="finite"):
            Simulator().schedule_at(float("nan"), lambda: None)

    def test_cancel_one_of_same_timestamp_tie(self):
        """Cancelling one event of a tie must not disturb the others'
        FIFO order."""
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(1.0, lambda n=name: fired.append(n)) for name in "abcd"
        ]
        events[1].cancel()  # drop "b" only
        sim.run()
        assert fired == ["a", "c", "d"]
        assert sim.now == 1.0

    def test_cancel_mid_drain_preserves_fifo(self):
        """An event that cancels a same-timestamp sibling while the tie
        is draining: the sibling is skipped, later events keep order."""
        sim = Simulator()
        fired = []
        victim = None

        def assassin():
            fired.append("assassin")
            victim.cancel()

        sim.schedule(1.0, assassin)
        victim = sim.schedule(1.0, lambda: fired.append("victim"))
        sim.schedule(1.0, lambda: fired.append("bystander"))
        sim.schedule(2.0, lambda: fired.append("later"))
        sim.run()
        assert fired == ["assassin", "bystander", "later"]
        assert sim.events_executed == 3

    def test_cancelled_events_not_counted_pending(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        keep.cancel()
        assert sim.pending == 0

    def test_run_until_pauses_cleanly(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert fired == [0.0, 1.0, 2.0]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    def test_property_observed_times_are_monotone(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert sim.events_executed == len(delays)


class TestProcess:
    def test_generator_runs_to_completion(self):
        sim = Simulator()

        def generator():
            yield Timeout(1.0)
            yield Timeout(2.0)
            return "done"

        process = Process(sim, generator(), name="p")
        process.start()
        sim.run()
        assert process.finished
        assert process.finish_time == 3.0
        assert process.result == "done"

    def test_on_finish_callbacks(self):
        sim = Simulator()
        notified = []

        def generator():
            yield Timeout(1.0)

        process = Process(sim, generator())
        process.on_finish(lambda: notified.append(sim.now))
        process.start()
        sim.run()
        assert notified == [1.0]

    def test_on_finish_after_completion_fires_immediately(self):
        sim = Simulator()

        def generator():
            yield Timeout(0.0)

        process = Process(sim, generator())
        process.start()
        sim.run()
        notified = []
        process.on_finish(lambda: notified.append(True))
        assert notified == [True]

    def test_yielding_garbage_is_an_error(self):
        sim = Simulator()

        def generator():
            yield 42

        Process(sim, generator(), name="bad").start()
        with pytest.raises(SimulationError, match="non-request"):
            sim.run()

    def test_resume_after_finish_rejected(self):
        sim = Simulator()

        def generator():
            yield Timeout(0.0)

        process = Process(sim, generator())
        process.start()
        sim.run()
        with pytest.raises(SimulationError):
            process.resume(None)

    def test_negative_timeout_rejected(self):
        sim = Simulator()

        def generator():
            yield Timeout(-1.0)

        Process(sim, generator()).start()
        with pytest.raises(SimulationError):
            sim.run()

    def test_processes_interleave(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            for _ in range(2):
                yield Timeout(delay)
                log.append((name, sim.now))

        Process(sim, worker("fast", 1.0)).start()
        Process(sim, worker("slow", 1.5)).start()
        sim.run()
        assert log == [("fast", 1.0), ("slow", 1.5), ("fast", 2.0), ("slow", 3.0)]


class TestProcessFaultStates:
    def test_kill_makes_scheduled_wakeups_stale(self):
        sim = Simulator()
        log = []

        def generator():
            yield Timeout(1.0)
            log.append("woke")  # must never run

        process = Process(sim, generator(), name="victim")
        process.start()
        sim.schedule(0.5, process.kill)
        sim.run()
        assert log == []
        assert process.crashed and process.terminated and not process.finished
        assert process.finish_time == 0.5

    def test_interrupt_deferred_until_next_wakeup(self):
        sim = Simulator()
        seen = []

        def generator():
            try:
                yield Timeout(1.0)
            except SimulationError:
                seen.append(sim.now)

        process = Process(sim, generator())
        process.start()
        sim.schedule(0.2, lambda: process.interrupt(SimulationError("boom")))
        sim.run()
        assert seen == [1.0]  # delivered at the wakeup, not at 0.2
        assert process.finished  # the program caught it and returned

    def test_uncaught_interrupt_records_failure(self):
        sim = Simulator()

        def generator():
            yield Timeout(1.0)

        process = Process(sim, generator())
        process.start()
        exc = SimulationError("peer died")
        sim.schedule(0.2, lambda: process.interrupt(exc))
        sim.run()
        assert process.failure is exc
        assert process.terminated and not process.finished and not process.crashed

    def test_immediate_interrupt_wakes_parked_process(self):
        sim = Simulator()

        def generator():
            yield Timeout(10.0)

        process = Process(sim, generator())
        process.start()
        sim.schedule(
            0.5,
            lambda: process.interrupt(SimulationError("now"), immediate=True),
        )
        sim.run(until=1.0)
        assert process.failure is not None
        assert process.finish_time == 0.5
