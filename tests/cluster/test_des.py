"""Tests for repro.cluster.des (incl. hypothesis causality checks)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.des import Process, Simulator, Timeout
from repro.errors import SimulationError


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.5, lambda: None)

    def test_run_until_pauses_cleanly(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert fired == [0.0, 1.0, 2.0]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    def test_property_observed_times_are_monotone(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert sim.events_executed == len(delays)


class TestProcess:
    def test_generator_runs_to_completion(self):
        sim = Simulator()

        def generator():
            yield Timeout(1.0)
            yield Timeout(2.0)
            return "done"

        process = Process(sim, generator(), name="p")
        process.start()
        sim.run()
        assert process.finished
        assert process.finish_time == 3.0
        assert process.result == "done"

    def test_on_finish_callbacks(self):
        sim = Simulator()
        notified = []

        def generator():
            yield Timeout(1.0)

        process = Process(sim, generator())
        process.on_finish(lambda: notified.append(sim.now))
        process.start()
        sim.run()
        assert notified == [1.0]

    def test_on_finish_after_completion_fires_immediately(self):
        sim = Simulator()

        def generator():
            yield Timeout(0.0)

        process = Process(sim, generator())
        process.start()
        sim.run()
        notified = []
        process.on_finish(lambda: notified.append(True))
        assert notified == [True]

    def test_yielding_garbage_is_an_error(self):
        sim = Simulator()

        def generator():
            yield 42

        Process(sim, generator(), name="bad").start()
        with pytest.raises(SimulationError, match="non-request"):
            sim.run()

    def test_resume_after_finish_rejected(self):
        sim = Simulator()

        def generator():
            yield Timeout(0.0)

        process = Process(sim, generator())
        process.start()
        sim.run()
        with pytest.raises(SimulationError):
            process.resume(None)

    def test_negative_timeout_rejected(self):
        sim = Simulator()

        def generator():
            yield Timeout(-1.0)

        Process(sim, generator()).start()
        with pytest.raises(SimulationError):
            sim.run()

    def test_processes_interleave(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            for _ in range(2):
                yield Timeout(delay)
                log.append((name, sim.now))

        Process(sim, worker("fast", 1.0)).start()
        Process(sim, worker("slow", 1.5)).start()
        sim.run()
        assert log == [("fast", 1.0), ("slow", 1.5), ("fast", 2.0), ("slow", 3.0)]
