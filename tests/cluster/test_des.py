"""Tests for repro.cluster.des (incl. hypothesis causality checks)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.des import Process, Simulator, Timeout
from repro.errors import SimulationError


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.5, lambda: None)

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_delay_rejected(self, delay):
        with pytest.raises(SimulationError, match="finite"):
            Simulator().schedule(delay, lambda: None)

    def test_non_finite_absolute_time_rejected(self):
        with pytest.raises(SimulationError, match="finite"):
            Simulator().schedule_at(float("nan"), lambda: None)

    def test_cancel_one_of_same_timestamp_tie(self):
        """Cancelling one event of a tie must not disturb the others'
        FIFO order."""
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(1.0, lambda n=name: fired.append(n)) for name in "abcd"
        ]
        events[1].cancel()  # drop "b" only
        sim.run()
        assert fired == ["a", "c", "d"]
        assert sim.now == 1.0

    def test_cancel_mid_drain_preserves_fifo(self):
        """An event that cancels a same-timestamp sibling while the tie
        is draining: the sibling is skipped, later events keep order."""
        sim = Simulator()
        fired = []
        victim = None

        def assassin():
            fired.append("assassin")
            victim.cancel()

        sim.schedule(1.0, assassin)
        victim = sim.schedule(1.0, lambda: fired.append("victim"))
        sim.schedule(1.0, lambda: fired.append("bystander"))
        sim.schedule(2.0, lambda: fired.append("later"))
        sim.run()
        assert fired == ["assassin", "bystander", "later"]
        assert sim.events_executed == 3

    def test_cancelled_events_not_counted_pending(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        keep.cancel()
        assert sim.pending == 0

    def test_run_until_pauses_cleanly(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert fired == [0.0, 1.0, 2.0]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    def test_property_observed_times_are_monotone(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert sim.events_executed == len(delays)


class TestProcess:
    def test_generator_runs_to_completion(self):
        sim = Simulator()

        def generator():
            yield Timeout(1.0)
            yield Timeout(2.0)
            return "done"

        process = Process(sim, generator(), name="p")
        process.start()
        sim.run()
        assert process.finished
        assert process.finish_time == 3.0
        assert process.result == "done"

    def test_on_finish_callbacks(self):
        sim = Simulator()
        notified = []

        def generator():
            yield Timeout(1.0)

        process = Process(sim, generator())
        process.on_finish(lambda: notified.append(sim.now))
        process.start()
        sim.run()
        assert notified == [1.0]

    def test_on_finish_after_completion_fires_immediately(self):
        sim = Simulator()

        def generator():
            yield Timeout(0.0)

        process = Process(sim, generator())
        process.start()
        sim.run()
        notified = []
        process.on_finish(lambda: notified.append(True))
        assert notified == [True]

    def test_yielding_garbage_is_an_error(self):
        sim = Simulator()

        def generator():
            yield 42

        Process(sim, generator(), name="bad").start()
        with pytest.raises(SimulationError, match="non-request"):
            sim.run()

    def test_resume_after_finish_rejected(self):
        sim = Simulator()

        def generator():
            yield Timeout(0.0)

        process = Process(sim, generator())
        process.start()
        sim.run()
        with pytest.raises(SimulationError):
            process.resume(None)

    def test_negative_timeout_rejected(self):
        sim = Simulator()

        def generator():
            yield Timeout(-1.0)

        Process(sim, generator()).start()
        with pytest.raises(SimulationError):
            sim.run()

    def test_processes_interleave(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            for _ in range(2):
                yield Timeout(delay)
                log.append((name, sim.now))

        Process(sim, worker("fast", 1.0)).start()
        Process(sim, worker("slow", 1.5)).start()
        sim.run()
        assert log == [("fast", 1.0), ("slow", 1.5), ("fast", 2.0), ("slow", 3.0)]


class TestProcessFaultStates:
    def test_kill_makes_scheduled_wakeups_stale(self):
        sim = Simulator()
        log = []

        def generator():
            yield Timeout(1.0)
            log.append("woke")  # must never run

        process = Process(sim, generator(), name="victim")
        process.start()
        sim.schedule(0.5, process.kill)
        sim.run()
        assert log == []
        assert process.crashed and process.terminated and not process.finished
        assert process.finish_time == 0.5

    def test_interrupt_deferred_until_next_wakeup(self):
        sim = Simulator()
        seen = []

        def generator():
            try:
                yield Timeout(1.0)
            except SimulationError:
                seen.append(sim.now)

        process = Process(sim, generator())
        process.start()
        sim.schedule(0.2, lambda: process.interrupt(SimulationError("boom")))
        sim.run()
        assert seen == [1.0]  # delivered at the wakeup, not at 0.2
        assert process.finished  # the program caught it and returned

    def test_uncaught_interrupt_records_failure(self):
        sim = Simulator()

        def generator():
            yield Timeout(1.0)

        process = Process(sim, generator())
        process.start()
        exc = SimulationError("peer died")
        sim.schedule(0.2, lambda: process.interrupt(exc))
        sim.run()
        assert process.failure is exc
        assert process.terminated and not process.finished and not process.crashed

    def test_immediate_interrupt_wakes_parked_process(self):
        sim = Simulator()

        def generator():
            yield Timeout(10.0)

        process = Process(sim, generator())
        process.start()
        sim.schedule(
            0.5,
            lambda: process.interrupt(SimulationError("now"), immediate=True),
        )
        sim.run(until=1.0)
        assert process.failure is not None
        assert process.finish_time == 0.5


class TestWaiterDrainOnTermination:
    """Regression: on_finish waiters used to leak on kill/failure."""

    def test_waiter_on_killed_rank_fires(self):
        sim = Simulator()

        def generator():
            yield Timeout(10.0)

        process = Process(sim, generator(), name="rank3")
        process.start()
        observed = []
        process.on_finish(lambda: observed.append(process.crashed))
        sim.schedule(1.0, process.kill)
        sim.run()
        assert observed == [True]
        assert process.finish_time == 1.0

    def test_waiter_on_failed_rank_fires(self):
        sim = Simulator()

        def generator():
            yield Timeout(10.0)

        process = Process(sim, generator())
        process.start()
        observed = []
        process.on_finish(lambda: observed.append(process.failure))
        exc = SimulationError("peer died")
        sim.schedule(1.0, lambda: process.interrupt(exc, immediate=True))
        sim.run()
        assert observed == [exc]

    def test_waiter_after_kill_fires_immediately(self):
        sim = Simulator()

        def generator():
            yield Timeout(10.0)

        process = Process(sim, generator())
        process.start()
        sim.run(until=0.5)
        process.kill()
        fired = []
        process.on_finish(lambda: fired.append(True))
        assert fired == [True]

    def test_waiters_fire_exactly_once_on_kill_then_stale_wakeup(self):
        sim = Simulator()

        def generator():
            yield Timeout(1.0)

        process = Process(sim, generator())
        process.start()
        fired = []
        process.on_finish(lambda: fired.append(True))
        sim.schedule(0.5, process.kill)
        sim.run()  # the timeout wakeup at t=1 is stale and must no-op
        assert fired == [True]


class TestScheduleAtFloatArtifacts:
    """Regression: schedule_at(t) raised when accumulated float error
    put the analytic target an ulp behind the hopped clock."""

    def test_chained_absolute_hops_reach_analytic_target(self):
        # The clock hops forward by += 0.1 while each step also targets
        # the *analytic* grid point k * 0.1.  For 37 of the first 200
        # steps (k = 15 is the first) the analytic target lies a few
        # ulps behind the accumulated clock; the old engine raised
        # "cannot schedule into the past" at the first one.
        sim = Simulator()
        fired = []

        def hop(k):
            sim.schedule_at(k * 0.1, lambda: fired.append(k))
            if k < 200:
                sim.schedule(0.1, lambda: hop(k + 1))

        hop(0)
        sim.run()
        assert fired == list(range(201))

    def test_genuinely_past_target_still_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_clamped_event_fires_at_now(self):
        sim = Simulator()
        fired = []

        def late():
            # now == 0.30000000000000004; target 0.3 is one ulp past.
            sim.schedule_at(0.3, lambda: fired.append(sim.now))

        for _ in range(3):
            sim.schedule_at(sim.now, lambda: None)
        sim.schedule_at(0.1 * 3, late)
        sim.run()
        assert fired == [0.1 * 3]


class TestTombstoneCompaction:
    """Regression: cancelled events used to pile up in the heap forever
    and pending was an O(n) scan over the corpses."""

    def test_mass_cancel_bounds_heap_memory(self):
        sim = Simulator()
        events = [sim.schedule(float(i), lambda: None) for i in range(10_000)]
        keep = events[::100]
        for i, event in enumerate(events):
            if i % 100:
                event.cancel()
        assert sim.pending == len(keep)
        # Lazy compaction kicked in: tombstones no longer dominate.
        assert len(sim._heap) <= 2 * sim.pending + 1
        assert sim.compactions >= 1
        sim.run()
        assert sim.events_executed == len(keep)

    def test_pending_is_live_count_not_queue_length(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        events[3].cancel()
        events[7].cancel()
        assert sim.pending == 8
        assert sim.tombstones <= 2

    def test_cancel_is_idempotent_and_compaction_safe_mid_drain(self):
        sim = Simulator()
        survivors = []
        events = []

        def cancel_most():
            for i, event in enumerate(events):
                if i % 50:
                    event.cancel()
                    event.cancel()  # idempotent

        sim.schedule(0.0, cancel_most)
        events.extend(
            sim.schedule(1.0 + i, lambda i=i: survivors.append(i))
            for i in range(5_000)
        )
        sim.run()
        assert survivors == list(range(0, 5_000, 50))
