"""Tests for repro.cluster.fabric and repro.cluster.cluster."""

import pytest

from repro.cluster.cluster import ClusterModel, tibidabo
from repro.cluster.fabric import Fabric, FatTreeSpec
from repro.errors import ConfigurationError, NetworkError


class TestFabricTopology:
    def test_single_leaf_has_no_root(self):
        fabric = Fabric(16, FatTreeSpec())
        assert fabric.root is None
        assert len(fabric.leaves) == 1

    def test_multi_leaf_grows_a_root(self):
        fabric = Fabric(96, FatTreeSpec(nodes_per_leaf=40))
        assert fabric.root is not None
        assert len(fabric.leaves) == 3

    def test_leaf_assignment(self):
        fabric = Fabric(96, FatTreeSpec(nodes_per_leaf=40))
        assert fabric.leaf_of(0) == 0
        assert fabric.leaf_of(39) == 0
        assert fabric.leaf_of(40) == 1
        assert fabric.leaf_of(95) == 2

    def test_hop_counts(self):
        fabric = Fabric(96, FatTreeSpec(nodes_per_leaf=40))
        assert fabric.hop_count(0, 0) == 0
        assert fabric.hop_count(0, 1) == 1
        assert fabric.hop_count(0, 41) == 3

    def test_too_many_nodes_per_leaf_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTreeSpec(nodes_per_leaf=48)  # 48 + uplink > 48 ports


class TestFabricDelivery:
    def test_intra_leaf_delivery_time(self):
        fabric = Fabric(4, FatTreeSpec())
        arrival = fabric.deliver(0.0, 0, 1, 125_000)
        # NIC tx (1 ms) + latency + switch (1 ms) + latency + NIC rx (1 ms) + latency
        assert 0.003 <= arrival < 0.0032

    def test_cross_leaf_costs_more_hops(self):
        fabric = Fabric(96, FatTreeSpec(nodes_per_leaf=40))
        intra = fabric.deliver(0.0, 0, 1, 125_000)
        fabric.reset()
        inter = fabric.deliver(0.0, 0, 41, 125_000)
        assert inter > intra

    def test_self_delivery_rejected(self):
        fabric = Fabric(4, FatTreeSpec())
        with pytest.raises(NetworkError):
            fabric.deliver(0.0, 2, 2, 100)

    def test_unknown_node_rejected(self):
        fabric = Fabric(4, FatTreeSpec())
        with pytest.raises(NetworkError):
            fabric.deliver(0.0, 0, 9, 100)

    def test_concurrent_messages_to_one_node_serialize(self):
        fabric = Fabric(8, FatTreeSpec())
        arrivals = [fabric.deliver(0.0, src, 0, 1_250_000) for src in range(1, 8)]
        assert arrivals == sorted(arrivals)
        # 7 x 10 ms of payload must serialize at the rx port/NIC.
        assert arrivals[-1] >= 7 * 0.01

    def test_reset_clears_bookings_and_stats(self):
        fabric = Fabric(8, FatTreeSpec())
        fabric.deliver(0.0, 0, 1, 1_000_000)
        fabric.reset()
        assert fabric.nics[0].tx.free_at == 0.0
        assert fabric.total_loss_episodes() == 0


class TestClusterModel:
    def test_tibidabo_defaults(self):
        cluster = tibidabo(num_nodes=8)
        assert cluster.node.name.startswith("NVIDIA Tegra2")
        assert cluster.cores_per_node == 2
        assert cluster.total_cores == 16

    def test_rank_placement(self):
        cluster = tibidabo(num_nodes=4)
        assert cluster.node_of_rank(0) == 0
        assert cluster.node_of_rank(1) == 0
        assert cluster.node_of_rank(2) == 1
        assert cluster.node_of_rank(7) == 3

    def test_rank_overflow_rejected(self):
        cluster = tibidabo(num_nodes=2)
        with pytest.raises(ConfigurationError):
            cluster.node_of_rank(4)

    def test_shared_memory_transfer(self):
        cluster = tibidabo(num_nodes=2)
        done = cluster.shared_memory_transfer(0.0, 0, 1_000_000)
        assert 0.0 < done < 0.01

    def test_node_power(self):
        cluster = tibidabo(num_nodes=8)
        assert cluster.node_power_watts(8) == pytest.approx(8 * 4.0)
        with pytest.raises(ConfigurationError):
            cluster.node_power_watts(9)

    def test_upgraded_variant(self):
        cluster = tibidabo(num_nodes=8, upgraded_switches=True)
        assert "upgraded" in cluster.name
        assert cluster.fabric.spec.switch.loss_rate == 0.0

    def test_mismatched_fabric_rejected(self):
        from repro.arch.machines import TEGRA2_NODE
        fabric = Fabric(4, FatTreeSpec())
        with pytest.raises(ConfigurationError):
            ClusterModel(name="bad", node=TEGRA2_NODE, num_nodes=8, fabric=fabric)
