"""Tests for repro.cluster.mpi."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import tibidabo
from repro.cluster.mpi import EAGER_THRESHOLD_BYTES, MpiJob, MpiRank
from repro.errors import ConfigurationError, DeadlockError, SimulationError


def _cluster(nodes=8, seed=0):
    return tibidabo(num_nodes=nodes, seed=seed)


def _run(program, ranks=4, nodes=8, seed=0, tracer=None):
    cluster = _cluster(nodes, seed)
    job = MpiJob(cluster, ranks, program, tracer=tracer)
    return job.run()


class TestPointToPoint:
    def test_ping_pong(self):
        log = []

        def program(rank):
            if rank.rank == 0:
                yield rank.send(1, 1000, tag="ping")
                message = yield rank.recv(1, tag="pong")
                log.append(message.nbytes)
            elif rank.rank == 1:
                yield rank.recv(0, tag="ping")
                yield rank.send(0, 2000, tag="pong")

        result = _run(program, ranks=2)
        assert log == [2000]
        assert result.messages_delivered == 2

    def test_messages_match_by_tag(self):
        order = []

        def program(rank):
            if rank.rank == 0:
                yield rank.send(1, 100, tag="b")
                yield rank.send(1, 100, tag="a")
            else:
                message_a = yield rank.recv(0, tag="a")
                message_b = yield rank.recv(0, tag="b")
                order.append((message_a.tag, message_b.tag))

        _run(program, ranks=2)
        assert order == [("a", "b")]

    def test_eager_send_returns_before_delivery(self):
        times = {}

        def program(rank):
            if rank.rank == 0:
                yield rank.send(1, 1024, tag=0)  # eager
                times["send_done"] = rank_sim.now
            else:
                yield rank.recv(0, tag=0)
                times["recv_done"] = rank_sim.now

        cluster = _cluster()
        job = MpiJob(cluster, 2, program)
        rank_sim = job.sim
        job.run()
        assert times["send_done"] < times["recv_done"]

    def test_large_send_blocks_until_delivery(self):
        times = {}

        def program(rank):
            if rank.rank == 0:
                yield rank.send(1, EAGER_THRESHOLD_BYTES * 10, tag=0)
                times["send_done"] = rank_sim.now
            else:
                yield rank.recv(0, tag=0)
                times["recv_done"] = rank_sim.now

        cluster = _cluster()
        job = MpiJob(cluster, 2, program)
        rank_sim = job.sim
        job.run()
        assert times["send_done"] == pytest.approx(times["recv_done"], abs=1e-6)

    def test_intra_node_uses_shared_memory(self):
        """Ranks 0 and 1 share a node: transfer must beat the NIC."""
        def program(rank):
            if rank.rank == 0:
                yield rank.send(1, 1_000_000, tag=0)
            elif rank.rank == 1:
                yield rank.recv(0, tag=0)
            # ranks 2+ idle

        intra = _run(program, ranks=2).elapsed_seconds

        def program_inter(rank):
            if rank.rank == 0:
                yield rank.send(2, 1_000_000, tag=0)
            elif rank.rank == 2:
                yield rank.recv(0, tag=0)

        inter = _run(program_inter, ranks=4).elapsed_seconds
        assert intra < inter

    def test_deadlock_detected(self):
        def program(rank):
            yield rank.recv((rank.rank + 1) % rank.size, tag="never-sent")

        with pytest.raises(SimulationError, match="deadlock"):
            _run(program, ranks=2)

    def test_deadlock_error_names_stuck_ranks_and_requests(self):
        """Recv-without-send: the error is structured, naming every
        stuck rank and the request it is parked on."""
        def program(rank):
            if rank.rank == 0:
                yield rank.recv(1, tag="never-sent")
            else:
                yield rank.compute(0.01)

        with pytest.raises(DeadlockError) as info:
            _run(program, ranks=2)
        error = info.value
        assert [name for name, _ in error.stuck] == ["rank0"]
        assert "never-sent" in error.stuck[0][1]
        assert "rank0" in str(error) and "1 rank(s) blocked" in str(error)

    def test_deadlock_error_lists_every_stuck_rank(self):
        def program(rank):
            yield rank.recv((rank.rank + 1) % rank.size, tag="nope")

        with pytest.raises(DeadlockError) as info:
            _run(program, ranks=3)
        assert sorted(name for name, _ in info.value.stuck) == [
            "rank0", "rank1", "rank2",
        ]

    def test_compute_only_job(self):
        def program(rank):
            yield rank.compute(0.5)
            yield rank.compute(0.25)

        result = _run(program, ranks=4)
        assert result.elapsed_seconds == pytest.approx(0.75)

    def test_self_message_rejected(self):
        rank = MpiRank(0, 4)
        with pytest.raises(ConfigurationError):
            rank.send(0, 10)

    def test_peer_out_of_range_rejected(self):
        rank = MpiRank(0, 4)
        with pytest.raises(ConfigurationError):
            rank.recv(4)

    def test_negative_compute_rejected(self):
        rank = MpiRank(0, 4)
        with pytest.raises(ConfigurationError):
            rank.compute(-1.0)


class TestCollectives:
    @pytest.mark.parametrize("ranks", [2, 3, 4, 7, 8])
    def test_barrier_completes_for_any_size(self, ranks):
        def program(rank):
            yield rank.compute(0.001 * rank.rank)
            yield from rank.barrier()

        result = _run(program, ranks=ranks)
        assert result.num_ranks == ranks

    def test_barrier_synchronizes(self):
        """No rank may leave the barrier before the slowest enters."""
        exits = {}

        def program(rank):
            yield rank.compute(0.1 * rank.rank)
            yield from rank.barrier()
            exits[rank.rank] = job.sim.now

        cluster = _cluster()
        job = MpiJob(cluster, 4, program)
        job.run()
        slowest_entry = 0.3
        assert all(t >= slowest_entry for t in exits.values())

    @pytest.mark.parametrize("ranks", [2, 3, 5, 8])
    def test_bcast_reaches_everyone(self, ranks):
        received = []

        def program(rank):
            if rank.rank != 1:
                pass
            yield rank.compute(0.0)
            yield from rank.bcast(root=1, nbytes=10_000)
            received.append(rank.rank)

        _run(program, ranks=ranks)
        assert sorted(received) == list(range(ranks))

    @pytest.mark.parametrize("ranks", [2, 4, 6])
    def test_allreduce_completes(self, ranks):
        def program(rank):
            yield from rank.allreduce(64_000)

        result = _run(program, ranks=ranks)
        # Ring: 2(P-1) sends per rank.
        assert result.messages_delivered == ranks * 2 * (ranks - 1)

    @pytest.mark.parametrize("algorithm", ["linear", "pairwise"])
    def test_alltoallv_message_conservation(self, algorithm):
        def program(rank):
            yield from rank.alltoallv(
                [1000 * (d + 1) for d in range(rank.size)], algorithm=algorithm
            )

        result = _run(program, ranks=6)
        assert result.messages_delivered == 6 * 5

    def test_alltoallv_wrong_length_rejected(self):
        rank = MpiRank(0, 4)
        with pytest.raises(ConfigurationError):
            list(rank.alltoallv([100, 100]))

    def test_alltoallv_unknown_algorithm_rejected(self):
        rank = MpiRank(0, 4)
        with pytest.raises(ConfigurationError):
            list(rank.alltoallv([1, 1, 1, 1], algorithm="magic"))

    def test_single_rank_collectives_are_noops(self):
        def program(rank):
            yield rank.compute(0.01)
            yield from rank.barrier()
            yield from rank.bcast(0, 1000)
            yield from rank.allreduce(1000)

        result = _run(program, ranks=1)
        assert result.messages_delivered == 0
        assert result.elapsed_seconds == pytest.approx(0.01)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 3))
    def test_property_collective_sequence_never_deadlocks(self, ranks, seed):
        def program(rank):
            yield rank.compute(0.001)
            yield from rank.barrier()
            yield from rank.allreduce(8_192)
            yield from rank.bcast(ranks - 1, 4_096)
            yield from rank.alltoallv([256] * rank.size)

        result = _run(program, ranks=ranks, seed=seed)
        assert all(t > 0 for t in result.rank_finish_times)


class TestJobValidation:
    def test_too_many_ranks_for_cluster_rejected(self):
        cluster = _cluster(nodes=2)
        with pytest.raises(ConfigurationError):
            MpiJob(cluster, 5, lambda rank: iter(()))

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            MpiJob(_cluster(), 0, lambda rank: iter(()))
