"""Tests for repro.cluster.network and repro.cluster.switch."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.network import FAST_ETHERNET_NIC, GBE_NIC, Nic, SerialResource
from repro.cluster.switch import (
    SwitchModel,
    SwitchSpec,
    TIBIDABO_SWITCH,
    UPGRADED_SWITCH,
)
from repro.errors import ConfigurationError, NetworkError


class TestSerialResource:
    def test_transfer_time_is_bytes_over_bandwidth(self):
        link = SerialResource("l", 100.0)
        assert link.occupy(0.0, 200) == 2.0

    def test_back_to_back_messages_serialize(self):
        link = SerialResource("l", 100.0)
        first = link.occupy(0.0, 100)
        second = link.occupy(0.0, 100)
        assert first == 1.0
        assert second == 2.0

    def test_idle_gap_not_charged(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)
        assert link.occupy(10.0, 100) == 11.0

    def test_backlog(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 500)
        assert link.backlog_seconds(2.0) == pytest.approx(3.0)
        assert link.backlog_seconds(10.0) == 0.0

    def test_statistics(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)
        link.occupy(0.0, 300)
        assert link.bytes_carried == 400
        assert link.messages_carried == 2
        assert link.utilization(4.0) == pytest.approx(1.0)

    def test_reset(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)
        link.reset()
        assert link.free_at == 0.0
        assert link.bytes_carried == 0

    def test_invalid_occupy_rejected(self):
        link = SerialResource("l", 100.0)
        with pytest.raises(NetworkError):
            link.occupy(-1.0, 10)
        with pytest.raises(NetworkError):
            link.occupy(0.0, -10)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100), st.integers(0, 10000)),
                    min_size=1, max_size=40))
    def test_property_bookings_never_overlap(self, requests):
        link = SerialResource("l", 1000.0)
        previous_end = 0.0
        for now, nbytes in sorted(requests):
            end = link.occupy(now, nbytes)
            start = end - nbytes / 1000.0
            assert start >= previous_end - 1e-9
            previous_end = end


class TestNic:
    def test_gbe_rates(self):
        assert GBE_NIC.bandwidth_bytes_per_s == 125e6
        assert FAST_ETHERNET_NIC.bandwidth_bytes_per_s == 12.5e6

    def test_tx_rx_independent(self):
        nic = Nic(0, GBE_NIC)
        t_tx = nic.tx.occupy(0.0, 125_000_000)
        t_rx = nic.rx.occupy(0.0, 125_000_000)
        assert t_tx == pytest.approx(1.0)
        assert t_rx == pytest.approx(1.0)  # not serialized behind tx


class TestSwitchSpec:
    def test_paper_switches(self):
        assert TIBIDABO_SWITCH.ports == 48
        assert TIBIDABO_SWITCH.loss_rate > 0
        assert UPGRADED_SWITCH.loss_rate == 0.0

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchSpec("s", 1, 1e9, 1e-6, 1024)
        with pytest.raises(ConfigurationError):
            SwitchSpec("s", 48, 1e9, 1e-6, 0)
        with pytest.raises(ConfigurationError):
            SwitchSpec("s", 48, 1e9, 1e-6, 1024, loss_rate=1.5)


class TestSwitchModel:
    def _congest(self, spec, senders=20, messages=8, nbytes=500_000, seed=0):
        switch = SwitchModel(spec, name="s", seed=seed)
        done = 0.0
        for message in range(messages):
            for sender in range(senders):
                done = max(done, switch.forward(0.0, 0, nbytes, flow=sender))
        return switch, done

    def test_uncongested_forward_is_serialization_plus_latency(self):
        switch = SwitchModel(TIBIDABO_SWITCH, name="s")
        done = switch.forward(0.0, 0, 125_000)
        assert done == pytest.approx(0.001 + TIBIDABO_SWITCH.forwarding_latency_s)

    def test_incast_triggers_loss_episodes(self):
        """Collapse is stochastic per burst (p=0.45): across several
        independent bursts, some must collapse and lose messages."""
        results = [self._congest(TIBIDABO_SWITCH, seed=s)[0] for s in range(6)]
        assert sum(s.collapsed_bursts for s in results) > 0
        assert sum(s.loss_episodes for s in results) > 0
        # ... and some bursts survive cleanly (Figure 4: not every
        # collective is delayed).
        assert any(s.loss_episodes == 0 for s in results)

    def test_upgraded_switch_never_collapses(self):
        switch, _ = self._congest(UPGRADED_SWITCH)
        assert switch.loss_episodes == 0

    def test_few_flows_never_collapse(self):
        """An HPL-style fat stream from few sources must not trip the
        incast model ('LINPACK is only affected to a lesser extent')."""
        switch = SwitchModel(TIBIDABO_SWITCH, name="s", seed=1)
        for message in range(50):
            switch.forward(0.0, 0, 1_000_000, flow=message % 2)
        assert switch.loss_episodes == 0

    def test_trunk_ports_never_collapse(self):
        switch = SwitchModel(TIBIDABO_SWITCH, name="s", seed=1)
        for sender in range(40):
            for _ in range(5):
                switch.forward(0.0, 0, 500_000, flow=sender, edge_port=False)
        assert switch.loss_episodes == 0

    def test_losses_cost_port_capacity(self):
        spec = TIBIDABO_SWITCH
        lossy, done_lossy = self._congest(spec, seed=3)
        clean, done_clean = self._congest(UPGRADED_SWITCH, seed=3)
        if lossy.loss_episodes:
            assert done_lossy > done_clean

    def test_collapse_is_seeded(self):
        a, _ = self._congest(TIBIDABO_SWITCH, seed=9)
        b, _ = self._congest(TIBIDABO_SWITCH, seed=9)
        assert a.loss_episodes == b.loss_episodes

    def test_port_out_of_range_rejected(self):
        switch = SwitchModel(TIBIDABO_SWITCH, name="s")
        with pytest.raises(ConfigurationError):
            switch.forward(0.0, 48, 100)

    def test_reset_clears_losses(self):
        switch, _ = self._congest(TIBIDABO_SWITCH)
        switch.reset()
        assert switch.loss_episodes == 0
        assert switch.port(0).free_at == 0.0
