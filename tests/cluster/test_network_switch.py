"""Tests for repro.cluster.network and repro.cluster.switch."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.network import FAST_ETHERNET_NIC, GBE_NIC, Nic, SerialResource
from repro.cluster.switch import (
    SwitchModel,
    SwitchSpec,
    TIBIDABO_SWITCH,
    UPGRADED_SWITCH,
)
from repro.errors import ConfigurationError, NetworkError


class TestSerialResource:
    def test_transfer_time_is_bytes_over_bandwidth(self):
        link = SerialResource("l", 100.0)
        assert link.occupy(0.0, 200) == 2.0

    def test_back_to_back_messages_serialize(self):
        link = SerialResource("l", 100.0)
        first = link.occupy(0.0, 100)
        second = link.occupy(0.0, 100)
        assert first == 1.0
        assert second == 2.0

    def test_idle_gap_not_charged(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)
        assert link.occupy(10.0, 100) == 11.0

    def test_backlog(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 500)
        assert link.backlog_seconds(2.0) == pytest.approx(3.0)
        assert link.backlog_seconds(10.0) == 0.0

    def test_statistics(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)
        link.occupy(0.0, 300)
        assert link.bytes_carried == 400
        assert link.messages_carried == 2
        assert link.utilization(4.0) == pytest.approx(1.0)

    def test_utilization_booking_straddles_window_edge(self):
        # A booking extending past the measurement window only counts
        # its overlap with [0, elapsed] — the old code charged the full
        # duration and hid the overshoot behind a min(1.0, ...) clamp.
        link = SerialResource("l", 100.0)
        link.occupy(3.0, 400)                      # busy [3, 7]
        assert link.utilization(5.0) == pytest.approx(0.4)   # 2s of 5s
        assert link.utilization(7.0) == pytest.approx(4.0 / 7.0)
        assert link.utilization(100.0) == pytest.approx(0.04)

    def test_utilization_ignores_bookings_beyond_window(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)                      # busy [0, 1]
        link.occupy(10.0, 100)                     # busy [10, 11]
        assert link.utilization(5.0) == pytest.approx(0.2)
        assert link.utilization(1.0) == pytest.approx(1.0)

    def test_utilization_never_exceeds_one_without_clamp(self):
        link = SerialResource("l", 100.0)
        for _ in range(5):
            link.occupy(0.0, 1000)                 # solid backlog [0, 50]
        for elapsed in (0.5, 1.0, 10.0, 50.0, 80.0):
            assert link.utilization(elapsed) <= 1.0 + 1e-12

    def test_idle_gap_reduces_utilization(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)                      # busy [0, 1]
        link.occupy(3.0, 100)                      # busy [3, 4]
        assert link.utilization(4.0) == pytest.approx(0.5)

    def test_rescale_rebooks_in_flight_message(self):
        # 1000 B at 100 B/s books [0, 10]; halving the rate at t=5
        # leaves 500 B to serialize at 50 B/s -> done at t=15.
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 1000)
        link.set_bandwidth_scale(0.5, now=5.0)
        assert link.free_at == pytest.approx(15.0)
        assert link.utilization(15.0) == pytest.approx(1.0)
        # restoring mid-tail shrinks it again: 250 B left at t=10.
        link.set_bandwidth_scale(1.0, now=10.0)
        assert link.free_at == pytest.approx(12.5)

    def test_rescale_when_idle_only_changes_rate(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)
        link.set_bandwidth_scale(0.5, now=50.0)    # long after the message
        assert link.free_at == pytest.approx(1.0)
        assert link.occupy(50.0, 100) == pytest.approx(52.0)

    def test_rescale_without_now_keeps_in_flight_booking(self):
        # Per-message granularity is still available when the caller
        # has no clock: the in-flight booking is left untouched.
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 1000)
        link.set_bandwidth_scale(0.5)
        assert link.free_at == pytest.approx(10.0)
        assert link.occupy(0.0, 100) == pytest.approx(12.0)

    def test_reset(self):
        link = SerialResource("l", 100.0)
        link.occupy(0.0, 100)
        link.reset()
        assert link.free_at == 0.0
        assert link.bytes_carried == 0

    def test_invalid_occupy_rejected(self):
        link = SerialResource("l", 100.0)
        with pytest.raises(NetworkError):
            link.occupy(-1.0, 10)
        with pytest.raises(NetworkError):
            link.occupy(0.0, -10)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100), st.integers(0, 10000)),
                    min_size=1, max_size=40))
    def test_property_bookings_never_overlap(self, requests):
        link = SerialResource("l", 1000.0)
        previous_end = 0.0
        for now, nbytes in sorted(requests):
            end = link.occupy(now, nbytes)
            start = end - nbytes / 1000.0
            assert start >= previous_end - 1e-9
            previous_end = end


class TestNic:
    def test_gbe_rates(self):
        assert GBE_NIC.bandwidth_bytes_per_s == 125e6
        assert FAST_ETHERNET_NIC.bandwidth_bytes_per_s == 12.5e6

    def test_tx_rx_independent(self):
        nic = Nic(0, GBE_NIC)
        t_tx = nic.tx.occupy(0.0, 125_000_000)
        t_rx = nic.rx.occupy(0.0, 125_000_000)
        assert t_tx == pytest.approx(1.0)
        assert t_rx == pytest.approx(1.0)  # not serialized behind tx


class TestSwitchSpec:
    def test_paper_switches(self):
        assert TIBIDABO_SWITCH.ports == 48
        assert TIBIDABO_SWITCH.loss_rate > 0
        assert UPGRADED_SWITCH.loss_rate == 0.0

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchSpec("s", 1, 1e9, 1e-6, 1024)
        with pytest.raises(ConfigurationError):
            SwitchSpec("s", 48, 1e9, 1e-6, 0)
        with pytest.raises(ConfigurationError):
            SwitchSpec("s", 48, 1e9, 1e-6, 1024, loss_rate=1.5)


class TestSwitchModel:
    def _congest(self, spec, senders=20, messages=8, nbytes=500_000, seed=0):
        switch = SwitchModel(spec, name="s", seed=seed)
        done = 0.0
        for message in range(messages):
            for sender in range(senders):
                done = max(done, switch.forward(0.0, 0, nbytes, flow=sender))
        return switch, done

    def test_uncongested_forward_is_serialization_plus_latency(self):
        switch = SwitchModel(TIBIDABO_SWITCH, name="s")
        done = switch.forward(0.0, 0, 125_000)
        assert done == pytest.approx(0.001 + TIBIDABO_SWITCH.forwarding_latency_s)

    def test_incast_triggers_loss_episodes(self):
        """Collapse is stochastic per burst (p=0.45): across several
        independent bursts, some must collapse and lose messages."""
        results = [self._congest(TIBIDABO_SWITCH, seed=s)[0] for s in range(6)]
        assert sum(s.collapsed_bursts for s in results) > 0
        assert sum(s.loss_episodes for s in results) > 0
        # ... and some bursts survive cleanly (Figure 4: not every
        # collective is delayed).
        assert any(s.loss_episodes == 0 for s in results)

    def test_upgraded_switch_never_collapses(self):
        switch, _ = self._congest(UPGRADED_SWITCH)
        assert switch.loss_episodes == 0

    def test_few_flows_never_collapse(self):
        """An HPL-style fat stream from few sources must not trip the
        incast model ('LINPACK is only affected to a lesser extent')."""
        switch = SwitchModel(TIBIDABO_SWITCH, name="s", seed=1)
        for message in range(50):
            switch.forward(0.0, 0, 1_000_000, flow=message % 2)
        assert switch.loss_episodes == 0

    def test_trunk_ports_never_collapse(self):
        switch = SwitchModel(TIBIDABO_SWITCH, name="s", seed=1)
        for sender in range(40):
            for _ in range(5):
                switch.forward(0.0, 0, 500_000, flow=sender, edge_port=False)
        assert switch.loss_episodes == 0

    def test_losses_cost_port_capacity(self):
        spec = TIBIDABO_SWITCH
        lossy, done_lossy = self._congest(spec, seed=3)
        clean, done_clean = self._congest(UPGRADED_SWITCH, seed=3)
        if lossy.loss_episodes:
            assert done_lossy > done_clean

    def test_collapse_is_seeded(self):
        a, _ = self._congest(TIBIDABO_SWITCH, seed=9)
        b, _ = self._congest(TIBIDABO_SWITCH, seed=9)
        assert a.loss_episodes == b.loss_episodes

    def test_port_out_of_range_rejected(self):
        switch = SwitchModel(TIBIDABO_SWITCH, name="s")
        with pytest.raises(ConfigurationError):
            switch.forward(0.0, 48, 100)

    def test_reset_clears_losses(self):
        switch, _ = self._congest(TIBIDABO_SWITCH)
        switch.reset()
        assert switch.loss_episodes == 0
        assert switch.port(0).free_at == 0.0
