"""Tests for repro.cluster.prototype (the final Mont-Blanc machine)."""

import pytest

from repro.apps import BigDFT, Specfem3D
from repro.arch.isa import Precision
from repro.cluster import tibidabo
from repro.cluster.mpi import MpiJob
from repro.cluster.prototype import (
    COMMODITY_SWITCH_POWER,
    EeeSwitchPower,
    PROTOTYPE_SWITCH,
    PROTOTYPE_SWITCH_POWER,
    TEN_GBE_NIC,
    montblanc_prototype,
)
from repro.errors import ConfigurationError
from repro.tracing import TraceRecorder, analyze_collectives


class TestPrototypeHardware:
    def test_nodes_are_exynos(self):
        cluster = montblanc_prototype(num_nodes=8)
        assert "Exynos" in cluster.node.name
        assert cluster.node.accelerator is not None

    def test_network_is_fast_and_lossless(self):
        assert TEN_GBE_NIC.bandwidth_bytes_per_s == 1.25e9
        assert PROTOTYPE_SWITCH.loss_rate == 0.0
        assert PROTOTYPE_SWITCH.buffer_bytes > 8 * 1024 * 1024

    def test_dp_peak_exceeds_tibidabo_node(self):
        proto = montblanc_prototype(num_nodes=4)
        tibi = tibidabo(num_nodes=4)
        assert proto.node.peak_flops(Precision.DOUBLE) > 5 * tibi.node.peak_flops(
            Precision.DOUBLE
        )


class TestPrototypeBehaviour:
    def test_bigdft_runs_much_faster(self):
        """Better nodes AND a better network: the two §VI levers."""
        app = BigDFT(scf_iterations=3)
        tibi = tibidabo(num_nodes=16, seed=7)
        proto = montblanc_prototype(num_nodes=16, seed=7)
        t_tibi = app.run_cluster(tibi, 32)
        t_proto = app.run_cluster(proto, 32)
        assert t_proto < t_tibi / 5

    def test_no_delayed_collectives_on_the_prototype(self):
        app = BigDFT()
        proto = montblanc_prototype(num_nodes=18, seed=7)
        recorder = TraceRecorder()
        proto.reset()
        MpiJob(proto, 36, app.rank_program(proto, 36), tracer=recorder).run()
        report = analyze_collectives(recorder, "alltoallv")
        assert report.delayed_fraction < 0.2

    def test_specfem_scales_on_the_prototype_too(self):
        app = Specfem3D(timesteps=5)
        proto = montblanc_prototype(num_nodes=32, seed=3)
        curve = dict(app.speedup_curve(proto, [4, 64], baseline_cores=4))
        assert curve[64] / 64 > 0.9


class TestEeePower:
    def test_non_eee_power_is_flat(self):
        power_idle = COMMODITY_SWITCH_POWER.power(active_ports=2, utilization=0.0)
        power_busy = COMMODITY_SWITCH_POWER.power(active_ports=48, utilization=1.0)
        assert power_idle == power_busy

    def test_eee_power_tracks_footprint_and_traffic(self):
        small = PROTOTYPE_SWITCH_POWER.power(active_ports=4, utilization=0.1)
        large = PROTOTYPE_SWITCH_POWER.power(active_ports=40, utilization=0.9)
        assert small < large

    def test_eee_beats_commodity_at_light_load(self):
        """'power saving capabilities': a lightly used EEE switch burns
        far less than the always-on commodity box."""
        eee = PROTOTYPE_SWITCH_POWER.power(active_ports=8, utilization=0.2)
        fixed = COMMODITY_SWITCH_POWER.power(active_ports=8, utilization=0.2)
        assert eee < fixed

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            PROTOTYPE_SWITCH_POWER.power(active_ports=99, utilization=0.5)
        with pytest.raises(ConfigurationError):
            PROTOTYPE_SWITCH_POWER.power(active_ports=4, utilization=1.5)
        with pytest.raises(ConfigurationError):
            EeeSwitchPower(base_w=-1, port_w=1, ports=48, eee=True)
