"""Shared fixtures for the test suite."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the engine's result cache at a per-test directory.

    CLI invocations under test would otherwise memoize into the
    user's real ``~/.cache/repro``, leaking state between tests and
    machines.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
