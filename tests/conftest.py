"""Shared fixtures for the test suite."""

import os

import pytest

from repro.metrics import registry as metrics_registry

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "dev",
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "ci",
        max_examples=50,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the engine's result cache at a per-test directory.

    CLI invocations under test would otherwise memoize into the
    user's real ``~/.cache/repro``, leaking state between tests and
    machines.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(autouse=True)
def _isolated_metrics_registry():
    """Guard the process-global metrics registry against leakage.

    A test that installs a registry via ``set_registry`` (directly or
    through the CLI's ``--metrics-out``) and fails before restoring it
    would silently instrument every later test.  Snapshot the global
    and the calling thread's local slot, and restore both afterwards.
    """
    saved_global = metrics_registry._GLOBAL
    saved_local = getattr(metrics_registry._TLS, "registry", None)
    yield
    metrics_registry._GLOBAL = saved_global
    metrics_registry._TLS.registry = saved_local
