"""Tests for repro.core.artifacts (CSV / JSON export)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.artifacts import (
    curve_from_csv,
    curve_to_csv,
    measurements_from_json,
    measurements_to_csv,
    measurements_to_json,
)
from repro.core.measurement import MeasurementSet
from repro.errors import ConfigurationError


def _sample_set() -> MeasurementSet:
    results = MeasurementSet()
    results.record("bandwidth", 1.5e9, array_bytes=1024, stride=1)
    results.record("bandwidth", 0.9e9, array_bytes=2048, stride=1)
    results.record("latency", 42.0, array_bytes=1024)
    return results


class TestCsvExport:
    def test_header_includes_all_factors(self):
        text = measurements_to_csv(_sample_set())
        header = text.splitlines()[0]
        assert header == "sequence,metric,value,array_bytes,stride"

    def test_rows_match_samples(self):
        lines = measurements_to_csv(_sample_set()).splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("0,bandwidth,")
        assert lines[3].endswith(",1024,")  # latency sample has no stride

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            measurements_to_csv(MeasurementSet())


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = _sample_set()
        back = measurements_from_json(measurements_to_json(original))
        assert len(back) == len(original)
        for a, b in zip(original, back):
            assert a.metric == b.metric
            assert a.value == b.value
            assert dict(a.factors) == dict(b.factors)
            assert a.sequence == b.sequence

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            measurements_from_json("not json")
        with pytest.raises(ConfigurationError):
            measurements_from_json('{"a": 1}')
        with pytest.raises(ConfigurationError):
            measurements_from_json('[{"metric": "x"}]')

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["bw", "lat"]),
                  st.floats(-1e9, 1e9, allow_nan=False),
                  st.integers(0, 10_000)),
        min_size=1, max_size=20,
    ))
    def test_property_json_roundtrip(self, rows):
        original = MeasurementSet()
        for metric, value, factor in rows:
            original.record(metric, value, size=factor)
        back = measurements_from_json(measurements_to_json(original))
        assert [s.value for s in back] == [s.value for s in original]


class TestCurveCsv:
    def test_roundtrip(self):
        points = [(1, 1.0), (2, 2.5), (100, 82.5)]
        back = curve_from_csv(curve_to_csv(points, x_label="cores",
                                           y_label="speedup"))
        assert [float(x) for x, _ in back] == [1.0, 2.0, 100.0]
        assert [y for _, y in back] == [1.0, 2.5, 82.5]

    def test_labels_in_header(self):
        text = curve_to_csv([(1, 2.0)], x_label="cores", y_label="speedup")
        assert text.splitlines()[0] == "cores,speedup"

    def test_empty_curve_rejected(self):
        with pytest.raises(ConfigurationError):
            curve_to_csv([])

    def test_malformed_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            curve_from_csv("x,y\n")
        with pytest.raises(ConfigurationError):
            curve_from_csv("x,y\n1,2,3\n")
