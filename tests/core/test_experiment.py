"""Tests for repro.core.experiment."""

import pytest
from hypothesis import given, strategies as st

from repro.core.experiment import Experiment, ExperimentPlan, Factor
from repro.errors import ConfigurationError


class TestFactor:
    def test_levels_are_tuple(self):
        assert Factor("size", [1, 2]).levels == (1, 2)

    def test_empty_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            Factor("size", [])

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Factor("", [1])


class TestExperimentPlan:
    def test_full_factorial_size(self):
        plan = ExperimentPlan(
            [Factor("a", [1, 2, 3]), Factor("b", ["x", "y"])], replicates=4
        )
        assert len(plan) == 24

    def test_combinations_cover_the_product(self):
        plan = ExperimentPlan([Factor("a", [1, 2]), Factor("b", [3, 4])])
        combos = plan.combinations()
        assert {tuple(sorted(c.items())) for c in combos} == {
            (("a", 1), ("b", 3)),
            (("a", 1), ("b", 4)),
            (("a", 2), ("b", 3)),
            (("a", 2), ("b", 4)),
        }

    def test_no_factors_single_empty_combination(self):
        plan = ExperimentPlan([])
        assert plan.combinations() == [{}]
        assert len(plan) == 1

    def test_duplicate_factor_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentPlan([Factor("a", [1]), Factor("a", [2])])

    def test_zero_replicates_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentPlan([Factor("a", [1])], replicates=0)

    def test_randomization_is_seeded(self):
        factors = [Factor("a", list(range(10)))]
        plan1 = ExperimentPlan(factors, replicates=3, seed=42)
        plan2 = ExperimentPlan(factors, replicates=3, seed=42)
        assert [t.factors for t in plan1] == [t.factors for t in plan2]

    def test_different_seeds_differ(self):
        factors = [Factor("a", list(range(10)))]
        plan1 = ExperimentPlan(factors, replicates=3, seed=1)
        plan2 = ExperimentPlan(factors, replicates=3, seed=2)
        assert [t.factors for t in plan1] != [t.factors for t in plan2]

    def test_randomized_order_interleaves_replicates(self):
        """The paper's remedy for §V-A-1 bias: replicates of one level
        must not all run back-to-back."""
        plan = ExperimentPlan([Factor("a", list(range(8)))], replicates=8, seed=0)
        levels = [t.factors["a"] for t in plan]
        longest_run = 1
        current = 1
        for prev, cur in zip(levels, levels[1:]):
            current = current + 1 if prev == cur else 1
            longest_run = max(longest_run, current)
        assert longest_run < 8

    def test_unrandomized_order_is_deterministic_cartesian(self):
        plan = ExperimentPlan([Factor("a", [1, 2])], replicates=2, randomize=False)
        assert [(t.factors["a"], t.replicate) for t in plan] == [
            (1, 0), (1, 1), (2, 0), (2, 1),
        ]

    def test_trial_indices_are_sequential(self):
        plan = ExperimentPlan([Factor("a", [1, 2, 3])], replicates=2)
        assert [t.index for t in plan.trials()] == list(range(6))

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 3))
    def test_property_every_combination_replicated_exactly(self, n_levels, reps, seed):
        plan = ExperimentPlan(
            [Factor("a", list(range(n_levels)))], replicates=reps, seed=seed
        )
        counts = {}
        for trial in plan:
            counts[trial.factors["a"]] = counts.get(trial.factors["a"], 0) + 1
        assert counts == {level: reps for level in range(n_levels)}


class TestExperiment:
    def test_scalar_measure_recorded_under_metric(self):
        plan = ExperimentPlan([Factor("n", [1, 2])], replicates=2, seed=0)
        exp = Experiment(plan=plan, measure=lambda f: f["n"] * 10.0, metric="score")
        results = exp.run()
        assert sorted(results.values("score")) == [10.0, 10.0, 20.0, 20.0]

    def test_mapping_measure_records_all_metrics(self):
        plan = ExperimentPlan([Factor("n", [3])])
        exp = Experiment(
            plan=plan,
            measure=lambda f: {"cycles": 100.0, "accesses": 7.0},
        )
        results = exp.run()
        assert results.values("cycles") == [100.0]
        assert results.values("accesses") == [7.0]

    def test_factors_attached_to_samples(self):
        plan = ExperimentPlan([Factor("n", [5])])
        results = Experiment(plan=plan, measure=lambda f: 1.0).run()
        assert results[0].factor("n") == 5
