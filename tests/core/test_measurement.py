"""Tests for repro.core.measurement."""

import pytest

from repro.core.measurement import MeasurementSet, Sample
from repro.errors import ConfigurationError


class TestSample:
    def test_factor_lookup(self):
        sample = Sample(metric="bw", value=1.0, factors={"size": 1024})
        assert sample.factor("size") == 1024

    def test_missing_factor_raises_with_known_names(self):
        sample = Sample(metric="bw", value=1.0, factors={"size": 1024})
        with pytest.raises(ConfigurationError, match="size"):
            sample.factor("stride")

    def test_samples_are_immutable(self):
        sample = Sample(metric="bw", value=1.0)
        with pytest.raises(AttributeError):
            sample.value = 2.0


class TestMeasurementSet:
    def test_record_assigns_sequence_numbers(self):
        ms = MeasurementSet()
        first = ms.record("bw", 1.0)
        second = ms.record("bw", 2.0)
        assert (first.sequence, second.sequence) == (0, 1)

    def test_len_and_iteration(self):
        ms = MeasurementSet()
        for i in range(5):
            ms.record("bw", float(i))
        assert len(ms) == 5
        assert [s.value for s in ms] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_values_filters_by_metric(self):
        ms = MeasurementSet()
        ms.record("bw", 1.0)
        ms.record("lat", 9.0)
        ms.record("bw", 2.0)
        assert ms.values("bw") == [1.0, 2.0]
        assert ms.values() == [1.0, 9.0, 2.0]

    def test_metrics_in_first_appearance_order(self):
        ms = MeasurementSet()
        ms.record("b", 1.0)
        ms.record("a", 1.0)
        ms.record("b", 1.0)
        assert ms.metrics() == ["b", "a"]

    def test_where_matches_all_given_factors(self):
        ms = MeasurementSet()
        ms.record("bw", 1.0, size=1024, stride=1)
        ms.record("bw", 2.0, size=1024, stride=2)
        ms.record("bw", 3.0, size=2048, stride=1)
        subset = ms.where(size=1024, stride=1)
        assert subset.values() == [1.0]

    def test_group_by_preserves_level_order(self):
        ms = MeasurementSet()
        ms.record("bw", 1.0, size=2048)
        ms.record("bw", 2.0, size=1024)
        ms.record("bw", 3.0, size=2048)
        groups = ms.group_by("size")
        assert list(groups) == [2048, 1024]
        assert groups[2048].values() == [1.0, 3.0]

    def test_group_by_missing_factor_goes_to_none(self):
        ms = MeasurementSet()
        ms.record("bw", 1.0)
        groups = ms.group_by("size")
        assert list(groups) == [None]

    def test_sequence_series_preserves_acquisition_order(self):
        """The Figure 5b representation: values against sequence order."""
        ms = MeasurementSet()
        ms.record("bw", 5.0)
        ms.record("bw", 1.0)
        ms.record("bw", 5.0)
        assert ms.sequence_series("bw") == [(0, 5.0), (1, 1.0), (2, 5.0)]

    def test_extend_renumbers_sequences(self):
        a = MeasurementSet()
        a.record("bw", 1.0)
        b = MeasurementSet()
        b.record("bw", 2.0)
        a.extend(b)
        assert a.sequence_series() == [(0, 1.0), (1, 2.0)]

    def test_filter_returns_new_set(self):
        ms = MeasurementSet()
        ms.record("bw", 1.0)
        ms.record("bw", 10.0)
        filtered = ms.filter(lambda s: s.value > 5)
        assert len(filtered) == 1
        assert len(ms) == 2
