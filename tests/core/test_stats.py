"""Tests for repro.core.stats, including property-based mode detection."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.stats import (
    bootstrap_ci,
    compare_replicates,
    confidence_interval,
    detect_modes,
    exponential_fit,
    geometric_mean,
    is_bimodal,
    linear_fit,
    mann_whitney,
    permutation_test,
    speedup_efficiency,
    summarize,
    summarize_replicates,
)
from repro.errors import ConfigurationError


class TestSummarize:
    def test_basic_summary(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == 2.5

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0

    def test_single_value_has_zero_std(self):
        stats = summarize([5.0])
        assert stats.std == 0.0
        assert stats.cv == 0.0

    def test_constant_sample_has_exactly_zero_std(self):
        # Three copies of a float whose triple is not representable:
        # sum/n rounds away from the common value, and the naive
        # two-pass formula reported a spurious nonzero spread.
        value = 492588087.0 * 761894.125
        stats = summarize([value, value, value])
        assert stats.std == 0.0
        assert stats.cv == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_cv_of_zero_mean(self):
        assert summarize([-1.0, 1.0]).cv == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_min_le_median_le_max(self, values):
        stats = summarize(values)
        assert stats.minimum <= stats.median <= stats.maximum


class TestConfidenceInterval:
    def test_interval_contains_mean(self):
        lo, hi = confidence_interval([10.0, 11.0, 9.0, 10.5, 9.5])
        assert lo < 10.0 < hi

    def test_wider_confidence_wider_interval(self):
        data = [10.0, 12.0, 8.0, 11.0, 9.0]
        lo95, hi95 = confidence_interval(data, 0.95)
        lo99, hi99 = confidence_interval(data, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            confidence_interval([1.0, 2.0], confidence=1.5)


class TestDetectModes:
    def test_single_cluster_is_one_mode(self):
        modes = detect_modes([1.0, 1.01, 0.99, 1.02])
        assert len(modes) == 1
        assert modes[0].count == 4

    def test_two_well_separated_modes(self):
        """The Figure 5a pattern: nominal mode + degraded mode ~5x lower."""
        nominal = [1.0 + 0.01 * i for i in range(20)]
        degraded = [0.21 + 0.002 * i for i in range(10)]
        modes = detect_modes(nominal + degraded)
        assert len(modes) == 2
        assert modes[0].center > modes[1].center  # sorted descending
        assert modes[0].count == 20
        assert modes[1].count == 10

    def test_identical_values_single_degenerate_mode(self):
        modes = detect_modes([2.0] * 7)
        assert len(modes) == 1
        assert modes[0].center == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_modes([])

    def test_bad_separation_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_modes([1.0, 2.0], separation=0)

    @given(
        st.lists(st.floats(0.9, 1.1), min_size=3, max_size=30),
        st.lists(st.floats(4.9, 5.1), min_size=3, max_size=30),
    )
    def test_property_two_separated_clusters_found(self, low, high):
        modes = detect_modes(low + high)
        assert len(modes) == 2
        assert modes[0].count == len(high)
        assert modes[1].count == len(low)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=60))
    def test_property_members_partition_the_sample(self, values):
        modes = detect_modes(values)
        recovered = sorted(v for m in modes for v in m.members)
        assert recovered == sorted(values)


class TestIsBimodal:
    def test_unimodal_sample(self):
        assert not is_bimodal([1.0, 1.05, 0.95, 1.02, 0.98])

    def test_bimodal_with_5x_gap(self):
        sample = [1.0, 1.02, 0.98, 1.01] * 5 + [0.21, 0.2, 0.22, 0.19]
        assert is_bimodal(sample, ratio=2.0)

    def test_singleton_outlier_not_a_mode(self):
        assert not is_bimodal([1.0, 1.01, 0.99, 1.02, 0.2])


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        assert fit.predict(10) == pytest.approx(20.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_fit([1, 2], [1])

    def test_degenerate_x_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_fit([1, 1], [1, 2])


class TestExponentialFit:
    def test_exact_exponential(self):
        xs = [2000, 2001, 2002, 2003]
        ys = [100.0 * 1.9 ** (x - 2000) for x in xs]
        fit = exponential_fit(xs, ys)
        assert fit.growth == pytest.approx(1.9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_solve_for_inverts_predict(self):
        xs = [0, 1, 2, 3, 4]
        ys = [2.0**x for x in xs]
        fit = exponential_fit(xs, ys)
        assert fit.solve_for(fit.predict(7.5)) == pytest.approx(7.5)

    def test_nonpositive_y_rejected(self):
        with pytest.raises(ConfigurationError):
            exponential_fit([0, 1], [1.0, 0.0])

    @given(
        st.floats(1.1, 3.0),
        st.floats(1.0, 1000.0),
    )
    def test_property_recovers_growth(self, growth, scale):
        xs = list(range(8))
        ys = [scale * growth**x for x in xs]
        fit = exponential_fit(xs, ys)
        assert math.isclose(fit.growth, growth, rel_tol=1e-6)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])


class TestSpeedupEfficiency:
    def test_ideal_speedup_is_full_efficiency(self):
        assert speedup_efficiency(16.0, 16) == pytest.approx(1.0)

    def test_specfem_style_4core_baseline(self):
        """Figure 3b normalizes against a 4-core run."""
        assert speedup_efficiency(43.2, 192, baseline_cores=4) == pytest.approx(0.9)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            speedup_efficiency(1.0, 0)


class TestEdgeCaseContract:
    """n = 0, n = 1 and constant series: raise vs. degenerate interval
    is an explicit, pinned contract — not an accident of the math."""

    def test_n0_always_raises(self):
        for fn in (summarize, confidence_interval, geometric_mean,
                   bootstrap_ci, summarize_replicates):
            with pytest.raises(ConfigurationError):
                fn([])

    def test_n1_summarize_is_degenerate_not_an_error(self):
        stats = summarize([42.0])
        assert stats.count == 1
        assert stats.mean == stats.median == stats.minimum == stats.maximum == 42.0
        assert stats.std == 0.0 and stats.cv == 0.0

    def test_n1_confidence_interval_collapses_to_the_value(self):
        assert confidence_interval([42.0]) == (42.0, 42.0)

    def test_n1_bootstrap_ci_collapses_to_the_value(self):
        assert bootstrap_ci([42.0], resamples=99) == (42.0, 42.0)

    def test_n1_geometric_mean_is_the_value(self):
        assert geometric_mean([42.0]) == pytest.approx(42.0)

    def test_constant_series_yield_degenerate_intervals(self):
        data = [3.5] * 7
        assert confidence_interval(data) == (3.5, 3.5)
        assert bootstrap_ci(data, resamples=99) == (3.5, 3.5)
        summary = summarize_replicates(data, resamples=99)
        assert summary.ci_low == summary.ci_high == 3.5
        assert summary.cv == 0.0 and not summary.bimodal

    def test_n1_replicate_summary_is_explicitly_degenerate(self):
        summary = summarize_replicates([3.25], resamples=99)
        assert summary.count == 1
        assert (summary.ci_low, summary.ci_high) == (3.25, 3.25)
        assert summary.std == 0.0 and summary.values == (3.25,)

    def test_significance_tests_reject_empty_samples(self):
        with pytest.raises(ConfigurationError):
            mann_whitney([], [1.0])
        with pytest.raises(ConfigurationError):
            permutation_test([1.0], [])

    def test_single_runs_can_never_differ_significantly(self):
        """The paper's §V-A-1 point as an API guarantee: one run per
        side cannot reject the null, whatever the gap."""
        comparison = compare_replicates([1.0], [1000.0], resamples=99)
        assert not comparison.significant

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], confidence=1.0)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], resamples=0)
        with pytest.raises(ConfigurationError):
            permutation_test([1.0], [2.0], resamples=0)
        with pytest.raises(ConfigurationError):
            compare_replicates([1.0], [2.0], alpha=0.0)


class TestSignificanceBehavior:
    def test_clearly_separated_samples_differ(self):
        a = [10.0, 10.1, 9.9, 10.2, 9.8]
        b = [20.0, 20.1, 19.9, 20.2, 19.8]
        comparison = compare_replicates(a, b, resamples=199)
        assert comparison.significant
        assert comparison.relative_change == pytest.approx(1.0, rel=0.05)

    def test_within_noise_samples_do_not_differ(self):
        a = [10.0, 10.1, 9.9, 10.2, 9.8]
        b = [10.05, 9.95, 10.15, 9.85, 10.1]
        assert not compare_replicates(a, b, resamples=199).significant

    def test_mann_whitney_handles_heavy_ties(self):
        result = mann_whitney([1.0, 1.0, 1.0, 2.0], [1.0, 1.0, 2.0, 2.0])
        assert 0.0 < result.p_value <= 1.0

    def test_identical_constant_samples_have_p_one(self):
        result = mann_whitney([5.0] * 4, [5.0] * 4)
        assert result.p_value == pytest.approx(1.0)
