"""Tests for repro.core.sweep and repro.core.report."""

import pytest

from repro.core.report import Table, render_grouped_series, render_series, render_table
from repro.core.sweep import ParameterSweep
from repro.errors import ConfigurationError


class TestParameterSweep:
    def test_sweep_runs_all_levels(self):
        sweep = ParameterSweep({"n": [1, 2, 4]}, replicates=2, seed=3)
        results = sweep.run(lambda f: float(f["n"]), metric="v")
        assert len(results) == 6
        assert sorted(set(results.values("v"))) == [1.0, 2.0, 4.0]

    def test_empty_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep({})

    def test_curve_aggregates_replicates_with_mean(self):
        sweep = ParameterSweep({"n": [1, 2]}, replicates=3, seed=1)
        calls = {"count": 0}

        def measure(f):
            calls["count"] += 1
            return f["n"] + (calls["count"] % 3) * 0.0  # deterministic
        results = sweep.run(measure)
        curve = ParameterSweep.curve(results, "n")
        assert curve == [(1, 1.0), (2, 2.0)]

    def test_curve_custom_aggregate(self):
        sweep = ParameterSweep({"n": [1]}, replicates=3, seed=1)
        values = iter([1.0, 5.0, 3.0])
        results = sweep.run(lambda f: next(values))
        curve = ParameterSweep.curve(results, "n", aggregate=max)
        assert curve == [(1, 5.0)]

    def test_curve_sorted_by_x(self):
        sweep = ParameterSweep({"n": [4, 1, 2]}, seed=9)
        results = sweep.run(lambda f: float(f["n"]))
        xs = [x for x, _ in ParameterSweep.curve(results, "n")]
        assert xs == sorted(xs)


class TestRenderTable:
    def test_header_and_rows_aligned(self):
        text = render_table("T", ["name", "v"], [["LINPACK", 620.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "LINPACK" in lines[4]

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table("T", ["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = render_table("T", ["v"], [[24000.0], [38.7], [0.25]])
        assert "24,000" in text
        assert "38.7" in text
        assert "0.25" in text

    def test_table_add_row_validates(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ConfigurationError):
            table.add_row(1)
        assert "T" in table.render()


class TestRenderSeries:
    def test_series_lists_points(self):
        text = render_series("S", [(1, 10.0), (2, 20.0)], x_label="n", y_label="speed")
        assert "S" in text
        assert "n" in text and "speed" in text
        assert text.count("#") > 0

    def test_bars_scale_with_magnitude(self):
        text = render_series("S", [(1, 1.0), (2, 2.0)], width=10)
        lines = text.splitlines()
        assert lines[-1].count("#") == 2 * lines[-2].count("#")

    def test_empty_series(self):
        assert "(no data)" in render_series("S", [])

    def test_narrow_width_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("S", [(1, 1.0)], width=2)

    def test_grouped_series_contains_all_groups(self):
        text = render_grouped_series(
            "G", {"a": [(1, 1.0)], "b": [(1, 2.0)]}
        )
        assert "[a]" in text and "[b]" in text
