"""CLI-level engine behavior: cache reuse and parallel determinism."""

import os

from repro.engine import load_manifests
from repro.cli import main


def _cache_root():
    return os.environ["REPRO_CACHE_DIR"]


class TestWarmRerun:
    def test_fig7_warm_rerun_evaluates_nothing(self, capsys):
        assert main(["fig7"]) == 0
        cold = capsys.readouterr()
        assert main(["fig7"]) == 0
        warm = capsys.readouterr()

        # identical artefact output, cold or warm
        assert warm.out == cold.out
        # the saved manifests record a full-hit, zero-evaluation rerun
        manifests = load_manifests(os.path.join(_cache_root(), "manifests"))
        assert len(manifests) == 2                 # one per machine
        for manifest in manifests:
            assert manifest["misses"] == 0
            assert manifest["hits"] == len(manifest["points"]) == 12
        assert "misses 0" in warm.err

    def test_x5_whole_curve_is_cached(self, capsys):
        assert main(["x5"]) == 0
        first = capsys.readouterr()
        assert "misses 1" in first.err
        assert main(["x5"]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "hits 1 | misses 0" in second.err

    def test_no_cache_flag_disables_memoization(self, capsys):
        assert main(["fig7", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["fig7", "--no-cache"]) == 0
        rerun = capsys.readouterr()
        assert "misses 12" in rerun.err


class TestParallelDeterminism:
    def test_fig3_parallel_stdout_matches_serial(self, capsys):
        assert main(["fig3", "--quick", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig3", "--quick", "--no-cache", "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_fig7_parallel_stdout_matches_serial(self, capsys):
        assert main(["fig7", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig7", "--no-cache", "--jobs", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "sweet spot: [4, 5, 6, 7]" in parallel
