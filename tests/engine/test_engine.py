"""ExperimentEngine: fan-out, determinism, memoization, manifests."""

from pathlib import Path

import pytest

from repro.engine import (
    ExperimentEngine,
    ResultCache,
    SweepSpec,
    load_manifests,
)
from repro.errors import EngineError


def _square(params):
    """Picklable worker for process-pool runs."""
    return {"y": params["x"] ** 2}


def _square_and_mark(params):
    """Worker that leaves one marker file per actual execution."""
    mark_dir = Path(params["mark_dir"])
    mark_dir.mkdir(parents=True, exist_ok=True)
    (mark_dir / f"{params['x']}.ran").touch()
    return {"y": params["x"] ** 2}


def _spec(n=6, **kwargs):
    return SweepSpec(
        "squares", _square, [{"x": x} for x in range(n)],
        key={"experiment": "squares"}, **kwargs,
    )


class TestSpec:
    def test_rejects_empty_points(self):
        with pytest.raises(EngineError, match="no points"):
            SweepSpec("empty", _square, [])

    def test_rejects_empty_name(self):
        with pytest.raises(EngineError, match="non-empty name"):
            SweepSpec("", _square, [{"x": 1}])

    def test_jobs_must_be_positive(self):
        with pytest.raises(EngineError, match="jobs"):
            ExperimentEngine(jobs=0)


class TestDeterminism:
    def test_parallel_matches_serial_exactly(self, tmp_path):
        serial = ExperimentEngine(cache=ResultCache(tmp_path / "a"), jobs=1)
        parallel = ExperimentEngine(cache=ResultCache(tmp_path / "b"), jobs=4)
        run_s = serial.run(_spec())
        run_p = parallel.run(_spec())
        assert run_s.values == run_p.values
        assert run_p.manifest.executor == "process"
        # the deterministic manifest serialization is byte-identical
        assert run_s.manifest.to_json(deterministic=True) == \
            run_p.manifest.to_json(deterministic=True)

    def test_results_align_with_points_in_submission_order(self, tmp_path):
        engine = ExperimentEngine(jobs=4)
        run = engine.run(_spec(n=12))
        assert [v["y"] for v in run.values] == [x ** 2 for x in range(12)]
        assert [p["x"] for p, _ in run] == list(range(12))

    def test_closure_worker_falls_back_to_threads(self):
        offset = 10
        spec = SweepSpec(
            "closure", lambda p: {"y": p["x"] + offset},
            [{"x": x} for x in range(4)],
        )
        run = ExperimentEngine(jobs=4).run(spec)
        assert run.manifest.executor == "thread"
        assert [v["y"] for v in run.values] == [10, 11, 12, 13]

    def test_serial_only_spec_never_pools(self):
        run = ExperimentEngine(jobs=8).run(_spec(serial_only=True))
        assert run.manifest.executor == "serial"


class TestMemoization:
    def test_warm_rerun_recomputes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marks = tmp_path / "marks"
        spec = SweepSpec(
            "marked", _square_and_mark,
            [{"x": x, "mark_dir": str(marks)} for x in range(5)],
            key={"experiment": "marked"},
        )
        cold = ExperimentEngine(cache=cache, jobs=1)
        run_cold = cold.run(spec)
        assert (run_cold.manifest.hits, run_cold.manifest.misses) == (0, 5)
        assert len(list(marks.glob("*.ran"))) == 5

        for mark in marks.glob("*.ran"):
            mark.unlink()
        warm = ExperimentEngine(cache=cache, jobs=4)
        run_warm = warm.run(spec)
        assert (run_warm.manifest.hits, run_warm.manifest.misses) == (5, 0)
        assert list(marks.glob("*.ran")) == []       # zero recompute
        assert run_warm.values == run_cold.values
        assert run_warm.manifest.executor == "serial"  # nothing pending

    def test_extending_a_sweep_computes_only_new_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ExperimentEngine(cache=cache).run(_spec(n=4))
        run = ExperimentEngine(cache=cache).run(_spec(n=6))
        assert (run.manifest.hits, run.manifest.misses) == (4, 2)

    def test_sweep_name_does_not_affect_cache_identity(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = SweepSpec("one-label", _square, [{"x": 2}], key={"k": 1})
        second = SweepSpec("another-label", _square, [{"x": 2}], key={"k": 1})
        ExperimentEngine(cache=cache).run(first)
        run = ExperimentEngine(cache=cache).run(second)
        assert run.manifest.hits == 1

    def test_key_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ExperimentEngine(cache=cache).run(
            SweepSpec("s", _square, [{"x": 2}], key={"seed": 1})
        )
        run = ExperimentEngine(cache=cache).run(
            SweepSpec("s", _square, [{"x": 2}], key={"seed": 2})
        )
        assert run.manifest.misses == 1

    def test_run_cached_memoizes_whole_computations(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return {"curve": [1, 2, 3]}

        engine = ExperimentEngine(cache=cache)
        assert engine.run_cached("curve", {"seed": 2}, compute) == \
            {"curve": [1, 2, 3]}
        assert engine.run_cached("curve", {"seed": 2}, compute) == \
            {"curve": [1, 2, 3]}
        assert calls["n"] == 1
        assert (engine.total_hits, engine.total_misses) == (1, 1)


class TestManifests:
    def test_summary_reports_counts(self):
        engine = ExperimentEngine()
        run = engine.run(_spec(n=3))
        assert run.manifest.summary() == \
            "[engine] squares: 3 points | hits 0 | misses 3 | jobs 1"

    def test_manifest_saved_and_loadable(self, tmp_path):
        engine = ExperimentEngine(manifest_dir=tmp_path / "manifests")
        engine.run(_spec(n=3))
        saved = load_manifests(tmp_path / "manifests")
        assert len(saved) == 1
        assert saved[0]["sweep"] == "squares"
        assert saved[0]["misses"] == 3
        assert len(saved[0]["points"]) == 3

    def test_rerun_overwrites_instead_of_accumulating(self, tmp_path):
        engine = ExperimentEngine(manifest_dir=tmp_path / "manifests")
        engine.run(_spec(n=3))
        engine.run(_spec(n=3))
        assert len(load_manifests(tmp_path / "manifests")) == 1

    def test_echo_prints_summary_line(self):
        lines = []
        engine = ExperimentEngine(echo=lines.append)
        engine.run(_spec(n=2))
        assert lines == [
            "[engine] squares: 2 points | hits 0 | misses 2 | jobs 1"
        ]

    def test_wall_times_recorded_for_computed_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache)
        run = engine.run(_spec(n=2))
        assert all(p.wall_seconds >= 0.0 for p in run.manifest.points)
        warm = ExperimentEngine(cache=cache).run(_spec(n=2))
        assert all(p.wall_seconds == 0.0 for p in warm.manifest.points)
        assert warm.manifest.busy_seconds == 0.0


class TestSearchDiskCache:
    def test_second_search_skips_the_objective(self, tmp_path):
        from repro.autotune import ExhaustiveSearch
        from repro.autotune.space import ParameterSpace

        cache = ResultCache(tmp_path / "cache")
        space = ParameterSpace({"x": range(5)})
        calls = {"n": 0}

        def objective(point):
            calls["n"] += 1
            return float((point["x"] - 2) ** 2)

        first = ExhaustiveSearch()
        first.attach_cache(cache, {"objective": "parabola"})
        result_a = first.minimize(objective, space)
        assert calls["n"] == 5

        second = ExhaustiveSearch()
        second.attach_cache(cache, {"objective": "parabola"})
        result_b = second.minimize(objective, space)
        assert calls["n"] == 5                     # zero new objective calls
        assert result_b.best_point == result_a.best_point
        assert result_b.best_value == result_a.best_value
        # disk hits still count as evaluations seen by this search
        assert result_b.evaluations == 5

    def test_different_search_key_does_not_share_values(self, tmp_path):
        from repro.autotune import ExhaustiveSearch
        from repro.autotune.space import ParameterSpace

        cache = ResultCache(tmp_path / "cache")
        space = ParameterSpace({"x": range(3)})
        calls = {"n": 0}

        def objective(point):
            calls["n"] += 1
            return float(point["x"])

        for key in ({"seed": 1}, {"seed": 2}):
            strategy = ExhaustiveSearch()
            strategy.attach_cache(cache, key)
            strategy.minimize(objective, space)
        assert calls["n"] == 6
