"""Canonical hashing for cache keys."""

import pytest

from repro.engine import canonical_json, canonicalize, content_key
from repro.errors import EngineError


class TestCanonicalize:
    def test_scalars_pass_through(self):
        for value in (None, True, False, 0, -3, "x", 1.5):
            assert canonicalize(value) == value

    def test_tuples_normalize_to_lists(self):
        assert canonicalize((1, 2, (3, 4))) == [1, 2, [3, 4]]

    def test_non_finite_floats_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(EngineError):
                canonicalize({"x": bad})

    def test_non_string_mapping_keys_rejected(self):
        with pytest.raises(EngineError, match="must be strings"):
            canonicalize({1: "x"})

    def test_objects_rejected(self):
        with pytest.raises(EngineError, match="no stable content"):
            canonicalize({"machine": object()})


class TestContentKey:
    def test_dict_order_is_irrelevant(self):
        a = {"cores": 4, "seed": 7, "nested": {"b": 1, "a": 2}}
        b = {"nested": {"a": 2, "b": 1}, "seed": 7, "cores": 4}
        assert content_key(a) == content_key(b)

    def test_tuple_and_list_hash_identically(self):
        assert content_key({"shape": (32, 32, 32)}) == \
            content_key({"shape": [32, 32, 32]})

    def test_any_change_changes_the_key(self):
        base = {"sweep": {"seed": 7}, "point": {"cores": 4}}
        assert content_key(base) != content_key(
            {"sweep": {"seed": 8}, "point": {"cores": 4}}
        )
        assert content_key(base) != content_key(
            {"sweep": {"seed": 7}, "point": {"cores": 8}}
        )

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1.5, "x"]}) == \
            '{"a":[1.5,"x"],"b":1}'
