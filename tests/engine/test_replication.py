"""Multi-seed replication: run_replicated and the replicated sweeps.

The §V-A-1 contract: replication is first-class in the engine — the
full points x seeds grid is one sweep, each (point, seed) pair its own
cache entry shared with single-seed runs — and byte-deterministic
across job counts.
"""

from pathlib import Path

import pytest

from repro.engine import ExperimentEngine, ResultCache, SweepSpec
from repro.errors import EngineError


def _noisy(params):
    """Picklable worker whose value depends on point AND seed."""
    return {"y": params["x"] * 100 + params["seed"]}


def _noisy_and_mark(params):
    mark_dir = Path(params["mark_dir"])
    mark_dir.mkdir(parents=True, exist_ok=True)
    (mark_dir / f"{params['x']}-{params['seed']}.ran").touch()
    return {"y": params["x"] * 100 + params["seed"]}


def _spec(n=3, worker=_noisy, **extra):
    return SweepSpec(
        "noisy", worker, [dict({"x": x}, **extra) for x in range(n)],
        key={"experiment": "noisy"},
    )


class TestRunReplicated:
    def test_groups_values_per_point_in_seed_order(self):
        engine = ExperimentEngine(cache=None)
        run = engine.run_replicated(_spec(), [7, 8, 9])
        assert run.seeds == (7, 8, 9)
        assert run.values == (
            ({"y": 7}, {"y": 8}, {"y": 9}),
            ({"y": 107}, {"y": 108}, {"y": 109}),
            ({"y": 207}, {"y": 208}, {"y": 209}),
        )
        assert [point["x"] for point in run.base_points] == [0, 1, 2]

    def test_iteration_pairs_points_with_their_replicates(self):
        engine = ExperimentEngine(cache=None)
        run = engine.run_replicated(_spec(n=2), [1, 2])
        pairs = list(run)
        assert pairs[0][0] == {"x": 0}
        assert pairs[0][1] == ({"y": 1}, {"y": 2})
        assert pairs[1][0] == {"x": 1}
        assert pairs[1][1] == ({"y": 101}, {"y": 102})

    def test_jobs1_equals_jobs4(self):
        serial = ExperimentEngine(cache=None, jobs=1)
        parallel = ExperimentEngine(cache=None, jobs=4)
        seeds = [3, 5, 11]
        assert (
            serial.run_replicated(_spec(n=4), seeds).values
            == parallel.run_replicated(_spec(n=4), seeds).values
        )

    def test_empty_seeds_rejected(self):
        engine = ExperimentEngine(cache=None)
        with pytest.raises(EngineError):
            engine.run_replicated(_spec(), [])

    def test_duplicate_seeds_rejected(self):
        engine = ExperimentEngine(cache=None)
        with pytest.raises(EngineError):
            engine.run_replicated(_spec(), [1, 2, 1])

    def test_points_already_carrying_seed_rejected(self):
        engine = ExperimentEngine(cache=None)
        spec = SweepSpec(
            "preseeded", _noisy, [{"x": 0, "seed": 9}],
            key={"experiment": "preseeded"},
        )
        with pytest.raises(EngineError):
            engine.run_replicated(spec, [1, 2])


class TestReplicationCaching:
    def test_warm_rerun_recomputes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marks = tmp_path / "marks"
        spec = _spec(worker=_noisy_and_mark, mark_dir=str(marks))
        cold = ExperimentEngine(cache=cache).run_replicated(spec, [1, 2])
        ran_cold = len(list(marks.glob("*.ran")))
        warm = ExperimentEngine(cache=cache).run_replicated(spec, [1, 2])
        assert warm.values == cold.values
        assert len(list(marks.glob("*.ran"))) == ran_cold == 6

    def test_extending_seeds_computes_only_new_replicates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marks = tmp_path / "marks"
        spec = _spec(worker=_noisy_and_mark, mark_dir=str(marks))
        ExperimentEngine(cache=cache).run_replicated(spec, [1, 2, 3])
        assert len(list(marks.glob("*.ran"))) == 9
        ExperimentEngine(cache=cache).run_replicated(spec, [1, 2, 3, 4, 5])
        ran = sorted(p.name for p in marks.glob("*.ran"))
        assert len(ran) == 15  # only the 2 new seeds x 3 points ran

    def test_replicates_share_cache_with_single_seed_sweeps(self, tmp_path):
        """A replicated run warms the cache for the equivalent
        single-seed sweep (seed lives in the point, not the key)."""
        cache = ResultCache(tmp_path / "cache")
        marks = tmp_path / "marks"
        spec = _spec(worker=_noisy_and_mark, mark_dir=str(marks))
        ExperimentEngine(cache=cache).run_replicated(spec, [1, 2])
        ran_before = len(list(marks.glob("*.ran")))
        single = SweepSpec(
            "noisy",
            _noisy_and_mark,
            [{"x": x, "seed": 1, "mark_dir": str(marks)} for x in range(3)],
            key={"experiment": "noisy"},
        )
        run = ExperimentEngine(cache=cache).run(single)
        assert [value["y"] for value in run.values] == [1, 101, 201]
        assert len(list(marks.glob("*.ran"))) == ran_before
        assert run.manifest.hits == 3 and run.manifest.misses == 0


class TestReplicatedSweeps:
    def test_seed_series_shape_and_validation(self):
        from repro.engine.sweeps import seed_series

        assert seed_series(7, 3) == [7, 8, 9]
        with pytest.raises(EngineError):
            seed_series(7, 0)

    def test_replicated_speedups_normalize_per_seed(self, tmp_path):
        from repro.engine.sweeps import (
            run_replicated_speedups, run_replicated_times,
        )

        engine = ExperimentEngine(cache=ResultCache(tmp_path / "cache"))
        seeds = [7, 8]
        times = run_replicated_times(
            engine, "linpack", counts=[1, 4], num_nodes=96, seeds=seeds,
        )
        speedups = run_replicated_speedups(
            engine, "linpack", counts=[1, 4], num_nodes=96, seeds=seeds,
        )
        for idx in range(len(seeds)):
            assert speedups[4][idx] == pytest.approx(
                times[1][idx] / times[4][idx]
            )
        assert speedups[1] == pytest.approx((1.0, 1.0))
