"""ExecutionPolicy semantics and manifest-scan reporting."""

import json

import pytest

from repro.engine import ExecutionPolicy, load_manifests, scan_manifests
from repro.engine.manifest import PointRecord, RunManifest
from repro.errors import ConfigurationError, EngineError
from repro.faults.detect import RetryPolicy


class TestPolicyValidation:
    def test_default_policy_is_not_fault_tolerant(self):
        policy = ExecutionPolicy()
        assert not policy.fault_tolerant
        assert policy.max_attempts == 1
        assert policy.retry_delay_s(1, "token") == 0.0

    def test_timeout_alone_enables_fault_tolerance(self):
        assert ExecutionPolicy(point_timeout_s=5.0).fault_tolerant

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(point_timeout_s=0.0)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(jitter=1.5)

    def test_max_attempts_counts_first_run_plus_retries(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, max_retries=4)
        )
        assert policy.max_attempts == 5


class TestBackoffSchedule:
    def test_delays_follow_the_retry_policy_shape(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, backoff=2.0, max_retries=5),
            jitter=0.0,
        )
        delays = [policy.retry_delay_s(a, "k") for a in (1, 2, 3)]
        assert delays == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_stays_within_band_and_is_deterministic(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, backoff=2.0, max_retries=5),
            jitter=0.25, seed=3,
        )
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.retry_delay_s(attempt, "point-key")
            assert base * 0.75 <= delay <= base * 1.25
            assert delay == policy.retry_delay_s(attempt, "point-key")

    def test_different_points_get_different_jitter(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, max_retries=3), jitter=0.5
        )
        assert policy.retry_delay_s(1, "aa") != policy.retry_delay_s(1, "bb")

    def test_seed_changes_the_schedule(self):
        make = lambda seed: ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, max_retries=3),
            jitter=0.5, seed=seed,
        )
        assert make(0).retry_delay_s(1, "k") != make(1).retry_delay_s(1, "k")

    def test_attempts_are_one_based(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, max_retries=3)
        )
        with pytest.raises(ConfigurationError):
            policy.retry_delay_s(0, "k")


class TestManifestScanReporting:
    def seed_dir(self, tmp_path):
        manifest = RunManifest(
            sweep="s", key={}, jobs=1, executor="serial", elapsed_seconds=0.0,
            points=[PointRecord(
                index=0, params={}, key="k", cache_hit=False, wall_seconds=0.0,
            )],
        )
        manifest.save(tmp_path)
        (tmp_path / "broken.json").write_text("{ not json", encoding="utf-8")
        return tmp_path

    def test_scan_pairs_each_skip_with_its_reason(self, tmp_path):
        manifests, skipped = scan_manifests(self.seed_dir(tmp_path))
        assert len(manifests) == 1
        ((path, reason),) = skipped
        assert path.name == "broken.json"
        assert reason

    def test_load_reports_skips_on_stderr(self, tmp_path, capsys):
        manifests = load_manifests(self.seed_dir(tmp_path))
        assert len(manifests) == 1
        err = capsys.readouterr().err
        assert "skipping unreadable manifest" in err
        assert "broken.json" in err

    def test_load_can_raise_instead(self, tmp_path):
        with pytest.raises(EngineError, match="broken.json"):
            load_manifests(self.seed_dir(tmp_path), on_error="raise")

    def test_load_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(EngineError):
            load_manifests(tmp_path, on_error="ignore")

    def test_clean_directory_reports_nothing(self, tmp_path, capsys):
        self.seed_dir(tmp_path)
        (tmp_path / "broken.json").unlink()
        assert len(load_manifests(tmp_path)) == 1
        assert capsys.readouterr().err == ""

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        manifests, skipped = scan_manifests(tmp_path / "absent")
        assert manifests == [] and skipped == []


class TestManifestFailureCounters:
    def test_failed_and_retried_properties(self):
        manifest = RunManifest(
            sweep="s", key={}, jobs=1, executor="serial", elapsed_seconds=0.0,
            points=[
                PointRecord(index=0, params={}, key="a", cache_hit=False,
                            wall_seconds=0.0, attempts=3,
                            error={"type": "WorkerCrash", "message": "x"}),
                PointRecord(index=1, params={}, key="b", cache_hit=False,
                            wall_seconds=0.0, attempts=2),
                PointRecord(index=2, params={}, key="c", cache_hit=True,
                            wall_seconds=0.0, attempts=0),
            ],
        )
        assert manifest.failed == 1
        assert manifest.retried == 2

    def test_deterministic_form_drops_operational_fields(self):
        record = PointRecord(
            index=0, params={"x": 1}, key="k", cache_hit=False,
            wall_seconds=1.0, attempts=2, resumed=True,
            error={"type": "PointTimeout", "message": "m"},
            transient_errors=({"type": "WorkerCrash", "message": "w"},),
        )
        deterministic = record.to_dict(deterministic=True)
        assert set(deterministic) == {"index", "params", "key", "cache_hit"}
        full = record.to_dict()
        assert full["attempts"] == 2 and full["resumed"]
        assert full["error"]["type"] == "PointTimeout"
        assert json.dumps(full)  # JSON-serializable as saved
