"""ExecutionPolicy semantics and manifest-scan reporting."""

import json

import pytest

from repro.engine import ExecutionPolicy, load_manifests, scan_manifests
from repro.engine.manifest import PointRecord, RunManifest
from repro.errors import ConfigurationError, EngineError
from repro.faults.detect import RetryPolicy


class TestPolicyValidation:
    def test_default_policy_is_not_fault_tolerant(self):
        policy = ExecutionPolicy()
        assert not policy.fault_tolerant
        assert policy.max_attempts == 1
        assert policy.retry_delay_s(1, "token") == 0.0

    def test_timeout_alone_enables_fault_tolerance(self):
        assert ExecutionPolicy(point_timeout_s=5.0).fault_tolerant

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(point_timeout_s=0.0)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(jitter=1.5)

    def test_max_attempts_counts_first_run_plus_retries(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, max_retries=4)
        )
        assert policy.max_attempts == 5

    def test_rejects_zero_deadline(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(deadline_s=0.0)

    def test_rejects_negative_deadline(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(deadline_s=-3.0)

    def test_deadline_alone_enables_fault_tolerance(self):
        assert ExecutionPolicy(deadline_s=10.0).fault_tolerant


def _always_fails(params):
    raise ValueError(f"boom on {params['x']}")


def _sleepy_worker(params):
    import time as _time

    _time.sleep(5.0)
    return {"x": params["x"]}


class TestRunDeadline:
    """The whole-run budget truncating a retry schedule."""

    def _run(self, policy):
        from repro.engine import ExperimentEngine, SweepSpec
        from repro.errors import RetryExhausted

        engine = ExperimentEngine(policy=policy)
        spec = SweepSpec(
            "deadline/truncated", _always_fails, [{"x": 1}],
            key={"experiment": "deadline-truncated"},
        )
        with pytest.raises(RetryExhausted):
            engine.run(spec)
        return engine.manifests[-1].points[0]

    def test_truncated_schedule_records_retry_exhausted(self):
        # The backoff (10s base) can never fit inside the 5s run
        # deadline, so the very first failure is final — and what the
        # point ran out of is its *budget*: the manifest records
        # RetryExhausted, with the incidental error kept as the cause.
        point = self._run(ExecutionPolicy(
            retry=RetryPolicy(timeout_s=10.0, max_retries=5),
            jitter=0.0,
            deadline_s=5.0,
        ))
        assert point.error["type"] == "RetryExhausted"
        assert point.error["type"] != "ValueError"
        assert "truncated by the 5s run deadline" in point.error["message"]
        assert "ValueError: boom on 1" in point.error["message"]
        # The attempt that actually ran is preserved as transient.
        assert [t["type"] for t in point.transient_errors] == ["ValueError"]
        assert point.attempts == 1

    def test_timeout_at_deadline_records_retry_exhausted(self, tmp_path):
        """Process mode: a point that times out when the run deadline
        cannot fit another attempt must record RetryExhausted (the
        budget ran out), not a bare PointTimeout."""
        from repro.engine import ExperimentEngine, SweepSpec
        from repro.errors import RetryExhausted

        engine = ExperimentEngine(
            jobs=2,
            policy=ExecutionPolicy(
                retry=RetryPolicy(timeout_s=10.0, max_retries=3),
                point_timeout_s=0.05,
                jitter=0.0,
                deadline_s=5.0,
            ),
        )
        spec = SweepSpec(
            "deadline/timeout", _sleepy_worker,
            [{"x": 1}, {"x": 2}],
            key={"experiment": "deadline-timeout"},
        )
        with pytest.raises(RetryExhausted):
            engine.run(spec)
        errors = [p.error for p in engine.manifests[-1].points if p.error]
        assert errors, "at least one point must have failed"
        for error in errors:
            assert error["type"] == "RetryExhausted"
            assert "PointTimeout" in error["message"]

    def test_plain_budget_exhaustion_keeps_the_final_error_type(self):
        # Without a deadline the historical contract holds: the final
        # record carries the last error's own type.
        point = self._run(ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.001, max_retries=1),
            jitter=0.0,
        ))
        assert point.error["type"] == "ValueError"
        assert point.attempts == 2


class TestBackoffSchedule:
    def test_delays_follow_the_retry_policy_shape(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, backoff=2.0, max_retries=5),
            jitter=0.0,
        )
        delays = [policy.retry_delay_s(a, "k") for a in (1, 2, 3)]
        assert delays == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_stays_within_band_and_is_deterministic(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, backoff=2.0, max_retries=5),
            jitter=0.25, seed=3,
        )
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.retry_delay_s(attempt, "point-key")
            assert base * 0.75 <= delay <= base * 1.25
            assert delay == policy.retry_delay_s(attempt, "point-key")

    def test_different_points_get_different_jitter(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, max_retries=3), jitter=0.5
        )
        assert policy.retry_delay_s(1, "aa") != policy.retry_delay_s(1, "bb")

    def test_seed_changes_the_schedule(self):
        make = lambda seed: ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, max_retries=3),
            jitter=0.5, seed=seed,
        )
        assert make(0).retry_delay_s(1, "k") != make(1).retry_delay_s(1, "k")

    def test_attempts_are_one_based(self):
        policy = ExecutionPolicy(
            retry=RetryPolicy(timeout_s=0.1, max_retries=3)
        )
        with pytest.raises(ConfigurationError):
            policy.retry_delay_s(0, "k")


class TestManifestScanReporting:
    def seed_dir(self, tmp_path):
        manifest = RunManifest(
            sweep="s", key={}, jobs=1, executor="serial", elapsed_seconds=0.0,
            points=[PointRecord(
                index=0, params={}, key="k", cache_hit=False, wall_seconds=0.0,
            )],
        )
        manifest.save(tmp_path)
        (tmp_path / "broken.json").write_text("{ not json", encoding="utf-8")
        return tmp_path

    def test_scan_pairs_each_skip_with_its_reason(self, tmp_path):
        manifests, skipped = scan_manifests(self.seed_dir(tmp_path))
        assert len(manifests) == 1
        ((path, reason),) = skipped
        assert path.name == "broken.json"
        assert reason

    def test_load_reports_skips_on_stderr(self, tmp_path, capsys):
        manifests = load_manifests(self.seed_dir(tmp_path))
        assert len(manifests) == 1
        err = capsys.readouterr().err
        assert "skipping unreadable manifest" in err
        assert "broken.json" in err

    def test_load_can_raise_instead(self, tmp_path):
        with pytest.raises(EngineError, match="broken.json"):
            load_manifests(self.seed_dir(tmp_path), on_error="raise")

    def test_load_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(EngineError):
            load_manifests(tmp_path, on_error="ignore")

    def test_clean_directory_reports_nothing(self, tmp_path, capsys):
        self.seed_dir(tmp_path)
        (tmp_path / "broken.json").unlink()
        assert len(load_manifests(tmp_path)) == 1
        assert capsys.readouterr().err == ""

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        manifests, skipped = scan_manifests(tmp_path / "absent")
        assert manifests == [] and skipped == []


class TestManifestFailureCounters:
    def test_failed_and_retried_properties(self):
        manifest = RunManifest(
            sweep="s", key={}, jobs=1, executor="serial", elapsed_seconds=0.0,
            points=[
                PointRecord(index=0, params={}, key="a", cache_hit=False,
                            wall_seconds=0.0, attempts=3,
                            error={"type": "WorkerCrash", "message": "x"}),
                PointRecord(index=1, params={}, key="b", cache_hit=False,
                            wall_seconds=0.0, attempts=2),
                PointRecord(index=2, params={}, key="c", cache_hit=True,
                            wall_seconds=0.0, attempts=0),
            ],
        )
        assert manifest.failed == 1
        assert manifest.retried == 2

    def test_deterministic_form_drops_operational_fields(self):
        record = PointRecord(
            index=0, params={"x": 1}, key="k", cache_hit=False,
            wall_seconds=1.0, attempts=2, resumed=True,
            error={"type": "PointTimeout", "message": "m"},
            transient_errors=({"type": "WorkerCrash", "message": "w"},),
        )
        deterministic = record.to_dict(deterministic=True)
        assert set(deterministic) == {"index", "params", "key", "cache_hit"}
        full = record.to_dict()
        assert full["attempts"] == 2 and full["resumed"]
        assert full["error"]["type"] == "PointTimeout"
        assert json.dumps(full)  # JSON-serializable as saved
