"""Content-addressed on-disk result cache."""

import json

import pytest

from repro.engine import CACHE_DIR_ENV, ResultCache, content_key, default_cache_root
from repro.errors import EngineError


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundtrip:
    def test_put_then_get(self, cache):
        key = {"sweep": {"seed": 7}, "point": {"cores": 4}}
        cache.put(key, {"value": {"elapsed_s": 12.5}})
        assert cache.get(key) == {"value": {"elapsed_s": 12.5}}

    def test_get_counts_hits_and_misses(self, cache):
        key = {"point": 1}
        assert cache.get(key) is None
        cache.put(key, {"value": 1})
        assert cache.get(key) == {"value": 1}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_equivalent_keys_share_one_entry(self, cache):
        cache.put({"a": 1, "b": (2, 3)}, {"value": "x"})
        assert cache.get({"b": [2, 3], "a": 1}) == {"value": "x"}
        assert len(cache) == 1

    def test_entries_shard_by_key_prefix(self, cache):
        key = {"point": 42}
        cache.put(key, {"value": 0})
        digest = content_key(key)
        assert (cache.root / digest[:2] / f"{digest}.json").exists()


class TestRobustness:
    def test_corrupt_entry_is_a_miss_and_heals(self, cache):
        key = {"point": 3}
        digest = cache.put(key, {"value": 9})
        path = cache.root / digest[:2] / f"{digest}.json"
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(key) is None
        cache.put(key, {"value": 9})
        assert cache.get(key) == {"value": 9}

    def test_unserializable_payload_raises(self, cache):
        with pytest.raises(EngineError, match="not JSON-serializable"):
            cache.put({"point": 1}, {"value": object()})

    def test_no_temp_files_left_behind(self, cache):
        for i in range(5):
            cache.put({"point": i}, {"value": i})
        leftovers = list(cache.root.rglob(".tmp-*"))
        assert leftovers == []

    def test_entry_records_its_own_key(self, cache):
        key = {"sweep": {"app": "linpack"}, "point": {"cores": 8}}
        digest = cache.put(key, {"value": 1.0})
        entry = json.loads(
            (cache.root / digest[:2] / f"{digest}.json").read_text()
        )
        assert entry["key"] == key

    def test_failed_write_leaves_no_temp_file(self, cache, monkeypatch):
        """Regression: a non-OSError mid-write used to leak the temp.

        The atomic-rename dance only cleaned up on ``OSError``; any
        other failure (a surprise from the filesystem layer, an
        interrupt between write and rename) stranded a ``.tmp-*`` file
        in the shard forever.
        """
        import os as os_module

        def exploding_replace(src, dst):
            raise RuntimeError("injected failure between write and rename")

        monkeypatch.setattr(os_module, "replace", exploding_replace)
        with pytest.raises(RuntimeError, match="injected failure"):
            cache.put({"point": 1}, {"value": 1})
        monkeypatch.undo()
        assert list(cache.root.rglob(".tmp-*")) == []
        # The failed put stored nothing, and the cache still works.
        assert cache.get({"point": 1}) is None
        cache.put({"point": 1}, {"value": 1})
        assert cache.get({"point": 1}) == {"value": 1}

    def test_unserializable_payload_leaves_no_temp_file(self, cache):
        with pytest.raises(EngineError):
            cache.put({"point": 2}, {"value": float("nan")})
        assert list(cache.root.rglob(".tmp-*")) == []


class TestConcurrentWriters:
    def test_two_processes_racing_the_same_key_both_succeed(self, tmp_path):
        """The thundering-herd regression: two writers, one key.

        Both puts must return; the surviving entry must be valid; no
        corruption false-positive may be quarantined.  The writers are
        real processes so the rename race is the kernel's, not ours.
        """
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        root = tmp_path / "cache"
        key = {"experiment": "herd", "point": 1}
        payload = {"value": {"elapsed_s": 3.25}}
        barrier = ctx.Barrier(2)
        errors = ctx.Queue()

        def writer():
            try:
                barrier.wait(timeout=10)
                for _ in range(50):
                    ResultCache(root).put(key, payload)
            except BaseException as error:  # travels back for the assert
                errors.put(f"{type(error).__name__}: {error}")

        procs = [ctx.Process(target=writer) for _ in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
        failures = []
        while not errors.empty():
            failures.append(errors.get())
        assert not failures, failures
        cache = ResultCache(root)
        assert cache.get(key) == payload
        report = cache.verify()
        assert report.scanned == 1 and report.ok == 1
        assert not report.corrupt
        assert cache.corruptions == 0

    def test_put_survives_temp_swept_mid_write(self, cache, monkeypatch):
        """A housekeeper deleting our temp between write and rename is
        contention, not an error: put retries with a fresh temp."""
        import os

        real_replace = os.replace
        swept = {"done": False}

        def sweeping_replace(src, dst):
            if not swept["done"]:
                swept["done"] = True
                os.unlink(src)  # the concurrent verify()/clear()
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", sweeping_replace)
        key = {"point": "swept"}
        cache.put(key, {"value": 1})
        assert swept["done"]
        assert cache.get(key) == {"value": 1}
        assert not cache.verify().corrupt


class TestHousekeeping:
    def test_len_and_clear(self, cache):
        for i in range(3):
            cache.put({"point": i}, {"value": i})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_contains_does_not_touch_stats(self, cache):
        key = {"point": 1}
        assert not cache.contains(key)
        cache.put(key, {"value": 1})
        assert cache.contains(key)
        assert (cache.hits, cache.misses) == (0, 0)

    def test_default_root_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere"
        assert ResultCache().root == tmp_path / "elsewhere"
