"""App-level resilience: LINPACK (and friends) under fault plans."""

import pytest

from repro.apps import BigDFT, Linpack, Specfem3D
from repro.cluster import tibidabo
from repro.faults import FaultPlan, NodeCrash
from repro.tracing import TraceRecorder, resilience_summary


def _cluster(nodes=8, seed=0):
    return tibidabo(num_nodes=nodes, seed=seed)


def _small_linpack():
    return Linpack(cluster_n=2048, nb=256)


class TestRunUnderFaults:
    def test_linpack_completes_with_quantified_rework(self):
        """The acceptance scenario: checkpoint/restart completes LINPACK
        under a mid-run crash and quantifies the rework."""
        app = _small_linpack()
        cluster = _cluster()
        clean = app.run_cluster(cluster, 8)
        plan = FaultPlan(
            events=(NodeCrash(time_s=0.5 * clean, node=0),), name="mid-crash"
        )
        recorder = TraceRecorder()
        result = app.run_under_faults(
            cluster, 8, plan,
            checkpoint_interval_s=max(0.5, clean / 8.0),
            tracer=recorder,
        )
        assert result.restarts == 1
        assert result.rework_seconds >= 0.0
        assert result.wall_seconds > clean
        assert 0.0 <= result.rework_fraction < 1.0
        report = resilience_summary(recorder)
        assert report.crashes == 1
        assert report.mean_detection_latency_s == pytest.approx(0.15)

    def test_fault_free_plan_only_pays_checkpoints(self):
        app = _small_linpack()
        cluster = _cluster()
        result = app.run_under_faults(cluster, 8, FaultPlan())
        assert result.restarts == 0 and result.rework_seconds == 0.0

    def test_checkpoint_bytes_overrides(self):
        cluster = _cluster()
        linpack = _small_linpack()
        assert linpack.checkpoint_bytes(cluster, 8) == pytest.approx(
            8.0 * 2048**2
        )
        assert Specfem3D().checkpoint_bytes(cluster, 8) == pytest.approx(
            36.0 * 4_000_000
        )
        assert BigDFT().checkpoint_bytes(cluster, 8) == pytest.approx(1.15e9)
