"""Tests for repro.faults.checkpoint — coordinated checkpoint/restart."""

import pytest

from repro.cluster import tibidabo
from repro.errors import CheckpointError, ConfigurationError
from repro.faults import (
    CheckpointConfig,
    FaultPlan,
    NodeCrash,
    checkpoint_interval_sweep,
    run_with_checkpoints,
)
from repro.tracing import TraceRecorder


def _cluster(nodes=8, seed=0):
    return tibidabo(num_nodes=nodes, seed=seed)


def _long_program(steps=30, compute_s=1.0):
    def program(rank):
        for _ in range(steps):
            yield rank.compute(compute_s)
            yield from rank.allreduce(64_000)

    return program


class TestCheckpointConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            CheckpointConfig(write_cost_s=-1.0)

    def test_from_state_bytes(self):
        config = CheckpointConfig.from_state_bytes(
            1e9, interval_s=60.0, io_bandwidth_bytes_per_s=100e6
        )
        assert config.write_cost_s == pytest.approx(10.0)
        assert config.restart_cost_s == pytest.approx(15.0)  # 5 s + read-back

    def test_overhead_factor(self):
        config = CheckpointConfig(interval_s=10.0, write_cost_s=1.0)
        assert config.overhead_factor == pytest.approx(1.1)


class TestRunWithCheckpoints:
    def test_failure_free_run_pays_only_checkpoint_overhead(self):
        cluster = _cluster()
        result = run_with_checkpoints(
            cluster, 8, _long_program(steps=5), FaultPlan(),
            checkpoint=CheckpointConfig(interval_s=5.0, write_cost_s=0.5),
        )
        assert result.restarts == 0 and not result.failures
        assert result.rework_seconds == 0.0
        assert result.wall_seconds == pytest.approx(
            result.useful_seconds * 1.1, rel=1e-6
        )

    def test_crash_costs_quantified_rework(self):
        """A crash mid-run: the job completes, and the decomposition
        accounts for rework, downtime and checkpoint overhead."""
        cluster = _cluster()
        recorder = TraceRecorder()
        plan = FaultPlan(events=(NodeCrash(time_s=9.0, node=0),), name="one-crash")
        result = run_with_checkpoints(
            cluster, 8, _long_program(), plan,
            checkpoint=CheckpointConfig(
                interval_s=5.0, write_cost_s=0.5, restart_cost_s=3.0
            ),
            tracer=recorder,
        )
        assert result.restarts == 1
        assert len(result.failures) == 1
        assert result.rework_seconds > 0
        assert 0 < result.rework_fraction < 1
        assert result.wall_seconds > result.useful_seconds
        assert result.wall_seconds == pytest.approx(
            result.useful_seconds
            + result.rework_seconds
            + result.checkpoint_overhead_seconds
            + result.downtime_seconds,
            rel=1e-6,
        )
        restart_records = recorder.faults_of("restart")
        assert len(restart_records) == 1
        assert restart_records[0]["rework_s"] == pytest.approx(
            result.rework_seconds
        )

    def test_max_restarts_exceeded_raises(self):
        cluster = _cluster()
        plan = FaultPlan(
            events=tuple(
                NodeCrash(time_s=5.0 + 10.0 * i, node=0) for i in range(4)
            ),
            name="relentless",
        )
        with pytest.raises(CheckpointError, match="restarts"):
            run_with_checkpoints(
                cluster, 8, _long_program(), plan,
                checkpoint=CheckpointConfig(
                    interval_s=5.0, write_cost_s=0.5,
                    restart_cost_s=3.0, max_restarts=2,
                ),
            )

    def test_crash_after_finish_changes_nothing_but_overhead(self):
        cluster = _cluster()
        plan = FaultPlan(events=(NodeCrash(time_s=1e6, node=0),))
        result = run_with_checkpoints(
            cluster, 8, _long_program(steps=3), plan,
            checkpoint=CheckpointConfig(interval_s=5.0, write_cost_s=0.5),
        )
        assert result.restarts == 0
        assert result.rework_seconds == 0.0


class TestIntervalSweep:
    def test_sweep_shows_the_sweet_spot(self):
        """Very frequent checkpoints lose to write overhead, very rare
        ones to rework: some middle interval must beat both extremes."""
        cluster = _cluster()
        plan = FaultPlan(
            events=(
                NodeCrash(time_s=9.0, node=0),
                NodeCrash(time_s=21.0, node=3),
            ),
            name="two-crash",
        )
        sweep = checkpoint_interval_sweep(
            cluster, 8, _long_program(), plan,
            [1.0, 5.0, 30.0], write_cost_s=0.5,
        )
        walls = {interval: result.wall_seconds for interval, result in sweep}
        assert walls[5.0] < walls[1.0]
        assert walls[5.0] < walls[30.0]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            checkpoint_interval_sweep(
                _cluster(), 4, _long_program(steps=2), FaultPlan(), []
            )
