"""Seed-determinism regression tests (the RNG audit's enforcement).

Every stochastic draw in the stack flows from an explicitly seeded
``random.Random``; nothing reads the module-global RNG or the clock.
These tests pin that property end to end: two same-seed runs must
produce *byte-identical* traces and resilience reports.
"""

from repro.cluster import MpiJob, tibidabo
from repro.faults import (
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
    named_plan,
    run_with_checkpoints,
)
from repro.faults.checkpoint import CheckpointConfig
from repro.tracing import TraceRecorder, resilience_summary


def _program(rank):
    for _ in range(4):
        yield rank.compute(0.05)
        yield from rank.alltoallv([40_000] * rank.size)


def _traced_run(seed):
    cluster = tibidabo(num_nodes=8, seed=seed)
    plan = named_plan("montblanc", num_nodes=8, horizon_s=2.0, seed=seed)
    recorder = TraceRecorder()
    injector = FaultInjector(plan, resilience=ResilienceConfig(on_failure="shrink"))
    job = MpiJob(cluster, 16, _program, tracer=recorder, injector=injector)
    result = job.run()
    return recorder, result


def _trace_bytes(recorder):
    return "\n".join([
        *map(repr, recorder.states),
        *map(repr, recorder.comms),
        *map(repr, recorder.faults),
    ]).encode()


class TestSameSeedIdentical:
    def test_traces_are_byte_identical(self):
        first_rec, first_res = _traced_run(seed=5)
        second_rec, second_res = _traced_run(seed=5)
        assert _trace_bytes(first_rec) == _trace_bytes(second_rec)
        assert repr(first_res) == repr(second_res)

    def test_resilience_reports_identical(self):
        first_rec, _ = _traced_run(seed=5)
        second_rec, _ = _traced_run(seed=5)
        assert resilience_summary(first_rec) == resilience_summary(second_rec)
        assert (
            resilience_summary(first_rec).format()
            == resilience_summary(second_rec).format()
        )

    def test_different_seeds_differ(self):
        first_rec, _ = _traced_run(seed=5)
        other_rec, _ = _traced_run(seed=6)
        assert _trace_bytes(first_rec) != _trace_bytes(other_rec)

    def test_fault_plan_timestamps_identical(self):
        first = named_plan("montblanc", num_nodes=16, horizon_s=50.0, seed=9)
        second = named_plan("montblanc", num_nodes=16, horizon_s=50.0, seed=9)
        assert [e.time_s for e in first] == [e.time_s for e in second]
        assert first.events == second.events

    def test_checkpoint_results_identical(self):
        def run():
            cluster = tibidabo(num_nodes=8, seed=2)
            plan = named_plan("crashy", num_nodes=8, horizon_s=30.0, seed=2)
            return run_with_checkpoints(
                cluster, 8, _long_program, plan,
                checkpoint=CheckpointConfig(interval_s=5.0, write_cost_s=0.5),
            )

        def _long_program(rank):
            for _ in range(20):
                yield rank.compute(1.0)
                yield from rank.allreduce(64_000)

        assert repr(run()) == repr(run())
