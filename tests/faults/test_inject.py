"""Tests for repro.faults.inject + the MPI layer's resilience hooks."""

import pytest

from repro.cluster import MpiJob, tibidabo
from repro.errors import ConfigurationError, LinkFailure, RankFailure
from repro.faults import (
    FailureDetector,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    NodeCrash,
    NodeSlowdown,
    OSNoiseBurst,
    ResilienceConfig,
    RetryPolicy,
    SwitchBufferShrink,
)
from repro.tracing import TraceRecorder


def _cluster(nodes=8, seed=0):
    return tibidabo(num_nodes=nodes, seed=seed)


def _alltoallv_program(steps=5, compute_s=0.1, nbytes=50_000):
    def program(rank):
        for _ in range(steps):
            yield rank.compute(compute_s)
            yield from rank.alltoallv([nbytes] * rank.size)

    return program


def _job(cluster, ranks, program, plan, *, resilience=None, tracer=None):
    injector = FaultInjector(plan, resilience=resilience)
    return MpiJob(cluster, ranks, program, tracer=tracer, injector=injector)


class TestNodeCrash:
    def test_crash_mid_alltoallv_surfaces_structured_rank_failure(self):
        """The acceptance scenario: a node dies mid-collective; the job
        must abort with a structured RankFailure — never hang silently —
        and the trace must carry the detection latency."""
        cluster = _cluster()
        recorder = TraceRecorder()
        detector = FailureDetector(heartbeat_period_s=0.05, miss_threshold=3)
        plan = FaultPlan(events=(NodeCrash(time_s=0.15, node=2),))
        job = _job(
            cluster, 8, _alltoallv_program(), plan,
            resilience=ResilienceConfig(detector=detector), tracer=recorder,
        )
        with pytest.raises(RankFailure) as info:
            job.run()
        failure = info.value
        assert failure.failed_ranks == (4, 5)  # node 2 hosts ranks 4, 5
        assert failure.crash_time_s == pytest.approx(0.15)
        assert failure.detection_latency_s == pytest.approx(0.15)  # 3 x 50 ms
        assert failure.node == 2

        crashes = recorder.faults_of("crash")
        detects = recorder.faults_of("detect")
        assert len(crashes) == 1 and len(detects) == 1
        assert crashes[0].time_s == pytest.approx(0.15)
        assert detects[0]["latency_s"] == pytest.approx(0.15)
        assert detects[0]["ranks"] == (4, 5)

    def test_shrink_mode_lets_survivors_continue(self):
        """on_failure="shrink": survivors observe RankFailure inside
        their communication calls and may catch it and carry on."""
        survivors = []

        def program(rank):
            try:
                for _ in range(5):
                    yield rank.compute(0.1)
                    yield from rank.alltoallv([50_000] * rank.size)
            except RankFailure as failure:
                assert 4 in failure.failed_ranks
                survivors.append(rank.rank)

        cluster = _cluster()
        plan = FaultPlan(events=(NodeCrash(time_s=0.15, node=2),))
        job = _job(
            cluster, 8, program, plan,
            resilience=ResilienceConfig(on_failure="shrink"),
        )
        result = job.run()
        assert result.failed_ranks == (4, 5)
        assert sorted(survivors) == [0, 1, 2, 3, 6, 7]
        assert result.detection_latency_s == pytest.approx(0.15)

    def test_crash_of_unused_node_is_harmless(self):
        cluster = _cluster()
        plan = FaultPlan(events=(NodeCrash(time_s=0.1, node=7),))
        job = _job(cluster, 4, _alltoallv_program(steps=2), plan)  # nodes 0-1
        result = job.run()
        assert result.completed
        assert result.failed_ranks == ()

    def test_crash_after_completion_is_harmless(self):
        cluster = _cluster()
        plan = FaultPlan(events=(NodeCrash(time_s=1e6, node=0),))
        job = _job(cluster, 4, _alltoallv_program(steps=1), plan)
        result = job.run()
        assert result.completed and result.failed_ranks == ()


class TestPerturbations:
    def _elapsed(self, plan, *, ranks=4, seed=0):
        cluster = _cluster(seed=seed)
        job = _job(cluster, ranks, _alltoallv_program(steps=3), plan)
        result = job.run()
        assert result.completed
        return result

    def test_slowdown_stretches_the_run(self):
        clean = self._elapsed(FaultPlan())
        slowed = self._elapsed(FaultPlan(events=(
            NodeSlowdown(time_s=0.0, node=0, factor=0.25, duration_s=60.0),
        )))
        assert slowed.elapsed_seconds > clean.elapsed_seconds * 1.5

    def test_os_noise_steals_compute_time(self):
        clean = self._elapsed(FaultPlan())
        noisy = self._elapsed(FaultPlan(events=(
            OSNoiseBurst(time_s=0.0, node=None, stolen_fraction=0.5, duration_s=60.0),
        )))
        assert noisy.elapsed_seconds > clean.elapsed_seconds * 1.2

    def test_link_degrade_slows_traffic_then_recovers(self):
        clean = self._elapsed(FaultPlan())
        degraded = self._elapsed(FaultPlan(events=(
            LinkDegrade(time_s=0.0, node=0, factor=0.05, duration_s=0.4),
        )))
        assert degraded.elapsed_seconds > clean.elapsed_seconds

    def test_flap_pays_retry_backoff_then_succeeds(self):
        clean = self._elapsed(FaultPlan())
        flapped = self._elapsed(FaultPlan(events=(
            LinkFlap(time_s=0.1, node=0, duration_s=0.3),
        )))
        assert flapped.retry_wait_seconds > 0
        assert flapped.elapsed_seconds > clean.elapsed_seconds

    def test_flap_longer_than_retry_budget_raises_link_failure(self):
        cluster = _cluster()
        policy = RetryPolicy(timeout_s=0.01, backoff=2.0, max_retries=2)
        plan = FaultPlan(events=(LinkFlap(time_s=0.05, node=0, duration_s=500.0),))
        job = _job(
            cluster, 4, _alltoallv_program(), plan,
            resilience=ResilienceConfig(retry=policy),
        )
        with pytest.raises(LinkFailure, match="attempts"):
            job.run()

    def test_buffer_shrink_causes_extra_loss_episodes(self):
        def incast(rank):
            for _ in range(3):
                if rank.rank == 0:
                    for src in range(1, rank.size):
                        yield rank.recv(src, tag="incast")
                else:
                    yield rank.send(0, 200_000, tag="incast")
                yield from rank.barrier()

        def losses(plan):
            cluster = _cluster(nodes=16)
            job = _job(cluster, 16, incast, plan)
            return job.run().loss_episodes

        clean = losses(FaultPlan())
        squeezed = losses(FaultPlan(events=(
            SwitchBufferShrink(time_s=0.0, factor=0.05, duration_s=600.0),
        )))
        assert squeezed >= clean


class TestInjectorLifecycle:
    def test_injector_is_one_shot(self):
        plan = FaultPlan(events=(NodeCrash(time_s=0.1, node=0),))
        injector = FaultInjector(plan)
        cluster = _cluster()
        job = MpiJob(cluster, 2, _alltoallv_program(steps=1), injector=injector)
        with pytest.raises(RankFailure):
            job.run()
        second = MpiJob(cluster, 2, _alltoallv_program(steps=1), injector=injector)
        with pytest.raises(ConfigurationError, match="one-shot"):
            second.run()

    def test_faults_injected_counted_in_result(self):
        cluster = _cluster()
        plan = FaultPlan(events=(
            NodeSlowdown(time_s=0.01, node=0, factor=0.5, duration_s=0.1),
            LinkFlap(time_s=0.02, node=1, duration_s=0.05),
        ))
        result = _job(cluster, 4, _alltoallv_program(steps=2), plan).run()
        assert result.faults_injected == 2
