"""Tests for repro.faults.plan — the fault vocabulary and schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    NAMED_PLANS,
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    NodeCrash,
    NodeSlowdown,
    OSNoiseBurst,
    SwitchBufferShrink,
    named_plan,
)


class TestEvents:
    def test_events_are_frozen(self):
        crash = NodeCrash(time_s=1.0, node=3)
        with pytest.raises(AttributeError):
            crash.node = 4

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeCrash(time_s=-1.0, node=0)

    def test_slowdown_factor_must_be_in_unit_interval(self):
        with pytest.raises(ConfigurationError):
            NodeSlowdown(time_s=0.0, node=0, factor=1.5, duration_s=1.0)
        with pytest.raises(ConfigurationError):
            NodeSlowdown(time_s=0.0, node=0, factor=0.0, duration_s=1.0)

    def test_noise_stolen_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            OSNoiseBurst(time_s=0.0, node=None, stolen_fraction=1.0, duration_s=1.0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkFlap(time_s=0.0, node=0, duration_s=0.0)

    def test_shifted_moves_trigger_earlier(self):
        flap = LinkFlap(time_s=5.0, node=1, duration_s=0.5)
        moved = flap.shifted(3.0)
        assert moved.time_s == 2.0
        assert moved.node == 1 and moved.duration_s == 0.5


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            NodeCrash(time_s=5.0, node=0),
            LinkFlap(time_s=1.0, node=2, duration_s=0.1),
        ))
        assert [e.time_s for e in plan] == [1.0, 5.0]

    def test_of_kind_and_crashes(self):
        plan = FaultPlan(events=(
            NodeCrash(time_s=5.0, node=0),
            SwitchBufferShrink(time_s=2.0, factor=0.5, duration_s=1.0),
            NodeCrash(time_s=9.0, node=1),
        ))
        assert len(plan.crashes) == 2
        assert len(plan.of_kind("buffer-shrink")) == 1

    def test_mttf(self):
        import math

        plan = FaultPlan(events=(
            NodeCrash(time_s=5.0, node=0),
            NodeCrash(time_s=9.0, node=1),
        ))
        assert plan.mttf_seconds(20.0) == pytest.approx(10.0)
        assert FaultPlan(events=()).mttf_seconds(20.0) == math.inf

    def test_shifted_drops_already_fired_events(self):
        plan = FaultPlan(events=(
            NodeCrash(time_s=1.0, node=0),
            NodeCrash(time_s=5.0, node=1),
        ))
        rest = plan.shifted(2.0)
        assert len(rest) == 1
        assert rest.events[0].time_s == pytest.approx(3.0)


class TestGenerate:
    def test_same_seed_identical_plans(self):
        kwargs = dict(num_nodes=16, horizon_s=100.0, node_mttf_s=40.0)
        first = FaultPlan.generate(seed=11, **kwargs)
        second = FaultPlan.generate(seed=11, **kwargs)
        assert first.events == second.events
        assert repr(first) == repr(second)

    def test_different_seeds_differ(self):
        kwargs = dict(num_nodes=16, horizon_s=500.0, node_mttf_s=50.0)
        assert (
            FaultPlan.generate(seed=1, **kwargs).events
            != FaultPlan.generate(seed=2, **kwargs).events
        )

    def test_events_respect_horizon(self):
        plan = FaultPlan.generate(
            seed=0, num_nodes=8, horizon_s=60.0,
            node_mttf_s=10.0, flap_mtbf_s=15.0, noise_mtbf_s=20.0,
        )
        assert plan.events  # dense plan: something must fire
        assert all(0.0 <= e.time_s <= 60.0 for e in plan)

    def test_named_plans_cover_the_catalogue(self):
        for name in NAMED_PLANS:
            plan = named_plan(name, num_nodes=8, horizon_s=30.0, seed=1)
            assert plan.name == name

    def test_unknown_named_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan"):
            named_plan("meteor-strike", num_nodes=8, horizon_s=30.0)

    def test_none_plan_is_empty(self):
        assert len(named_plan("none", num_nodes=8, horizon_s=30.0)) == 0
