"""Tests for the resilience trace mining (repro.tracing.analysis)."""

import pytest

from repro.errors import TraceError
from repro.tracing import FaultRecord, TraceRecorder, resilience_summary


def _recorder_with_story():
    recorder = TraceRecorder()
    # Two ranks computing over a 10 s window.
    recorder.state(0, "compute", 0.0, 10.0)
    recorder.state(1, "compute", 0.0, 4.0)
    recorder.state(1, "retry", 4.0, 4.5)
    recorder.state(1, "compute", 4.5, 10.0)
    # A flap, a crash, its detection, and one restart.
    recorder.fault("flap", 4.0, "node1", duration_s=0.3)
    recorder.fault("crash", 6.0, "node0", ranks=[0, 1])
    recorder.fault("detect", 6.2, "node0", latency_s=0.2, ranks=[0, 1])
    recorder.fault("restart", 9.0, "job", rework_s=1.5, restart=1)
    return recorder


class TestResilienceSummary:
    def test_counts_and_metrics(self):
        report = resilience_summary(_recorder_with_story())
        assert report.faults_injected == 2  # flap + crash; detect/restart excluded
        assert report.crashes == 1
        assert report.restarts == 1
        assert report.horizon_seconds == pytest.approx(10.0)
        assert report.mttf_seconds == pytest.approx(10.0)
        assert report.detection_latencies_s == (0.2,)
        assert report.mean_detection_latency_s == pytest.approx(0.2)
        assert report.retry_seconds == pytest.approx(0.5)
        # 0.5 rank-seconds lost out of 2 ranks x 10 s.
        assert report.retry_goodput_fraction == pytest.approx(0.025)
        assert report.rework_seconds == pytest.approx(1.5)
        assert report.rework_fraction == pytest.approx(0.15)

    def test_explicit_horizon_overrides(self):
        report = resilience_summary(_recorder_with_story(), horizon_s=20.0)
        assert report.mttf_seconds == pytest.approx(20.0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(TraceError):
            resilience_summary(_recorder_with_story(), horizon_s=0.0)

    def test_fault_free_trace(self):
        recorder = TraceRecorder()
        recorder.state(0, "compute", 0.0, 1.0)
        report = resilience_summary(recorder)
        assert report.faults_injected == 0
        assert report.mttf_seconds is None
        assert report.mean_detection_latency_s is None
        assert report.rework_fraction == 0.0
        assert "MTTF" in report.format()

    def test_faults_of_query(self):
        recorder = _recorder_with_story()
        assert len(recorder.faults_of("crash")) == 1
        assert recorder.faults_of("crash")[0].target == "node0"


class TestFaultRecord:
    def test_detail_sorted_and_frozen(self):
        record = FaultRecord(
            kind="crash", time_s=1.0, target="node0",
            detail=(("z", 1), ("a", 2)),
        )
        assert record.detail == (("a", 2), ("z", 1))
        assert record["a"] == 2
        assert record.get("missing", 42) == 42
        with pytest.raises(KeyError):
            record["missing"]

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            FaultRecord(kind="crash", time_s=-1.0, target="node0")

    def test_recorder_freezes_list_details(self):
        recorder = TraceRecorder()
        recorder.fault("crash", 1.0, "node0", ranks=[3, 4])
        assert recorder.faults[0]["ranks"] == (3, 4)

    def test_out_of_order_faults_fail_sanity(self):
        recorder = TraceRecorder()
        recorder.fault("crash", 5.0, "node0")
        recorder.fault("flap", 1.0, "node1")
        with pytest.raises(TraceError, match="out of order"):
            recorder.check_sanity()
