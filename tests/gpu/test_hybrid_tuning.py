"""Tests for repro.gpu.hybrid and repro.gpu.tuning (§VI-A/B)."""

import pytest

from repro.arch.isa import Precision
from repro.arch.machines import EXYNOS5_DUAL, SNOWBALL_A9500, TEGRA3_NODE
from repro.autotune.tuner import AutoTuner
from repro.autotune.search import ExhaustiveSearch
from repro.errors import ConfigurationError
from repro.gpu.hybrid import HybridPlatform, hybrid_efficiency_table
from repro.gpu.kernel import GpuKernelSpec
from repro.gpu.runtime import OpenClRuntime
from repro.gpu.tuning import BUFFER_SIZES, tune_buffer_size, tuning_space


class TestHybridPlatform:
    def test_requires_an_accelerator(self):
        with pytest.raises(ConfigurationError):
            HybridPlatform(SNOWBALL_A9500)

    def test_tegra3_gpu_is_sp_only(self):
        platform = HybridPlatform(TEGRA3_NODE)
        assert platform.supports(Precision.SINGLE)
        assert not platform.supports(Precision.DOUBLE)

    def test_exynos_gpu_supports_double(self):
        platform = HybridPlatform(EXYNOS5_DUAL)
        assert platform.supports(Precision.DOUBLE)

    def test_optimal_split_is_rate_proportional(self):
        platform = HybridPlatform(EXYNOS5_DUAL)
        share = platform.optimal_split(Precision.SINGLE)
        gpu = platform.gpu_peak(Precision.SINGLE)
        cpu = platform.cpu_peak(Precision.SINGLE)
        assert share == pytest.approx(gpu / (gpu + cpu))
        assert 0.5 < share < 1.0  # the GPU dominates SP throughput

    def test_dp_split_falls_back_to_cpu_on_tegra3(self):
        platform = HybridPlatform(TEGRA3_NODE)
        assert platform.optimal_split(Precision.DOUBLE) == 0.0

    def test_hybrid_time_beats_cpu_alone(self):
        platform = HybridPlatform(EXYNOS5_DUAL)
        flops = 1e12
        hybrid = platform.hybrid_time(flops, Precision.SINGLE)
        cpu_only = flops / platform.cpu_peak(Precision.SINGLE)
        assert hybrid < cpu_only

    def test_invalid_efficiency_rejected(self):
        platform = HybridPlatform(EXYNOS5_DUAL)
        with pytest.raises(ConfigurationError):
            platform.hybrid_time(1e9, Precision.SINGLE, efficiency=0.0)


class TestEfficiencyTable:
    def test_exynos_clears_the_papers_bar(self):
        """§VI-A: 'even an efficiency of 5 or 7 GFLOPS per Watt would
        be an accomplishment' — the Exynos DP envelope clears 5."""
        rows = {name: (sp, dp) for name, sp, dp, _ in hybrid_efficiency_table()}
        _, exynos_dp = rows["Samsung Exynos 5 Dual"]
        assert exynos_dp > 5.0

    def test_every_soc_beats_the_xeon_on_sp(self):
        rows = {name: sp for name, sp, _, _ in hybrid_efficiency_table()}
        xeon = rows["Intel Xeon X5550"]
        for name, sp in rows.items():
            if name != "Intel Xeon X5550":
                assert sp > xeon, name

    def test_tegra3_dp_is_cpu_bound(self):
        """The Tibidabo extension only helps single-precision codes."""
        rows = {name: (sp, dp) for name, sp, dp, _ in hybrid_efficiency_table()}
        tegra_sp, tegra_dp = rows["NVIDIA Tegra3 (Tibidabo extension)"]
        assert tegra_sp > 4 * tegra_dp


class TestBufferTuning:
    def _runtime(self):
        return OpenClRuntime(
            accelerator=EXYNOS5_DUAL.accelerator,
            soc_bandwidth_bytes_per_s=EXYNOS5_DUAL.memory.sustained_bandwidth,
        )

    def test_space_covers_both_tunables(self):
        space = tuning_space()
        assert space.size == len(BUFFER_SIZES) * 6

    def test_optimum_tracks_problem_size(self):
        """§VI-B: 'optimal buffer size used in GPU kernel could be
        tuned to match the length of the input problem'."""
        runtime = self._runtime()
        spec = GpuKernelSpec(name="mf", flops_per_item=32.0, bytes_per_item=24.0)
        small = tune_buffer_size(runtime, spec, 2_000)       # 48 KB problem
        large = tune_buffer_size(runtime, spec, 2_000_000)   # 48 MB problem
        assert small.best_point["buffer_bytes"] < 256 * 1024
        assert large.best_point["buffer_bytes"] == 256 * 1024  # cache-sized
        assert small.best_point["buffer_bytes"] >= 48_000      # one chunk

    def test_shared_tuner_caches_instances(self):
        runtime = self._runtime()
        spec = GpuKernelSpec(name="mf", flops_per_item=32.0, bytes_per_item=24.0)
        tuner = AutoTuner(space=tuning_space(), strategy=ExhaustiveSearch())
        first = tune_buffer_size(runtime, spec, 10_000, tuner=tuner)
        compile_count = runtime.compile_count
        again = tune_buffer_size(runtime, spec, 10_000, tuner=tuner)
        assert again is first
        assert runtime.compile_count == compile_count  # no new searches

    def test_invalid_work_items_rejected(self):
        runtime = self._runtime()
        spec = GpuKernelSpec(name="mf", flops_per_item=1.0, bytes_per_item=4.0)
        with pytest.raises(ConfigurationError):
            tune_buffer_size(runtime, spec, 0)
