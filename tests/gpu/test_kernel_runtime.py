"""Tests for repro.gpu.kernel and repro.gpu.runtime."""

import pytest

from repro.arch.cpu import AcceleratorModel
from repro.arch.isa import Precision
from repro.arch.machines import EXYNOS5_DUAL, TEGRA3_NODE
from repro.errors import ConfigurationError
from repro.gpu.kernel import GpuKernelSpec, KernelLaunch, launch_time_seconds
from repro.gpu.runtime import COMPILE_TIME_S, OpenClRuntime

MALI = EXYNOS5_DUAL.accelerator
GEFORCE_ULP = TEGRA3_NODE.accelerator
SOC_BW = EXYNOS5_DUAL.memory.sustained_bandwidth


def _spec(**overrides):
    defaults = dict(
        name="k", flops_per_item=100.0, bytes_per_item=16.0,
        precision=Precision.SINGLE, coalesced=True,
    )
    defaults.update(overrides)
    return GpuKernelSpec(**defaults)


class TestKernelSpec:
    def test_invalid_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(bytes_per_item=0.0)
        with pytest.raises(ConfigurationError):
            _spec(flops_per_item=-1.0)


class TestKernelLaunch:
    def test_totals(self):
        launch = KernelLaunch(spec=_spec(), work_items=1000)
        assert launch.total_flops == 100_000
        assert launch.total_bytes == 16_000

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelLaunch(spec=_spec(), work_items=0)
        with pytest.raises(ConfigurationError):
            KernelLaunch(spec=_spec(), work_items=10, work_group_size=2048)
        with pytest.raises(ConfigurationError):
            KernelLaunch(spec=_spec(), work_items=10, buffer_bytes=0)


class TestLaunchTime:
    def test_double_precision_rejected_on_sp_only_gpu(self):
        """Tegra3's GPU: 'codes that can use single precision' only."""
        launch = KernelLaunch(
            spec=_spec(precision=Precision.DOUBLE), work_items=1000
        )
        with pytest.raises(ConfigurationError, match="double"):
            launch_time_seconds(GEFORCE_ULP, launch, soc_bandwidth_bytes_per_s=SOC_BW)

    def test_double_precision_runs_on_mali(self):
        """The Exynos 5 was chosen because the Mali-T604 does DP."""
        launch = KernelLaunch(
            spec=_spec(precision=Precision.DOUBLE), work_items=1000
        )
        assert launch_time_seconds(MALI, launch, soc_bandwidth_bytes_per_s=SOC_BW) > 0

    def test_more_work_takes_longer(self):
        small = KernelLaunch(spec=_spec(), work_items=10_000)
        large = KernelLaunch(spec=_spec(), work_items=1_000_000)
        t_small = launch_time_seconds(MALI, small, soc_bandwidth_bytes_per_s=SOC_BW)
        t_large = launch_time_seconds(MALI, large, soc_bandwidth_bytes_per_s=SOC_BW)
        assert t_large > t_small

    def test_tiny_work_groups_waste_throughput(self):
        compute_bound = _spec(flops_per_item=10_000.0, bytes_per_item=4.0)
        narrow = KernelLaunch(spec=compute_bound, work_items=100_000, work_group_size=8)
        wide = KernelLaunch(spec=compute_bound, work_items=100_000, work_group_size=128)
        t_narrow = launch_time_seconds(MALI, narrow, soc_bandwidth_bytes_per_s=SOC_BW)
        t_wide = launch_time_seconds(MALI, wide, soc_bandwidth_bytes_per_s=SOC_BW)
        assert t_narrow > t_wide

    def test_huge_work_groups_lose_occupancy(self):
        compute_bound = _spec(flops_per_item=10_000.0, bytes_per_item=4.0)
        ok = KernelLaunch(spec=compute_bound, work_items=100_000, work_group_size=256)
        oversized = KernelLaunch(
            spec=compute_bound, work_items=100_000, work_group_size=1024
        )
        assert launch_time_seconds(
            MALI, oversized, soc_bandwidth_bytes_per_s=SOC_BW
        ) > launch_time_seconds(MALI, ok, soc_bandwidth_bytes_per_s=SOC_BW)

    def test_uncoalesced_access_derates_bandwidth(self):
        coalesced = KernelLaunch(spec=_spec(), work_items=1_000_000)
        scattered = KernelLaunch(spec=_spec(coalesced=False), work_items=1_000_000)
        assert launch_time_seconds(
            MALI, scattered, soc_bandwidth_bytes_per_s=SOC_BW
        ) > launch_time_seconds(MALI, coalesced, soc_bandwidth_bytes_per_s=SOC_BW)

    def test_undersized_buffer_pays_chunk_overhead(self):
        spec = _spec()
        small_buf = KernelLaunch(spec=spec, work_items=1_000_000, buffer_bytes=16 * 1024)
        big_buf = KernelLaunch(spec=spec, work_items=1_000_000, buffer_bytes=256 * 1024)
        assert launch_time_seconds(
            MALI, small_buf, soc_bandwidth_bytes_per_s=SOC_BW
        ) > launch_time_seconds(MALI, big_buf, soc_bandwidth_bytes_per_s=SOC_BW)

    def test_oversized_buffer_thrashes_shared_cache(self):
        spec = _spec()
        fits = KernelLaunch(spec=spec, work_items=4_000_000, buffer_bytes=256 * 1024)
        thrash = KernelLaunch(spec=spec, work_items=4_000_000, buffer_bytes=1024 * 1024)
        assert launch_time_seconds(
            MALI, thrash, soc_bandwidth_bytes_per_s=SOC_BW
        ) > launch_time_seconds(MALI, fits, soc_bandwidth_bytes_per_s=SOC_BW)


class TestOpenClRuntime:
    def _runtime(self):
        return OpenClRuntime(accelerator=MALI, soc_bandwidth_bytes_per_s=SOC_BW)

    def test_first_use_compiles(self):
        runtime = self._runtime()
        runtime.run(_spec(), 1000)
        assert runtime.compile_count == 1
        assert runtime.total_compile_seconds == COMPILE_TIME_S

    def test_jit_cache_serves_repeats(self):
        """§VI-B: the JIT cache amortizes runtime compilation."""
        runtime = self._runtime()
        for _ in range(5):
            runtime.run(_spec(), 1000)
        assert runtime.compile_count == 1
        assert runtime.cached_kernels == 1

    def test_distinct_tunables_compile_separately(self):
        runtime = self._runtime()
        runtime.run(_spec(), 1000, work_group_size=64)
        runtime.run(_spec(), 1000, work_group_size=128)
        assert runtime.compile_count == 2

    def test_execution_time_accumulates(self):
        runtime = self._runtime()
        t1 = runtime.run(_spec(), 1000)
        t2 = runtime.run(_spec(), 1000)
        assert runtime.total_execution_seconds == pytest.approx(t1 + t2)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            OpenClRuntime(accelerator=MALI, soc_bandwidth_bytes_per_s=0.0)
