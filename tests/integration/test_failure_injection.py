"""Failure injection: drive the simulators into pathological corners
and check they fail loudly (or survive gracefully) instead of lying."""

import dataclasses

import pytest

from repro.apps import BigDFT
from repro.arch.machines import SNOWBALL_A9500, TEGRA2_NODE
from repro.cluster import MpiJob, tibidabo
from repro.cluster.fabric import Fabric, FatTreeSpec
from repro.cluster.switch import SwitchSpec, TIBIDABO_SWITCH
from repro.errors import (
    AllocationError,
    ConfigurationError,
    SimulationError,
)
from repro.kernels import MemBench
from repro.kernels.membench import MemBenchConfig
from repro.osmodel import OSModel
from repro.osmodel.page_allocator import boot_allocator
from repro.osmodel.scheduler import RtFifoScheduler


class TestNetworkPathologies:
    def test_always_collapsing_switch_still_terminates(self):
        """loss_rate=1, collapse_probability=1: every overflowing
        message pays an RTO, yet the job completes in finite time."""
        spec = dataclasses.replace(
            TIBIDABO_SWITCH, collapse_probability=1.0, loss_rate=1.0
        )
        fabric = Fabric(8, FatTreeSpec(switch=spec), seed=1)
        from repro.cluster.cluster import ClusterModel
        cluster = ClusterModel(
            name="worst", node=TEGRA2_NODE, num_nodes=8, fabric=fabric
        )
        app = BigDFT(scf_iterations=2)
        elapsed = app.run_cluster(cluster, 16)
        assert elapsed > 0
        # Compare with the healthy fabric: the pathology must cost.
        healthy = tibidabo(num_nodes=8, seed=1, upgraded_switches=True)
        assert elapsed > app.run_cluster(healthy, 16)

    def test_rank_program_crash_propagates(self):
        """An exception inside a rank program surfaces instead of
        silently deadlocking the job."""
        cluster = tibidabo(num_nodes=4, seed=0)

        def program(rank):
            yield rank.compute(0.01)
            if rank.rank == 3:
                raise RuntimeError("rank 3 crashed")
            yield rank.compute(0.01)

        with pytest.raises(RuntimeError, match="rank 3 crashed"):
            MpiJob(cluster, 8, program).run()

    def test_one_sided_communication_deadlocks_cleanly(self):
        cluster = tibidabo(num_nodes=4, seed=0)

        def program(rank):
            if rank.rank == 0:
                yield rank.recv(1, tag="never")
            else:
                yield rank.compute(0.001)

        with pytest.raises(SimulationError, match="deadlock"):
            MpiJob(cluster, 4, program).run()

    def test_mismatched_collective_order_deadlocks_cleanly(self):
        """Ranks calling collectives in different orders violate MPI
        semantics; the simulator reports a deadlock, not a hang."""
        cluster = tibidabo(num_nodes=4, seed=0)

        def program(rank):
            if rank.rank % 2 == 0:
                yield from rank.barrier()
                yield from rank.allreduce(1024)
            else:
                yield from rank.allreduce(1024)
                yield from rank.barrier()

        with pytest.raises(SimulationError, match="deadlock"):
            MpiJob(cluster, 4, program).run()


class TestMemoryPathologies:
    def test_membench_on_exhausted_memory(self):
        """A tiny physical pool: the first oversized mmap raises an
        AllocationError rather than corrupting state."""
        from repro.memsim.paging import AddressSpace
        allocator = boot_allocator(8, seed=0)  # 32 KiB of 'RAM'
        space = AddressSpace(allocator)
        space.mmap(4 * 4096)
        with pytest.raises(AllocationError):
            space.mmap(8 * 4096)

    def test_fully_fragmented_memory_still_serves_single_pages(self):
        allocator = boot_allocator(256, fragmentation=1.0, seed=3)
        allocation = allocator.allocate(1)
        assert allocation.num_pages == 1

    def test_benchmark_larger_than_memory_fails_loudly(self):
        os_model = OSModel.boot(SNOWBALL_A9500, seed=0)
        bench = MemBench(SNOWBALL_A9500, os_model, seed=0)
        huge = SNOWBALL_A9500.memory.total_bytes * 2
        with pytest.raises(AllocationError):
            bench.measure(MemBenchConfig(array_bytes=huge))


class TestSchedulerPathologies:
    def test_permanently_degraded_rt_scheduler(self):
        """p_exit ~ 0: once degraded, stays degraded — every later
        sample is slow, but the model never wedges."""
        scheduler = RtFifoScheduler(p_enter=0.99, p_exit=1e-9, seed=1)
        samples = [scheduler.next_sample() for _ in range(200)]
        degraded_tail = [s.degraded for s in samples[5:]]
        assert all(degraded_tail)
        assert all(s.slowdown > 3 for s in samples[5:])

    def test_scheduler_parameters_validated_before_use(self):
        with pytest.raises(ConfigurationError):
            RtFifoScheduler(p_enter=1.5)


class TestGpuPathologies:
    def test_dp_kernel_on_sp_gpu_fails_at_launch(self):
        from repro.arch.isa import Precision
        from repro.arch.machines import TEGRA3_NODE
        from repro.gpu import GpuKernelSpec, OpenClRuntime
        runtime = OpenClRuntime(
            accelerator=TEGRA3_NODE.accelerator,
            soc_bandwidth_bytes_per_s=TEGRA3_NODE.memory.sustained_bandwidth,
        )
        spec = GpuKernelSpec(
            name="dp", flops_per_item=10.0, bytes_per_item=8.0,
            precision=Precision.DOUBLE,
        )
        with pytest.raises(ConfigurationError, match="double"):
            runtime.run(spec, 1000)
