"""Integration tests: metrics flags on the CLI, and cross-run isolation.

The observability contract: ``--metrics-out``/``--metrics-format`` on
any artefact write a metrics document *without perturbing stdout by a
single byte*, and a CLI invocation leaves no registry state behind —
running the Table II pipeline twice in one process prints identical
bytes both times.
"""

import json

from repro.cli import main
from repro.metrics import NULL_REGISTRY, current_registry, load_and_validate


def run_cli(argv, capsys):
    assert main(argv) == 0
    captured = capsys.readouterr()
    return captured.out, captured.err


class TestMetricsFlags:
    def test_fig3_metrics_file_has_required_sections(self, tmp_path, capsys):
        target = tmp_path / "fig3.json"
        run_cli(["fig3", "--quick", "--metrics-out", str(target)], capsys)
        payload = load_and_validate(target)
        counters = payload["counters"]
        # DES, per-collective MPI, engine cache, and span profile — the
        # acceptance checklist for a fig3 export.
        assert counters["des.events_dispatched"]["value"] > 0
        assert counters["engine.cache.misses"]["value"] > 0
        assert "engine.cache.hits" in counters
        per_collective = {
            name for name in counters if name.startswith("mpi.messages.")
        }
        assert per_collective  # e.g. mpi.messages.allreduce
        assert any(name.startswith("mpi.wait_seconds.") for name in counters)
        spans = payload["spans"]["children"]
        assert any(node["name"] == "artefact/fig3" for node in spans)

    def test_stdout_byte_identical_with_and_without_metrics(
        self, tmp_path, capsys
    ):
        plain_out, _ = run_cli(["table2"], capsys)
        metered_out, _ = run_cli(
            ["table2", "--metrics-out", str(tmp_path / "m.json")], capsys
        )
        assert metered_out == plain_out

    def test_metrics_format_prom_writes_exposition_text(
        self, tmp_path, capsys
    ):
        target = tmp_path / "m.prom"
        run_cli(
            ["fig7", "--metrics-out", str(target), "--metrics-format",
             "prom"],
            capsys,
        )
        text = target.read_text(encoding="utf-8")
        assert "# TYPE repro_engine_points counter" in text
        assert 'repro_span_count{path="artefact/fig7"} 1' in text

    def test_metrics_format_table_writes_human_summary(
        self, tmp_path, capsys
    ):
        target = tmp_path / "m.txt"
        run_cli(
            ["table2", "--metrics-out", str(target), "--metrics-format",
             "table"],
            capsys,
        )
        assert "Span profile" in target.read_text(encoding="utf-8")

    def test_format_without_out_renders_to_stderr(self, capsys):
        out, err = run_cli(["fig7", "--metrics-format", "json"], capsys)
        payload = json.loads(err[err.index("{"):])
        assert payload["schema"] == 1
        assert "engine.points" in payload["counters"]
        assert "{" not in out  # stdout stays the artefact alone

    def test_registry_restored_after_cli_run(self, tmp_path, capsys):
        run_cli(["table2", "--metrics-out", str(tmp_path / "m.json")], capsys)
        assert current_registry() is NULL_REGISTRY


class TestCrossRunIsolation:
    def test_table2_pipeline_twice_in_one_process_is_identical(self, capsys):
        """Guards against registry (or any global) state leaking between
        runs: the second Table II run must print the same bytes."""
        first, _ = run_cli(["table2"], capsys)
        second, _ = run_cli(["table2"], capsys)
        assert first == second

    def test_metered_run_does_not_perturb_following_plain_run(
        self, tmp_path, capsys
    ):
        baseline, _ = run_cli(["table2"], capsys)
        run_cli(["table2", "--metrics-out", str(tmp_path / "m.json")], capsys)
        after, _ = run_cli(["table2"], capsys)
        assert after == baseline
