"""Golden pin of the multi-seed Figure 3 summary document.

``tests/golden/fig3_multiseed.json`` is the byte-exact
``--summary-out`` document of ``repro fig3 --quick --seeds 5`` — the
per-point mean/median/CI/CV summaries plus the raw replicate values.
The tests regenerate it at ``--jobs 1`` AND ``--jobs 4`` and require
both byte-identical to the golden, which pins two ISSUE acceptance
criteria at once: multi-seed runs are deterministic across job
counts, and the statistical summaries themselves never drift
silently (regenerate with
``python tests/integration/test_multiseed_golden.py``).
"""

import json
from pathlib import Path

from repro.cli import main
from repro.core.stats import ReplicateSummary

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
GOLDEN_JSON = GOLDEN_DIR / "fig3_multiseed.json"


def multiseed_summary_bytes(tmp_dir, jobs):
    """Run the pinned invocation; return the summary document bytes."""
    out = Path(tmp_dir) / f"summary-jobs{jobs}.json"
    code = main([
        "fig3", "--quick", "--seeds", "5", "--jobs", str(jobs),
        "--no-cache", "--summary-out", str(out),
    ])
    assert code == 0
    return out.read_bytes()


class TestFig3MultiseedGolden:
    def test_jobs1_matches_golden_byte_for_byte(self, tmp_path, capsys):
        assert multiseed_summary_bytes(tmp_path, 1) == GOLDEN_JSON.read_bytes()

    def test_jobs4_matches_golden_byte_for_byte(self, tmp_path, capsys):
        assert multiseed_summary_bytes(tmp_path, 4) == GOLDEN_JSON.read_bytes()

    def test_golden_structure_and_provenance(self):
        doc = json.loads(GOLDEN_JSON.read_text(encoding="utf-8"))
        assert doc["schema"] == 1
        assert doc["seeds"] == [7, 8, 9, 10, 11]
        assert doc["confidence"] == 0.95
        series = doc["artefacts"]["fig3"]["series"]
        assert sorted(series) == ["bigdft", "linpack", "specfem3d"]
        for name, entry in series.items():
            for point in entry["points"]:
                summary = ReplicateSummary.from_dict(point["summary"])
                assert summary.count == 5
                assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_golden_baselines_are_exact(self):
        """Each curve's baseline point is exact for every seed
        (speedup = baseline_cores by construction)."""
        doc = json.loads(GOLDEN_JSON.read_text(encoding="utf-8"))
        series = doc["artefacts"]["fig3"]["series"]
        for name, baseline_x in (("linpack", 1), ("specfem3d", 4),
                                 ("bigdft", 1)):
            first = series[name]["points"][0]
            assert first["x"] == baseline_x
            assert first["summary"]["values"] == [float(baseline_x)] * 5


def regenerate():  # pragma: no cover - manual tool
    import tempfile

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp_dir:
        GOLDEN_JSON.write_bytes(multiseed_summary_bytes(tmp_dir, 1))
    print(f"wrote {GOLDEN_JSON}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
