"""End-to-end pipelines: each test drives one paper artefact through
the full stack, asserting the paper's qualitative findings."""

import pytest

from repro.apps import BigDFT, CoreMark, Linpack, Specfem3D, StockFish
from repro.arch import SNOWBALL_A9500, TEGRA2_NODE, XEON_X5550
from repro.cluster import MpiJob, tibidabo
from repro.core.stats import is_bimodal
from repro.energy import compare_runs
from repro.kernels import MagicFilterBenchmark, MemBench
from repro.osmodel import OSModel, SchedulingPolicy
from repro.tracing import TraceRecorder, analyze_collectives, export_prv, parse_prv

PAPER_TABLE2 = {
    # benchmark: (snowball, xeon, ratio, energy_ratio)
    "LINPACK": (620.0, 24000.0, 38.7, 1.0),
    "CoreMark": (5877.0, 41950.0, 7.1, 0.2),
    "StockFish": (224113.0, 4521733.0, 20.2, 0.5),
    "SPECFEM3D": (186.8, 23.5, 7.9, 0.2),
    "BigDFT": (420.4, 18.1, 23.2, 0.6),
}


class TestTable2Pipeline:
    """The full Table II: five benchmarks, two platforms, both ratios."""

    @pytest.mark.parametrize(
        "app",
        [Linpack(), CoreMark(), StockFish(), Specfem3D(), BigDFT()],
        ids=lambda a: a.name,
    )
    def test_row_matches_paper(self, app):
        snow = app.run(SNOWBALL_A9500)
        xeon = app.run(XEON_X5550)
        row = compare_runs(xeon, snow)
        paper_snow, paper_xeon, paper_ratio, paper_energy = PAPER_TABLE2[app.name]
        assert row.contender_value == pytest.approx(paper_snow, rel=0.05)
        assert row.reference_value == pytest.approx(paper_xeon, rel=0.05)
        assert row.ratio == pytest.approx(paper_ratio, rel=0.06)
        assert row.energy_ratio == pytest.approx(paper_energy, abs=0.12)

    def test_arm_wins_energy_on_every_row_but_linpack(self):
        """§III-C: LINPACK 'costs the same energy'; everything else is
        cheaper on the ARM."""
        for app in (CoreMark(), StockFish(), Specfem3D(), BigDFT()):
            row = compare_runs(app.run(XEON_X5550), app.run(SNOWBALL_A9500))
            assert row.energy_ratio < 0.8, app.name
        linpack = compare_runs(Linpack().run(XEON_X5550), Linpack().run(SNOWBALL_A9500))
        assert linpack.energy_ratio == pytest.approx(1.0, abs=0.1)


class TestFigure3Pipeline:
    """Strong scaling on a reduced Tibidabo (shapes, not wall time)."""

    @pytest.fixture(scope="class")
    def cluster(self):
        return tibidabo(num_nodes=32, seed=7)

    def test_linpack_scales_acceptably(self, cluster):
        curve = dict(
            Linpack().speedup_curve(cluster, [1, 4, 16, 48])
        )
        assert curve[48] / 48 > 0.7  # "acceptable", ~80% at scale

    def test_specfem_scales_excellently(self, cluster):
        app = Specfem3D(timesteps=8)
        curve = dict(app.speedup_curve(cluster, [4, 16, 64], baseline_cores=4))
        assert curve[64] / 64 > 0.9  # "excellent ... 90%"

    def test_bigdft_efficiency_drops_rapidly(self, cluster):
        app = BigDFT(scf_iterations=4)
        curve = dict(app.speedup_curve(cluster, [1, 4, 16, 36]))
        assert curve[36] / 36 < 0.6
        # ordering of the three codes at comparable scale
        linpack = dict(Linpack().speedup_curve(cluster, [1, 36]))
        assert curve[36] < linpack[36]

    def test_efficiency_ordering_matches_paper(self, cluster):
        """SPECFEM3D > LINPACK > BigDFT at a common core count."""
        specfem = dict(
            Specfem3D(timesteps=8).speedup_curve(cluster, [4, 32], baseline_cores=4)
        )[32] / 32
        linpack = dict(Linpack().speedup_curve(cluster, [1, 32]))[32] / 32
        bigdft = dict(BigDFT(scf_iterations=4).speedup_curve(cluster, [1, 32]))[32] / 32
        assert specfem > linpack > bigdft


class TestFigure4Pipeline:
    """36-core BigDFT: trace, export, analyze delayed collectives."""

    @pytest.fixture(scope="class")
    def recorder(self):
        cluster = tibidabo(num_nodes=18, seed=7)
        recorder = TraceRecorder()
        app = BigDFT()
        MpiJob(cluster, 36, app.rank_program(cluster, 36), tracer=recorder).run()
        return recorder

    def test_most_collectives_delayed(self, recorder):
        report = analyze_collectives(recorder, "alltoallv")
        assert report.delayed_fraction > 0.5

    def test_mixed_full_and_partial_delays(self, recorder):
        """'In some cases all the nodes are delayed while in other,
        only part of them suffers'."""
        report = analyze_collectives(recorder, "alltoallv")
        delayed_counts = {i.ranks_delayed for i in report.delayed}
        assert len(delayed_counts) > 1

    def test_trace_roundtrips_through_paraver_format(self, recorder):
        parsed = parse_prv(export_prv(recorder, job_name="bigdft-36"))
        assert len(parsed.comms) == len(recorder.comms)

    def test_upgraded_switches_remove_the_delays(self):
        cluster = tibidabo(num_nodes=18, seed=7, upgraded_switches=True)
        recorder = TraceRecorder()
        app = BigDFT()
        MpiJob(cluster, 36, app.rank_program(cluster, 36), tracer=recorder).run()
        report = analyze_collectives(recorder, "alltoallv")
        assert report.delayed_fraction < 0.2


class TestFigure5Pipeline:
    """RT scheduling on the Snowball: bimodal bandwidth, consecutive
    degradation, L1-size cliff."""

    @pytest.fixture(scope="class")
    def results(self):
        os_model = OSModel.boot(
            SNOWBALL_A9500, policy=SchedulingPolicy.FIFO, seed=5
        )
        bench = MemBench(SNOWBALL_A9500, os_model, seed=5)
        sizes = [k * 1024 for k in (1, 2, 4, 8, 16, 24, 32, 40, 48, 50)]
        return bench.run_experiment(array_sizes=sizes, replicates=42, seed=5)

    def test_42_replicates_per_size(self, results):
        for size in (1024, 32 * 1024, 50 * 1024):
            assert len(results.where(array_bytes=size)) == 42

    def test_bimodal_at_fixed_size(self, results):
        values = [s.value for s in results.where(array_bytes=16 * 1024)]
        assert is_bimodal(values, ratio=2.5)

    def test_degraded_mode_is_about_5x_lower(self, results):
        nominal = [
            s.value for s in results.where(array_bytes=16 * 1024, degraded=False)
        ]
        degraded = [
            s.value for s in results.where(array_bytes=16 * 1024, degraded=True)
        ]
        assert nominal and degraded
        ratio = (sum(nominal) / len(nominal)) / (sum(degraded) / len(degraded))
        assert 3.5 < ratio < 6.0

    def test_bandwidth_drops_past_l1(self, results):
        def nominal_mean(size):
            values = [
                s.value for s in results.where(array_bytes=size, degraded=False)
            ]
            return sum(values) / len(values)

        assert nominal_mean(16 * 1024) > nominal_mean(50 * 1024) * 1.1

    def test_sequence_plot_shows_consecutive_degradation(self, results):
        degraded_seq = [s.sequence for s in results if s.factors["degraded"]]
        assert len(degraded_seq) > 10
        adjacent = sum(1 for a, b in zip(degraded_seq, degraded_seq[1:]) if b == a + 1)
        assert adjacent / len(degraded_seq) > 0.8


class TestFigure6Pipeline:
    """Element-size x unroll grid on both platforms."""

    @staticmethod
    def _grid(machine, seed=3):
        os_model = OSModel.boot(machine, seed=seed)
        bench = MemBench(machine, os_model, seed=seed)
        results = bench.run_variant_grid(array_bytes=50 * 1024, replicates=3, seed=seed)

        def mean(bits, unroll):
            vals = results.where(elem_bits=bits, unroll=unroll).values()
            return sum(vals) / len(vals)

        return mean

    def test_xeon_both_optimizations_always_help(self):
        mean = self._grid(XEON_X5550)
        for bits in (32, 64, 128):
            assert mean(bits, 8) > mean(bits, 1) * 0.99
        assert mean(128, 8) > mean(64, 8) * 0.95 > mean(32, 8) * 0.9

    def test_arm_pathologies(self):
        mean = self._grid(SNOWBALL_A9500)
        assert mean(64, 8) == max(
            mean(b, u) for b in (32, 64, 128) for u in (1, 8)
        )
        assert mean(128, 8) < mean(128, 1)           # unrolling detrimental
        assert mean(128, 1) < mean(64, 1)            # 128b no better than 64b
        assert abs(mean(128, 1) - mean(32, 1)) / mean(32, 1) < 0.35

    def test_doubling_element_size_roughly_doubles_bandwidth(self):
        """'increasing element size from 32 bits to 64 bits practically
        doubles the bandwidths on both architectures'."""
        for machine in (XEON_X5550, SNOWBALL_A9500):
            mean = self._grid(machine)
            assert 1.4 < mean(64, 1) / mean(32, 1) < 2.3


class TestFigure7Pipeline:
    """magicfilter tuning sweep on Nehalem and Tegra2."""

    def test_sweep_produces_both_counters_for_all_unrolls(self):
        bench = MagicFilterBenchmark(TEGRA2_NODE)
        sweep = bench.sweep()
        assert set(sweep) == set(range(1, 13))
        for counters in sweep.values():
            assert counters.cycles > 0
            assert counters.cache_accesses > 0

    def test_paper_sweet_spots(self):
        assert MagicFilterBenchmark(XEON_X5550).sweet_spot() == list(range(4, 13))
        assert MagicFilterBenchmark(TEGRA2_NODE).sweet_spot() == [4, 5, 6, 7]

    def test_scale_difference_between_platforms(self):
        """'The shapes of the curves are somehow similar but differ
        drastically in scale.'"""
        xeon = MagicFilterBenchmark(XEON_X5550)
        tegra = MagicFilterBenchmark(TEGRA2_NODE)
        best_x = xeon.variant_cost(xeon.best_unroll()).cycles_per_element
        best_t = tegra.variant_cost(tegra.best_unroll()).cycles_per_element
        assert best_t > 5 * best_x


class TestPageAllocationPipeline:
    """§V-A-1 as a pipeline: run-to-run divergence appears exactly when
    physical memory is fragmented and the array is near the L1 size."""

    @staticmethod
    def _ideal_bandwidth(seed, fragmentation, size=32 * 1024):
        os_model = OSModel.boot(
            SNOWBALL_A9500, fragmentation=fragmentation, seed=seed
        )
        bench = MemBench(SNOWBALL_A9500, os_model, seed=seed)
        from repro.kernels.membench import MemBenchConfig
        return bench.measure(
            MemBenchConfig(array_bytes=size)
        ).ideal_bandwidth_bytes_per_s

    def test_clean_system_is_reproducible(self):
        values = {round(self._ideal_bandwidth(s, 0.0)) for s in range(5)}
        assert len(values) == 1

    def test_fragmented_system_diverges_between_runs(self):
        values = {round(self._ideal_bandwidth(s, 0.85)) for s in range(8)}
        assert len(values) > 1

    def test_fragmentation_never_helps(self):
        clean = self._ideal_bandwidth(0, 0.0)
        for seed in range(6):
            assert self._ideal_bandwidth(seed, 0.85) <= clean * 1.001
