"""`repro reproduce-all`: the one-command reproduction bundle.

The ISSUE acceptance criteria, on a reduced preset (``--only``):

* the bundle regenerates pinned artefacts with a sha256 manifest;
* a warm (fully cached) rerun is byte-identical and reports zero
  recomputed points;
* the manifest digest printed on stdout matches the manifest bytes;
* ``verify_bundle`` round-trips and catches tampering.
"""

import hashlib
import json
from pathlib import Path

from repro.cli import main
from repro.obs.bundle import (
    MANIFEST_NAME,
    load_bundle_manifest,
    sha256_file,
    verify_bundle,
)


def run_bundle(out_dir, capsys, *, only="fig3,fig7", seeds=2):
    """One reproduce-all invocation; returns (stdout, stderr)."""
    code = main([
        "reproduce-all", "--quick", "--seeds", str(seeds),
        "--only", only, "--out", str(out_dir),
    ])
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return captured.out, captured.err


def tree_bytes(root):
    """Map of relative path -> file bytes for a directory tree."""
    root = Path(root)
    return {
        path.relative_to(root).as_posix(): path.read_bytes()
        for path in sorted(root.rglob("*")) if path.is_file()
    }


class TestReproduceAll:
    def test_warm_rerun_is_byte_identical_and_recomputes_nothing(
        self, tmp_path, capsys
    ):
        cold_out, cold_err = run_bundle(tmp_path / "cold", capsys)
        warm_out, warm_err = run_bundle(tmp_path / "warm", capsys)
        # Same manifest digest on stdout, zero recomputed points on
        # the warm pass, and every file byte-identical.
        assert cold_out == warm_out
        assert "[bundle] recomputed 0 | hits" in warm_err.splitlines()[-1]
        assert tree_bytes(tmp_path / "cold") == tree_bytes(tmp_path / "warm")

    def test_manifest_digest_and_hashes_are_real(self, tmp_path, capsys):
        out_dir = tmp_path / "bundle"
        stdout, _ = run_bundle(out_dir, capsys)
        manifest_path = out_dir / MANIFEST_NAME
        assert stdout.strip() == hashlib.sha256(
            manifest_path.read_bytes()
        ).hexdigest()
        manifest = load_bundle_manifest(out_dir)
        assert sorted(manifest["artefacts"]) == ["fig3", "fig7"]
        for artefact, record in manifest["artefacts"].items():
            assert record["seeds"] == [7, 8]
            assert record["confidence"] == 0.95
            for relative, digest in record["files"].items():
                assert sha256_file(out_dir / relative) == digest
        assert verify_bundle(out_dir) == []

    def test_bundle_carries_stdout_metrics_and_summaries(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "bundle"
        run_bundle(out_dir, capsys)
        assert "Figure 3a" in (out_dir / "fig3" / "stdout.txt").read_text(
            encoding="utf-8"
        )
        metrics = json.loads(
            (out_dir / "fig3" / "metrics.json").read_text(encoding="utf-8")
        )
        # Deterministic export: cache-state counters must be absent.
        assert "engine.cache.misses" not in metrics["counters"]
        summary = json.loads(
            (out_dir / "fig3" / "summary.json").read_text(encoding="utf-8")
        )
        assert summary["seeds"] == [7, 8]
        assert "linpack" in summary["artefacts"]["fig3"]["series"]
        # fig7 is single-series/no-replication: stdout + metrics only.
        assert not (out_dir / "fig7" / "summary.json").exists()

    def test_verify_bundle_detects_tampering(self, tmp_path, capsys):
        out_dir = tmp_path / "bundle"
        run_bundle(out_dir, capsys, only="fig7")
        target = out_dir / "fig7" / "stdout.txt"
        target.write_text(
            target.read_text(encoding="utf-8") + "tampered\n",
            encoding="utf-8",
        )
        problems = verify_bundle(out_dir)
        assert any("fig7/stdout.txt" in problem for problem in problems)

    def test_unknown_only_selection_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "reproduce-all", "--quick", "--only", "fig3,nonsense",
            "--out", str(tmp_path / "bundle"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "nonsense" in captured.err
