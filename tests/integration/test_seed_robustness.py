"""Seed robustness: the paper's qualitative findings must not hinge on
one lucky RNG stream (MODELING.md's sensitivity claim)."""

import pytest

from repro.apps import BigDFT
from repro.arch import SNOWBALL_A9500
from repro.cluster import MpiJob, tibidabo
from repro.core.stats import is_bimodal
from repro.kernels import MagicFilterBenchmark, MemBench
from repro.osmodel import OSModel, SchedulingPolicy
from repro.tracing import TraceRecorder, analyze_collectives


class TestFigure5AcrossSeeds:
    @pytest.mark.parametrize("seed", [5, 23, 91, 777])
    def test_rt_modes_always_well_separated(self, seed):
        """Whenever both regimes appear in a run's window, the sample
        is bimodal; a window caught entirely inside one regime is
        legitimately unimodal (a rare-entry Markov chain does that),
        but never something in between."""
        os_model = OSModel.boot(
            SNOWBALL_A9500, policy=SchedulingPolicy.FIFO, seed=seed
        )
        bench = MemBench(SNOWBALL_A9500, os_model, seed=seed)
        results = bench.run_experiment(
            array_sizes=[16 * 1024, 32 * 1024], replicates=42, seed=seed
        )
        at_16k = results.where(array_bytes=16 * 1024)
        values = [s.value for s in at_16k]
        degraded_fraction = sum(
            1 for s in at_16k if s.factors["degraded"]
        ) / len(at_16k)
        if 0.1 <= degraded_fraction <= 0.9:
            assert is_bimodal(values, ratio=2.5)
        else:
            # Single-regime window: spread stays within scheduler noise.
            assert not is_bimodal(values, ratio=2.5)

    def test_degradation_appears_in_most_long_runs(self):
        """At the paper's experiment length (42 reps x many sizes,
        hundreds of samples) most runs catch the degraded regime."""
        hits = 0
        sizes = [k * 1024 for k in (1, 2, 4, 8, 12, 16, 24, 32, 40, 48)]
        for seed in (5, 23, 91, 130, 777):
            os_model = OSModel.boot(
                SNOWBALL_A9500, policy=SchedulingPolicy.FIFO, seed=seed
            )
            bench = MemBench(SNOWBALL_A9500, os_model, seed=seed)
            results = bench.run_experiment(
                array_sizes=sizes, replicates=42, seed=seed
            )
            if any(s.factors["degraded"] for s in results):
                hits += 1
        assert hits >= 3  # the pathology is recurrent, not a fluke


class TestFigure4AcrossSeeds:
    @pytest.mark.parametrize("seed", [7, 21, 63])
    def test_incast_delays_recur(self, seed):
        cluster = tibidabo(num_nodes=18, seed=seed)
        recorder = TraceRecorder()
        app = BigDFT(scf_iterations=4)
        MpiJob(cluster, 36, app.rank_program(cluster, 36), tracer=recorder).run()
        report = analyze_collectives(recorder, "alltoallv")
        assert report.delayed_fraction > 0.3


class TestFigure7IsDeterministic:
    def test_counter_model_has_no_randomness(self):
        """The tuning landscape is a pure function of the machine."""
        sweeps = [
            MagicFilterBenchmark(SNOWBALL_A9500).sweep() for _ in range(2)
        ]
        for unroll in range(1, 13):
            assert sweeps[0][unroll].cycles == sweeps[1][unroll].cycles


class TestPageAllocationAcrossSeeds:
    def test_fragmentation_effect_recurs(self):
        from repro.kernels.membench import MemBenchConfig
        slowdowns = 0
        baseline = None
        for seed in range(10):
            os_model = OSModel.boot(SNOWBALL_A9500, fragmentation=0.85, seed=seed)
            bench = MemBench(SNOWBALL_A9500, os_model, seed=seed)
            bandwidth = bench.measure(
                MemBenchConfig(array_bytes=32 * 1024)
            ).ideal_bandwidth_bytes_per_s
            if baseline is None:
                clean_os = OSModel.boot(SNOWBALL_A9500, seed=seed)
                clean = MemBench(SNOWBALL_A9500, clean_os, seed=seed)
                baseline = clean.measure(
                    MemBenchConfig(array_bytes=32 * 1024)
                ).ideal_bandwidth_bytes_per_s
            if bandwidth < baseline * 0.995:
                slowdowns += 1
        assert slowdowns >= 3  # scattered pages bite repeatedly
