"""Integration tests for the trace-analysis CLI tools.

``repro trace-report`` must write the full artefact bundle (report
JSON + markdown, Chrome trace, deterministic metrics, run manifest)
and print the Figure 4 diagnosis; ``repro diff-metrics`` is the
regression gate CI runs against ``tests/golden/`` — its exit code IS
the contract.  Also pins the ``--metrics-out`` failure mode: a clean
one-line error, never a traceback.
"""

import json

import pytest

from repro.cli import main
from repro.metrics import NULL_REGISTRY, current_registry
from repro.tracing.chrome import validate_chrome_trace


@pytest.fixture(scope="module")
def report_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace-report")
    assert main([
        "trace-report", "--out", str(out),
        "--chrome-out", str(out / "trace.chrome.json"),
    ]) == 0
    return out


@pytest.fixture(scope="module")
def stream_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace-stream")
    assert main(["trace-report", "--stream", "--out", str(out)]) == 0
    return out


class TestTraceReport:
    def test_writes_the_full_artefact_bundle(self, report_dir):
        names = {p.name for p in report_dir.iterdir()}
        assert {"report.json", "report.md", "trace.chrome.json",
                "metrics.json"} <= names
        manifests = [n for n in names if n.startswith("trace-report-bigdft-")]
        assert len(manifests) == 1

    def test_chrome_is_skipped_without_chrome_out(self, tmp_path):
        assert main(["trace-report", "--out", str(tmp_path)]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert "trace.chrome.json" not in names
        assert {"report.json", "report.md", "metrics.json"} <= names
        manifest_path = next(
            p for p in tmp_path.iterdir()
            if p.name.startswith("trace-report-bigdft-")
        )
        manifest = json.loads(manifest_path.read_text())
        assert "trace.chrome.json" not in manifest["attachments"]

    def test_report_diagnoses_figure_4(self, report_dir):
        payload = json.loads((report_dir / "report.json").read_text())
        assert payload["num_ranks"] == 36
        dominant = payload["wait_states"]["dominant"]
        assert dominant["category"] == "switch-contention"
        assert dominant["label"] == "alltoallv"

    def test_chrome_trace_validates(self, report_dir):
        document = json.loads((report_dir / "trace.chrome.json").read_text())
        validate_chrome_trace(document)
        assert document["otherData"]["num_ranks"] == 36

    def test_manifest_links_every_artefact(self, report_dir):
        manifest_path = next(
            p for p in report_dir.iterdir()
            if p.name.startswith("trace-report-bigdft-")
        )
        manifest = json.loads(manifest_path.read_text())
        attachments = manifest["attachments"]
        assert set(attachments) == {
            "report.json", "report.md", "trace.chrome.json", "metrics.json"
        }

    def test_stdout_is_the_markdown_report(self, tmp_path, capsys):
        assert main(["trace-report", "--out", str(tmp_path)]) == 0
        out, err = capsys.readouterr()
        assert "# Trace report: fig4-bigdft-36ranks-seed7" in out
        assert "switch-contention" in out
        assert "[trace-report] wrote" in err

    def test_registry_restored_afterwards(self, report_dir):
        assert current_registry() is NULL_REGISTRY


class TestStreamMode:
    def test_stream_report_is_byte_identical_to_batch(
        self, report_dir, stream_dir
    ):
        assert (stream_dir / "report.json").read_bytes() == (
            (report_dir / "report.json").read_bytes()
        )
        assert (stream_dir / "report.md").read_bytes() == (
            (report_dir / "report.md").read_bytes()
        )
        # trace.* metrics are volatile, so the deterministic metrics
        # snapshot matches too — streaming never perturbs goldens.
        assert (stream_dir / "metrics.json").read_bytes() == (
            (report_dir / "metrics.json").read_bytes()
        )

    def test_stream_stats_show_bounded_memory(self, stream_dir):
        payload = json.loads((stream_dir / "stream_stats.json").read_text())
        stats = payload["stats"]
        assert stats["events_ingested"] > 0
        assert stats["frontier_high_water"] < stats["events_ingested"]
        assert stats["retired_segments"] > 0
        assert "sampling" not in payload

    def test_stream_never_writes_a_chrome_trace(self, stream_dir):
        assert not (stream_dir / "trace.chrome.json").exists()

    def test_stream_plus_chrome_out_is_a_clean_error(self, tmp_path, capsys):
        code = main([
            "trace-report", "--stream", "--out", str(tmp_path / "o"),
            "--chrome-out", str(tmp_path / "c.json"),
        ])
        _, err = capsys.readouterr()
        assert code == 1
        assert "cannot be" in err and "Traceback" not in err

    def test_sample_without_stream_is_a_clean_error(self, tmp_path, capsys):
        code = main([
            "trace-report", "--sample", "64", "--out", str(tmp_path / "o"),
        ])
        _, err = capsys.readouterr()
        assert code == 1
        assert "--sample only applies" in err and "Traceback" not in err

    def test_sampled_stream_reports_error_bounds(self, tmp_path):
        out = tmp_path / "sampled"
        assert main([
            "trace-report", "--stream", "--sample", "128",
            "--out", str(out),
        ]) == 0
        payload = json.loads((out / "stream_stats.json").read_text())
        sampling = payload["sampling"]
        assert sampling["mode"] == "reservoir"
        for entry in sampling["entries"]:
            assert entry["ci95_s"] >= 0.0
            assert entry["sampled"] <= entry["population"]


class TestDiffMetrics:
    def test_identical_files_exit_zero(self, report_dir, capsys):
        metrics = str(report_dir / "metrics.json")
        assert main(["diff-metrics", metrics, metrics]) == 0
        out, _ = capsys.readouterr()
        assert "no regressions" in out

    def test_report_compares_against_its_own_metrics(self, report_dir, capsys):
        assert main([
            "diff-metrics", str(report_dir / "report.json"),
            str(report_dir / "metrics.json"),
        ]) == 0
        capsys.readouterr()

    def test_injected_regression_exits_nonzero(
        self, report_dir, tmp_path, capsys
    ):
        payload = json.loads((report_dir / "metrics.json").read_text())
        name = "des.events_dispatched"
        payload["counters"][name]["value"] *= 1.10
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(payload))
        code = main([
            "diff-metrics", str(report_dir / "metrics.json"), str(drifted),
            "--threshold", "5%",
        ])
        out, _ = capsys.readouterr()
        assert code == 1
        assert "regression" in out and name in out

    def test_same_drift_passes_a_looser_threshold(
        self, report_dir, tmp_path, capsys
    ):
        payload = json.loads((report_dir / "metrics.json").read_text())
        payload["counters"]["des.events_dispatched"]["value"] *= 1.10
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(payload))
        assert main([
            "diff-metrics", str(report_dir / "metrics.json"), str(drifted),
            "--threshold", "15%",
        ]) == 0
        capsys.readouterr()

    def test_wrong_path_count_is_a_clean_error(self, capsys):
        assert main(["diff-metrics", "only-one.json"]) == 1
        _, err = capsys.readouterr()
        assert "exactly two" in err

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        a = tmp_path / "missing-a.json"
        b = tmp_path / "missing-b.json"
        assert main(["diff-metrics", str(a), str(b)]) == 1
        _, err = capsys.readouterr()
        assert "error in diff-metrics" in err and "Traceback" not in err


class TestMetricsOutFailureModes:
    def test_missing_parent_directories_are_created(self, tmp_path, capsys):
        target = tmp_path / "deep" / "nested" / "m.json"
        assert main(["table2", "--metrics-out", str(target)]) == 0
        capsys.readouterr()
        assert json.loads(target.read_text())["schema"] == 1

    def test_parent_that_is_a_file_fails_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        target = blocker / "m.json"
        assert main(["table2", "--metrics-out", str(target)]) == 1
        _, err = capsys.readouterr()
        assert "cannot write metrics" in err
        assert "Traceback" not in err
