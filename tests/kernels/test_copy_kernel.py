"""Tests for the STREAM-style copy kernel (write path end-to-end)."""

import pytest

from repro.arch.machines import SNOWBALL_A9500
from repro.errors import ConfigurationError
from repro.kernels import MemBench
from repro.kernels.membench import MemBenchConfig
from repro.osmodel import OSModel


def _bench(seed=6):
    return MemBench(SNOWBALL_A9500, OSModel.boot(SNOWBALL_A9500, seed=seed), seed=seed)


class TestCopyKernel:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            MemBenchConfig(array_bytes=4096, kind="triad")

    def test_copy_counts_both_streams(self):
        bench = _bench()
        read = bench.measure(MemBenchConfig(array_bytes=16 * 1024, kind="read"))
        copy = bench.measure(MemBenchConfig(array_bytes=16 * 1024, kind="copy"))
        assert copy.cost.bytes_accessed == 2 * read.cost.bytes_accessed

    def test_copy_is_slower_per_pass_than_read(self):
        bench = _bench()
        read = bench.measure(MemBenchConfig(array_bytes=16 * 1024, kind="read"))
        copy = bench.measure(MemBenchConfig(array_bytes=16 * 1024, kind="copy"))
        assert copy.cost.cycles > read.cost.cycles

    def test_copy_dirties_and_writes_back(self):
        """An L1-overflowing copy must evict dirty destination lines,
        producing writebacks — the write-back path exercised through
        the full stack."""
        bench = _bench()
        bench.measure(MemBenchConfig(array_bytes=48 * 1024, kind="copy"))
        assert bench.hierarchy.levels[0].writebacks > 0

    def test_read_kernel_never_writes_back(self):
        bench = _bench()
        bench.measure(MemBenchConfig(array_bytes=48 * 1024, kind="read"))
        assert bench.hierarchy.levels[0].writebacks == 0

    def test_copy_within_run_still_stable(self):
        """The page-reuse quirk applies to both arrays of the copy."""
        bench = _bench()
        config = MemBenchConfig(array_bytes=8 * 1024, kind="copy")
        first = bench.measure(config).ideal_bandwidth_bytes_per_s
        for _ in range(3):
            assert bench.measure(config).ideal_bandwidth_bytes_per_s == first
