"""Tests for repro.kernels.counters and repro.kernels.codegen."""

import pytest

from repro.arch.machines import SNOWBALL_A9500, TEGRA2_NODE, XEON_X5550
from repro.errors import ConfigurationError
from repro.kernels.codegen import (
    LoopKernel,
    allocate_registers,
    schedule_loop,
)
from repro.kernels.counters import SUPPORTED_EVENTS, CounterSet


class TestCounterSet:
    def test_record_and_read(self):
        counters = CounterSet()
        counters.record("PAPI_TOT_CYC", 100.0)
        counters.record("PAPI_TOT_CYC", 50.0)
        assert counters.read("PAPI_TOT_CYC") == 150.0

    def test_unknown_event_rejected(self):
        counters = CounterSet()
        with pytest.raises(ConfigurationError):
            counters.record("PAPI_MADE_UP", 1.0)
        with pytest.raises(ConfigurationError):
            counters.read("PAPI_MADE_UP")

    def test_uncollected_event_rejected(self):
        with pytest.raises(ConfigurationError, match="not collected"):
            CounterSet().read("PAPI_TOT_CYC")

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            CounterSet().record("PAPI_TOT_CYC", -1.0)

    def test_shorthands(self):
        counters = CounterSet({"PAPI_TOT_CYC": 10.0, "PAPI_L1_DCA": 4.0})
        assert counters.cycles == 10.0
        assert counters.cache_accesses == 4.0

    def test_per_normalization(self):
        counters = CounterSet({"PAPI_TOT_CYC": 100.0})
        assert counters.per(50).cycles == 2.0
        with pytest.raises(ConfigurationError):
            counters.per(0)

    def test_collected_lists_events(self):
        counters = CounterSet({"PAPI_TOT_CYC": 1.0})
        assert counters.collected() == ("PAPI_TOT_CYC",)

    def test_all_supported_events_accepted(self):
        counters = CounterSet()
        for event in SUPPORTED_EVENTS:
            counters.record(event, 1.0)
        assert len(counters.collected()) == len(SUPPORTED_EVENTS)


def _kernel(**overrides) -> LoopKernel:
    defaults = dict(
        name="conv",
        loads_per_element=16.0,
        stores_per_element=1.0,
        chain_ops_per_element=32.0,
        independent_ops_per_element=0.0,
        element_bits=64,
        live_per_unroll=2.0,
        invariant_registers=8,
        address_registers=3,
        loop_overhead_instructions=4.0,
    )
    defaults.update(overrides)
    return LoopKernel(**defaults)


class TestAllocateRegisters:
    def test_small_unroll_fits_tegra2(self):
        pressure = allocate_registers(TEGRA2_NODE.core, _kernel(), 2)
        assert not pressure.spills
        assert pressure.invariants_resident

    def test_deep_unroll_spills_tegra2(self):
        pressure = allocate_registers(TEGRA2_NODE.core, _kernel(), 12)
        assert pressure.spills

    def test_nehalem_larger_capacity(self):
        tegra = allocate_registers(TEGRA2_NODE.core, _kernel(), 8)
        xeon = allocate_registers(XEON_X5550.core, _kernel(), 8)
        assert xeon.capacity > tegra.capacity
        assert xeon.spilled_values <= tegra.spilled_values

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ConfigurationError):
            allocate_registers(TEGRA2_NODE.core, _kernel(), 0)


class TestScheduleLoop:
    def test_unrolling_amortizes_overhead(self):
        u1 = schedule_loop(XEON_X5550.core, _kernel(), 1)
        u4 = schedule_loop(XEON_X5550.core, _kernel(), 4)
        assert u4.cycles_per_element < u1.cycles_per_element

    def test_spills_add_accesses(self):
        shallow = schedule_loop(TEGRA2_NODE.core, _kernel(), 4)
        deep = schedule_loop(TEGRA2_NODE.core, _kernel(), 12)
        assert deep.cache_accesses_per_element > 0
        assert deep.pressure.spilled_values > shallow.pressure.spilled_values

    def test_slow_fpu_pays_more_per_chain_op(self):
        xeon = schedule_loop(XEON_X5550.core, _kernel(), 6)
        tegra = schedule_loop(TEGRA2_NODE.core, _kernel(), 6)
        assert tegra.cycles_per_element > xeon.cycles_per_element

    def test_negative_kernel_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            _kernel(loads_per_element=-1.0)

    def test_snowball_dp_uses_vfp_not_neon(self):
        """Scheduling a double-precision chain on the A9500 must not
        claim NEON throughput (NEON is SP-only)."""
        scheduled = schedule_loop(SNOWBALL_A9500.core, _kernel(), 4)
        # At 0.5 flops/cycle, 32 chain flops cost >= 64 cycles even
        # with perfect latency hiding.
        assert scheduled.cycles_per_element >= 32.0 / 0.5 * 0.9
