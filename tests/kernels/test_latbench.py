"""Tests for repro.kernels.latbench (pointer-chase latency)."""

import pytest

from repro.arch.machines import SNOWBALL_A9500, XEON_X5550
from repro.errors import ConfigurationError
from repro.kernels.latbench import LatBench, latency_plateaus
from repro.osmodel import OSModel


def _bench(machine, seed=1):
    return LatBench(machine, OSModel.boot(machine, seed=seed), seed=seed)


class TestMeasure:
    def test_l1_resident_latency_matches_geometry(self):
        bench = _bench(SNOWBALL_A9500)
        sample = bench.measure(8 * 1024)
        assert sample.dominant_level == "L1d"
        # L1 hit latency (4) + chase overhead (1).
        assert sample.cycles_per_load == pytest.approx(5.0, abs=0.5)

    def test_l2_plateau_snowball(self):
        bench = _bench(SNOWBALL_A9500)
        sample = bench.measure(128 * 1024)
        assert sample.dominant_level == "L2"
        l2 = SNOWBALL_A9500.cache("L2").latency_cycles
        assert sample.cycles_per_load == pytest.approx(l2 + 1, rel=0.15)

    def test_dram_latency_dominates_huge_arrays(self):
        bench = _bench(SNOWBALL_A9500)
        sample = bench.measure(4 * 1024 * 1024)
        assert sample.dominant_level == "DRAM"
        dram_cycles = (
            SNOWBALL_A9500.memory.latency_ns * 1e-9
            * SNOWBALL_A9500.core.frequency_hz
        )
        assert sample.cycles_per_load > dram_cycles  # plus TLB walks

    def test_latency_monotone_in_array_size(self):
        bench = _bench(XEON_X5550)
        values = [
            bench.measure(size).cycles_per_load
            for size in (8 * 1024, 128 * 1024, 2 * 1024 * 1024)
        ]
        assert values == sorted(values)

    def test_chase_defeats_mlp(self):
        """The same DRAM-resident array costs far more per access in a
        dependent chase than the bandwidth model's overlapped supply."""
        bench = _bench(SNOWBALL_A9500)
        sample = bench.measure(2 * 1024 * 1024)
        overlapped = (
            SNOWBALL_A9500.memory.latency_ns * 1e-9
            * SNOWBALL_A9500.core.frequency_hz
            / SNOWBALL_A9500.core.mem_parallelism
        )
        assert sample.cycles_per_load > 1.8 * overlapped

    def test_tiny_array_rejected(self):
        with pytest.raises(ConfigurationError):
            _bench(SNOWBALL_A9500).measure(16)

    def test_zero_passes_rejected(self):
        with pytest.raises(ConfigurationError):
            _bench(SNOWBALL_A9500).measure(8 * 1024, passes=0)


class TestSweep:
    def test_plateaus_cover_all_levels(self):
        bench = _bench(XEON_X5550)
        results = bench.sweep(
            [8 * 1024, 128 * 1024, 2 * 1024 * 1024, 32 * 1024 * 1024]
        )
        plateaus = latency_plateaus(results)
        assert "L1d" in plateaus
        assert "L2" in plateaus
        assert plateaus["L1d"] < plateaus["L2"]

    def test_empty_results_rejected(self):
        from repro.core.measurement import MeasurementSet
        with pytest.raises(ConfigurationError):
            latency_plateaus(MeasurementSet())


class TestCacheWriteSupport:
    def test_store_allocates_and_dirties(self):
        from repro.arch.cache import CacheGeometry
        from repro.memsim.cache_sim import SetAssociativeCache
        cache = SetAssociativeCache(
            CacheGeometry("c", 4 * 32, 2, 32, 1)
        )
        assert cache.access(0, write=True) is False
        assert cache.is_dirty(0)
        assert cache.access(0) is True  # write-allocate hit

    def test_dirty_eviction_counts_writeback(self):
        from repro.arch.cache import CacheGeometry
        from repro.memsim.cache_sim import SetAssociativeCache
        cache = SetAssociativeCache(
            CacheGeometry("c", 2 * 32, 2, 32, 1)  # one set, 2 ways
        )
        cache.access(0, write=True)
        cache.access(32)
        cache.access(64)  # evicts dirty line 0
        assert cache.writebacks == 1
        assert not cache.is_dirty(0)

    def test_clean_eviction_has_no_writeback(self):
        from repro.arch.cache import CacheGeometry
        from repro.memsim.cache_sim import SetAssociativeCache
        cache = SetAssociativeCache(
            CacheGeometry("c", 2 * 32, 2, 32, 1)
        )
        cache.access(0)
        cache.access(32)
        cache.access(64)
        assert cache.writebacks == 0
