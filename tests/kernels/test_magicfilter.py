"""Tests for repro.kernels.magicfilter (numerics + Figure 7 model)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machines import SNOWBALL_A9500, TEGRA2_NODE, XEON_X5550
from repro.errors import ConfigurationError
from repro.kernels.magicfilter import (
    MAGICFILTER_LENGTH,
    MAGICFILTER_TAPS,
    MagicFilterBenchmark,
    UNROLL_RANGE,
    apply_magicfilter_3d,
    magicfilter_1d,
    magicfilter_1d_unrolled,
)


class TestTaps:
    def test_sixteen_taps(self):
        assert MAGICFILTER_TAPS.size == MAGICFILTER_LENGTH == 16

    def test_normalized(self):
        assert MAGICFILTER_TAPS.sum() == pytest.approx(1.0)


class TestNumericKernel:
    def test_constant_field_is_preserved(self):
        """A normalized filter leaves a constant potential unchanged."""
        data = np.full(40, 3.25)
        out = magicfilter_1d(data)
        np.testing.assert_allclose(out, data, rtol=1e-12)

    def test_linearity(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=32)
        b = rng.normal(size=32)
        lhs = magicfilter_1d(2.0 * a + b)
        rhs = 2.0 * magicfilter_1d(a) + magicfilter_1d(b)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-12)

    def test_shift_equivariance_under_periodicity(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=48)
        shifted = np.roll(data, 5)
        np.testing.assert_allclose(
            magicfilter_1d(shifted), np.roll(magicfilter_1d(data), 5), rtol=1e-12
        )

    def test_explicit_convolution_definition(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=24)
        taps = MAGICFILTER_TAPS
        out = magicfilter_1d(data)
        n = data.size
        offset = taps.size // 2
        for i in (0, 7, 23):
            expected = sum(
                taps[k] * data[(i + k - offset) % n] for k in range(taps.size)
            )
            assert out[i] == pytest.approx(expected)

    def test_3d_separability_axis_order_independent(self):
        rng = np.random.default_rng(4)
        volume = rng.normal(size=(6, 7, 8))
        once = apply_magicfilter_3d(volume)
        manual = magicfilter_1d(
            magicfilter_1d(magicfilter_1d(volume, axis=2), axis=1), axis=0
        )
        np.testing.assert_allclose(once, manual, rtol=1e-12, atol=1e-14)

    def test_3d_requires_3d_input(self):
        with pytest.raises(ConfigurationError):
            apply_magicfilter_3d(np.zeros((4, 4)))

    def test_empty_taps_rejected(self):
        with pytest.raises(ConfigurationError):
            magicfilter_1d(np.zeros(8), np.array([]))


class TestUnrolledVariants:
    @pytest.mark.parametrize("unroll", [1, 2, 3, 4, 5, 7, 8, 12])
    def test_every_unroll_degree_computes_identical_results(self, unroll):
        """The paper's generator contract: all 12 variants are
        semantically identical."""
        rng = np.random.default_rng(unroll)
        data = rng.normal(size=37)
        reference = magicfilter_1d(data)
        unrolled = magicfilter_1d_unrolled(data, unroll=unroll)
        np.testing.assert_allclose(unrolled, reference, rtol=1e-12)

    def test_remainder_loop_handles_non_multiple_sizes(self):
        data = np.arange(10, dtype=float)
        np.testing.assert_allclose(
            magicfilter_1d_unrolled(data, unroll=8),
            magicfilter_1d(data),
            rtol=1e-12,
        )

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ConfigurationError):
            magicfilter_1d_unrolled(np.zeros(8), unroll=0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(17, 40), st.integers(1, 12))
    def test_property_unrolled_equals_reference(self, n, unroll):
        rng = np.random.default_rng(n * 13 + unroll)
        data = rng.normal(size=n)
        np.testing.assert_allclose(
            magicfilter_1d_unrolled(data, unroll=unroll),
            magicfilter_1d(data),
            rtol=1e-10,
        )


class TestCounterModel:
    def test_nehalem_sweet_spot_is_4_to_12(self):
        """Figure 7a: '[4:12] range' on Nehalem."""
        bench = MagicFilterBenchmark(XEON_X5550)
        assert bench.sweet_spot() == list(range(4, 13))

    def test_tegra2_sweet_spot_is_4_to_7(self):
        """Figure 7b: 'smaller on Tegra2 (the [4:7] range)'."""
        bench = MagicFilterBenchmark(TEGRA2_NODE)
        assert bench.sweet_spot() == [4, 5, 6, 7]

    def test_tegra2_cycles_grow_significantly_at_12(self):
        """'the total number of cycles significantly grows when
        unrolling too much (unroll=12)'."""
        bench = MagicFilterBenchmark(TEGRA2_NODE)
        best = bench.variant_cost(bench.best_unroll()).cycles_per_element
        worst = bench.variant_cost(12).cycles_per_element
        assert worst > 1.8 * best

    def test_nehalem_cycles_stay_flat_at_12(self):
        bench = MagicFilterBenchmark(XEON_X5550)
        best = bench.variant_cost(bench.best_unroll()).cycles_per_element
        assert bench.variant_cost(12).cycles_per_element < 1.3 * best

    def test_curves_fall_steeply_from_unroll_1(self):
        """Both curves are 'roughly convex': unroll 1 is far from the
        optimum on both machines."""
        for machine in (XEON_X5550, TEGRA2_NODE):
            bench = MagicFilterBenchmark(machine)
            u1 = bench.variant_cost(1).cycles_per_element
            best = bench.variant_cost(bench.best_unroll()).cycles_per_element
            assert u1 > 3 * best

    def test_tegra2_accesses_grow_from_unroll_4(self):
        """'the number of cache accesses that start growing very
        quickly (starting at unroll=4)'."""
        bench = MagicFilterBenchmark(TEGRA2_NODE)
        accesses = {u: bench.variant_cost(u).accesses_per_element for u in UNROLL_RANGE}
        trough = min(accesses, key=accesses.get)
        assert trough <= 4
        assert accesses[12] > accesses[trough] * 1.5

    def test_nehalem_access_staircase_at_8_or_9(self):
        """'some sort of small staircase [...] unroll=9 for Nehalem'."""
        bench = MagicFilterBenchmark(XEON_X5550)
        accesses = {u: bench.variant_cost(u).accesses_per_element for u in UNROLL_RANGE}
        assert accesses[7] < accesses[9]  # the step exists
        assert min(accesses, key=accesses.get) in (6, 7, 8)

    def test_counters_scale_with_problem_size(self):
        small = MagicFilterBenchmark(TEGRA2_NODE, problem_shape=(8, 8, 8))
        large = MagicFilterBenchmark(TEGRA2_NODE, problem_shape=(16, 8, 8))
        ratio = large.counters(4).cycles / small.counters(4).cycles
        assert ratio == pytest.approx(2.0)

    def test_counters_report_flops(self):
        bench = MagicFilterBenchmark(TEGRA2_NODE, problem_shape=(4, 4, 4))
        counters = bench.counters(1)
        assert counters.read("PAPI_FP_OPS") == 3 * 64 * 32

    def test_snowball_slow_vfp_chain_dominates_small_unrolls(self):
        """A9500's NEON is SP-only: its DP chain behaves like a slow
        scalar FPU, so unroll 1 is catastrophic (latency-bound)."""
        bench = MagicFilterBenchmark(SNOWBALL_A9500)
        u1 = bench.variant_cost(1).cycles_per_element
        best = bench.variant_cost(bench.best_unroll()).cycles_per_element
        assert u1 > 4 * best
        assert 5 <= bench.best_unroll() <= 8

    def test_register_file_size_sets_the_sweet_spot_width(self):
        """The Figure 7 mechanism isolated: Tegra2 (16 double regs)
        has a strictly narrower sweet spot than the otherwise-similar
        A9500 (32 double registers via its NEON file)."""
        tegra = MagicFilterBenchmark(TEGRA2_NODE).sweet_spot()
        snowball = MagicFilterBenchmark(SNOWBALL_A9500).sweet_spot()
        assert max(tegra) < max(snowball)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            MagicFilterBenchmark(TEGRA2_NODE, problem_shape=(0, 4, 4))
        bench = MagicFilterBenchmark(TEGRA2_NODE)
        with pytest.raises(ConfigurationError):
            bench.variant_cost(0)
        with pytest.raises(ConfigurationError):
            bench.sweet_spot(())
