"""Tests for repro.kernels.membench (the §V-A microbenchmark)."""

import pytest

from repro.arch.machines import SNOWBALL_A9500, XEON_X5550
from repro.core.stats import is_bimodal
from repro.errors import ConfigurationError
from repro.kernels.membench import BandwidthSample, MemBench, MemBenchConfig
from repro.osmodel.system import OSModel, SchedulingPolicy


def _snowball_bench(policy=SchedulingPolicy.OTHER, seed=0, fragmentation=0.0):
    os_model = OSModel.boot(
        SNOWBALL_A9500, policy=policy, fragmentation=fragmentation, seed=seed
    )
    return MemBench(SNOWBALL_A9500, os_model, seed=seed)


class TestConfig:
    def test_variant_derived_from_config(self):
        config = MemBenchConfig(array_bytes=4096, elem_bits=64, unroll=8)
        assert config.variant.elem_bits == 64
        assert config.variant.unroll == 8

    def test_too_small_array_rejected(self):
        with pytest.raises(ConfigurationError):
            MemBenchConfig(array_bytes=4, elem_bits=64)


class TestMeasure:
    def test_returns_positive_bandwidth(self):
        bench = _snowball_bench()
        sample = bench.measure(MemBenchConfig(array_bytes=8 * 1024))
        assert isinstance(sample, BandwidthSample)
        assert sample.bandwidth_bytes_per_s > 0

    def test_small_arrays_beat_large_ones(self):
        """Figure 5a: bandwidth decreases past the L1 size."""
        bench = _snowball_bench()
        small = bench.measure(MemBenchConfig(array_bytes=8 * 1024))
        large = bench.measure(MemBenchConfig(array_bytes=50 * 1024))
        assert small.ideal_bandwidth_bytes_per_s > large.ideal_bandwidth_bytes_per_s

    def test_within_run_measurements_are_stable(self):
        """§V-A-1: 'almost no noise inside a run' — repeated
        malloc/free reuse the same frames, so ideal bandwidth repeats
        exactly."""
        bench = _snowball_bench()
        config = MemBenchConfig(array_bytes=32 * 1024)
        first = bench.measure(config).ideal_bandwidth_bytes_per_s
        for _ in range(5):
            assert bench.measure(config).ideal_bandwidth_bytes_per_s == first

    def test_runs_differ_when_memory_is_fragmented(self):
        """§V-A-1: 'from one run to another we were getting very
        different global behavior'."""
        ideals = set()
        for seed in range(8):
            bench = _snowball_bench(seed=seed, fragmentation=0.85)
            config = MemBenchConfig(array_bytes=32 * 1024)
            ideals.add(round(bench.measure(config).ideal_bandwidth_bytes_per_s))
        assert len(ideals) > 1

    def test_clean_boots_are_reproducible_across_runs(self):
        values = {
            round(
                _snowball_bench(seed=s).measure(
                    MemBenchConfig(array_bytes=32 * 1024)
                ).ideal_bandwidth_bytes_per_s
            )
            for s in range(4)
        }
        assert len(values) == 1


class TestExperiments:
    def test_rt_priority_produces_bimodal_bandwidth(self):
        """Figure 5a on the simulator: '2 modes of execution can be
        observed', degraded several times lower."""
        bench = _snowball_bench(policy=SchedulingPolicy.FIFO, seed=5)
        results = bench.run_experiment(
            array_sizes=[k * 1024 for k in (8, 16, 32, 48)],
            replicates=42,
            seed=5,
        )
        at_one_size = [s.value for s in results.where(array_bytes=16 * 1024)]
        assert is_bimodal(at_one_size, ratio=2.5)

    def test_rt_degraded_samples_are_consecutive(self):
        """Figure 5b: 'all degraded measures occurred consecutively'."""
        bench = _snowball_bench(policy=SchedulingPolicy.FIFO, seed=5)
        results = bench.run_experiment(
            array_sizes=[k * 1024 for k in (8, 16, 32, 48)],
            replicates=42,
            seed=5,
        )
        degraded_seq = [s.sequence for s in results if s.factors["degraded"]]
        assert len(degraded_seq) > 5
        runs = 1 + sum(1 for a, b in zip(degraded_seq, degraded_seq[1:]) if b != a + 1)
        assert runs <= len(degraded_seq) / 4

    def test_default_scheduler_is_unimodal(self):
        bench = _snowball_bench(policy=SchedulingPolicy.OTHER, seed=5)
        results = bench.run_experiment(
            array_sizes=[16 * 1024], replicates=42, seed=5
        )
        assert not is_bimodal(results.values(), ratio=2.5)

    def test_variant_grid_covers_figure6_cells(self):
        bench = _snowball_bench(seed=3)
        results = bench.run_variant_grid(
            array_bytes=50 * 1024, replicates=2, seed=3
        )
        cells = {(s.factors["elem_bits"], s.factors["unroll"]) for s in results}
        assert cells == {(b, u) for b in (32, 64, 128) for u in (1, 8)}

    def test_xeon_grid_monotone_in_width(self):
        """Figure 6a orderings on the Xeon."""
        os_model = OSModel.boot(XEON_X5550, seed=3)
        bench = MemBench(XEON_X5550, os_model, seed=3)
        results = bench.run_variant_grid(array_bytes=50 * 1024, replicates=2, seed=3)

        def mean_bw(bits, unroll):
            vals = results.where(elem_bits=bits, unroll=unroll).values()
            return sum(vals) / len(vals)

        assert mean_bw(64, 8) > mean_bw(32, 8)
        assert mean_bw(128, 8) > mean_bw(64, 8) * 0.95
        for bits in (32, 64, 128):
            assert mean_bw(bits, 8) >= mean_bw(bits, 1)

    def test_arm_grid_best_is_64bit_unrolled(self):
        """Figure 6b: 'The best configuration on ARM is obtained when
        using 64 bits and loop unrolling'."""
        bench = _snowball_bench(seed=3)
        results = bench.run_variant_grid(array_bytes=50 * 1024, replicates=2, seed=3)

        def mean_bw(bits, unroll):
            vals = results.where(elem_bits=bits, unroll=unroll).values()
            return sum(vals) / len(vals)

        best = max(
            ((b, u) for b in (32, 64, 128) for u in (1, 8)),
            key=lambda cell: mean_bw(*cell),
        )
        assert best == (64, 8)
        # 128-bit is no better than 32-bit, and unrolling it hurts.
        assert mean_bw(128, 1) <= mean_bw(32, 1) * 1.1
        assert mean_bw(128, 8) < mean_bw(128, 1)
