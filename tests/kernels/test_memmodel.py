"""Tests for repro.kernels.memmodel (the ref-[14] GA model fit)."""

import pytest

from repro.arch.machines import SNOWBALL_A9500, XEON_X5550
from repro.autotune.search import ExhaustiveSearch
from repro.errors import ConfigurationError
from repro.kernels import MemBench
from repro.kernels.membench import MemBenchConfig
from repro.kernels.memmodel import (
    CacheCapacityModel,
    fit_memory_model,
)
from repro.osmodel import OSModel


class TestCacheCapacityModel:
    def test_predict_plateaus(self):
        model = CacheCapacityModel(
            capacity_bytes=32 * 1024, fast_bandwidth=1.0, slow_bandwidth=0.5
        )
        assert model.predict(16 * 1024) == 1.0
        assert model.predict(32 * 1024) == 1.0
        assert model.predict(33 * 1024) == 0.5

    def test_error_zero_for_perfect_data(self):
        model = CacheCapacityModel(
            capacity_bytes=32 * 1024, fast_bandwidth=1.0, slow_bandwidth=0.5
        )
        data = [(16 * 1024, 1.0), (48 * 1024, 0.5)]
        assert model.error(data) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheCapacityModel(0, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            CacheCapacityModel(1024, 0.0, 0.5)
        model = CacheCapacityModel(1024, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            model.predict(0)
        with pytest.raises(ConfigurationError):
            model.error([])


def _measure_curve(machine, sizes_kb, seed=2):
    os_model = OSModel.boot(machine, seed=seed)
    bench = MemBench(machine, os_model, seed=seed)
    curve = []
    for kb in sizes_kb:
        sample = bench.measure(MemBenchConfig(array_bytes=kb * 1024))
        curve.append((kb * 1024, sample.ideal_bandwidth_bytes_per_s / 1e9))
    return curve


class TestFitMemoryModel:
    def test_recovers_snowball_l1_size(self):
        """The headline cross-validation: the GA fit recovers the
        32 KiB L1 from bandwidth data alone, never reading the machine
        description — the Tikir et al. methodology (paper ref [14])."""
        curve = _measure_curve(
            SNOWBALL_A9500, (2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 64, 96, 128)
        )
        fitted = fit_memory_model(curve)
        assert fitted.model.capacity_bytes == 32 * 1024
        assert fitted.model.fast_bandwidth > fitted.model.slow_bandwidth
        assert fitted.error < 0.01

    def test_exhaustive_strategy_also_works(self):
        curve = _measure_curve(SNOWBALL_A9500, (4, 8, 16, 32, 48, 64, 96))
        fitted = fit_memory_model(curve, strategy=ExhaustiveSearch())
        assert fitted.model.capacity_bytes == 32 * 1024

    def test_xeon_l1_also_recovered(self):
        curve = _measure_curve(
            XEON_X5550, (2, 4, 8, 16, 24, 32, 48, 64, 96, 128)
        )
        fitted = fit_memory_model(curve, strategy=ExhaustiveSearch())
        assert fitted.model.capacity_bytes == 32 * 1024

    def test_too_few_measurements_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_memory_model([(1024, 1.0), (2048, 1.0)])

    def test_constant_data_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_memory_model([(1024, 1.0)] * 6)

    def test_plateau_ordering_enforced_by_objective(self):
        """Fits never return an inverted (slow > fast) model."""
        curve = _measure_curve(SNOWBALL_A9500, (4, 8, 16, 32, 48, 64))
        fitted = fit_memory_model(curve, strategy=ExhaustiveSearch())
        assert fitted.model.fast_bandwidth >= fitted.model.slow_bandwidth
