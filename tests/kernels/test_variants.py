"""Tests for repro.kernels.variants (Figure 6 issue model)."""

import pytest

from repro.arch.machines import SNOWBALL_A9500, TEGRA2_NODE, XEON_X5550
from repro.errors import ConfigurationError
from repro.kernels.variants import (
    ELEMENT_BITS,
    KernelVariant,
    issue_profile,
    paper_variants,
)


class TestKernelVariant:
    def test_elem_bytes(self):
        assert KernelVariant(64, 1).elem_bytes == 8

    def test_label(self):
        assert KernelVariant(128, 8).label == "128b/unroll=8"

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelVariant(48, 1)

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelVariant(32, 0)

    def test_paper_grid_is_six_variants(self):
        variants = paper_variants()
        assert len(variants) == 6
        assert {v.elem_bits for v in variants} == set(ELEMENT_BITS)
        assert {v.unroll for v in variants} == {1, 8}


class TestXeonProfile:
    def test_unrolling_reduces_issue_cost(self):
        for bits in ELEMENT_BITS:
            rolled = issue_profile(XEON_X5550, KernelVariant(bits, 1))
            unrolled = issue_profile(XEON_X5550, KernelVariant(bits, 8))
            assert unrolled.cycles_per_element < rolled.cycles_per_element

    def test_per_byte_cost_improves_with_width(self):
        """Figure 6a: wider elements always pay off on Nehalem."""
        costs = {
            bits: issue_profile(XEON_X5550, KernelVariant(bits, 8)).cycles_per_element
            / (bits // 8)
            for bits in ELEMENT_BITS
        }
        assert costs[128] < costs[64] < costs[32]

    def test_no_spills_on_xeon_at_paper_unroll(self):
        for bits in ELEMENT_BITS:
            assert not issue_profile(XEON_X5550, KernelVariant(bits, 8)).spilled


class TestArmProfile:
    def test_quad_penalty_on_a9(self):
        """128-bit elements pay the A9's narrow-datapath penalty."""
        p64 = issue_profile(SNOWBALL_A9500, KernelVariant(64, 1))
        p128 = issue_profile(SNOWBALL_A9500, KernelVariant(128, 1))
        per_byte_64 = p64.cycles_per_element / 8
        per_byte_128 = p128.cycles_per_element / 16
        assert per_byte_128 > per_byte_64

    def test_quad_penalty_grows_with_unroll(self):
        """Figure 6b: unrolling the 128-bit variant is detrimental."""
        u1 = issue_profile(SNOWBALL_A9500, KernelVariant(128, 1))
        u8 = issue_profile(SNOWBALL_A9500, KernelVariant(128, 8))
        assert u8.cycles_per_element > u1.cycles_per_element

    def test_unrolling_helps_narrow_elements(self):
        for bits in (32, 64):
            u1 = issue_profile(SNOWBALL_A9500, KernelVariant(bits, 1))
            u8 = issue_profile(SNOWBALL_A9500, KernelVariant(bits, 8))
            assert u8.cycles_per_element < u1.cycles_per_element

    def test_tegra2_wide_elements_decompose_to_words(self):
        """No NEON at all on Tegra2: a 64-bit op becomes two 32-bit
        ops."""
        p32 = issue_profile(TEGRA2_NODE, KernelVariant(32, 8))
        p64 = issue_profile(TEGRA2_NODE, KernelVariant(64, 8))
        assert p64.cycles_per_element > p32.cycles_per_element

    def test_profiles_are_deterministic(self):
        a = issue_profile(SNOWBALL_A9500, KernelVariant(64, 8))
        b = issue_profile(SNOWBALL_A9500, KernelVariant(64, 8))
        assert a == b
