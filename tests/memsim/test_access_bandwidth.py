"""Tests for repro.memsim.access and repro.memsim.bandwidth."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machines import SNOWBALL_A9500
from repro.errors import ConfigurationError
from repro.memsim.access import (
    pointer_chase_offsets,
    strided_line_walk,
    strided_offsets,
)
from repro.memsim.bandwidth import measure_stream
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.paging import AddressSpace
from repro.osmodel.page_allocator import boot_allocator


class TestStridedOffsets:
    def test_unit_stride_visits_every_element(self):
        offsets = list(strided_offsets(64, elem_bytes=4, stride_elems=1))
        assert offsets == [i * 4 for i in range(16)]

    def test_stride_skips_elements(self):
        offsets = list(strided_offsets(64, elem_bytes=4, stride_elems=4))
        assert offsets == [0, 16, 32, 48]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            list(strided_offsets(0, 4))
        with pytest.raises(ConfigurationError):
            list(strided_offsets(64, 0))
        with pytest.raises(ConfigurationError):
            list(strided_offsets(2, 4))

    @given(
        st.integers(1, 64),     # elements
        st.sampled_from([4, 8, 16]),
        st.integers(1, 8),
    )
    def test_property_offsets_in_bounds_and_increasing(self, n, elem, stride):
        array = n * elem
        offsets = list(strided_offsets(array, elem, stride))
        assert all(0 <= o <= array - elem for o in offsets)
        assert offsets == sorted(offsets)


class TestStridedLineWalk:
    def test_unit_stride_groups_by_line(self):
        walk = list(strided_line_walk(128, elem_bytes=4, stride_elems=1, line_bytes=32))
        assert walk == [(0, 8), (32, 8), (64, 8), (96, 8)]

    def test_large_stride_one_element_per_line(self):
        walk = list(strided_line_walk(256, elem_bytes=4, stride_elems=16, line_bytes=32))
        assert all(count == 1 for _, count in walk)

    def test_bad_line_size_rejected(self):
        with pytest.raises(ConfigurationError):
            list(strided_line_walk(64, 4, 1, 48))

    @given(
        st.integers(8, 256),
        st.sampled_from([4, 8]),
        st.integers(1, 16),
    )
    def test_property_walk_counts_match_offsets(self, n, elem, stride):
        array = n * elem
        walk = list(strided_line_walk(array, elem, stride, 32))
        total = sum(count for _, count in walk)
        assert total == len(list(strided_offsets(array, elem, stride)))


class TestPointerChase:
    def test_visits_every_element_once(self):
        offsets = list(pointer_chase_offsets(64, 8, seed=1))
        assert sorted(offsets) == [i * 8 for i in range(8)]

    def test_seeded_permutation(self):
        assert list(pointer_chase_offsets(64, 8, seed=2)) == list(
            pointer_chase_offsets(64, 8, seed=2)
        )
        assert list(pointer_chase_offsets(512, 8, seed=1)) != list(
            pointer_chase_offsets(512, 8, seed=2)
        )


class TestMeasureStream:
    def _hierarchy(self):
        allocator = boot_allocator(65536, seed=0)
        space = AddressSpace(allocator)
        return MemoryHierarchy(SNOWBALL_A9500, space, seed=0), space

    def test_l1_resident_faster_than_l2_resident(self):
        """The Figure 5a cliff: bandwidth drops past the 32 KiB L1."""
        hierarchy, space = self._hierarchy()
        costs = {}
        for size in (8 * 1024, 50 * 1024):
            mapping = space.mmap(size)
            hierarchy.reset_state()
            costs[size] = measure_stream(
                hierarchy,
                base_vaddr=mapping.virtual_base,
                array_bytes=size,
                elem_bytes=4,
                issue_cycles_per_element=4.0,
            )
            space.munmap(mapping)
        bw_small = costs[8 * 1024].bandwidth_bytes_per_s(1e9)
        bw_large = costs[50 * 1024].bandwidth_bytes_per_s(1e9)
        assert bw_small > bw_large

    def test_bytes_accessed_counts_measured_passes_only(self):
        hierarchy, space = self._hierarchy()
        mapping = space.mmap(4096)
        cost = measure_stream(
            hierarchy,
            base_vaddr=mapping.virtual_base,
            array_bytes=4096,
            elem_bytes=4,
            issue_cycles_per_element=1.0,
            warmup_passes=3,
            measure_passes=2,
        )
        assert cost.bytes_accessed == 2 * 4096
        assert cost.elements == 2 * 1024

    def test_spill_traffic_increases_cycles(self):
        hierarchy, space = self._hierarchy()
        mapping = space.mmap(8192)
        base = measure_stream(
            hierarchy, base_vaddr=mapping.virtual_base, array_bytes=8192,
            elem_bytes=4, issue_cycles_per_element=2.0,
        )
        hierarchy.reset_state()
        spilled = measure_stream(
            hierarchy, base_vaddr=mapping.virtual_base, array_bytes=8192,
            elem_bytes=4, issue_cycles_per_element=2.0,
            extra_accesses_per_element=2.0,
        )
        assert spilled.cycles > base.cycles

    def test_invalid_parameters_rejected(self):
        hierarchy, space = self._hierarchy()
        mapping = space.mmap(4096)
        with pytest.raises(ConfigurationError):
            measure_stream(
                hierarchy, base_vaddr=mapping.virtual_base, array_bytes=4096,
                elem_bytes=4, issue_cycles_per_element=0.0,
            )
        with pytest.raises(ConfigurationError):
            measure_stream(
                hierarchy, base_vaddr=mapping.virtual_base, array_bytes=4096,
                elem_bytes=4, issue_cycles_per_element=1.0, measure_passes=0,
            )

    def test_bandwidth_requires_positive_cycles(self):
        from repro.memsim.bandwidth import StreamCost
        cost = StreamCost(bytes_accessed=0, elements=0, issue_cycles=0,
                          supply_cycles=0, cycles=0)
        with pytest.raises(ConfigurationError):
            cost.bandwidth_bytes_per_s(1e9)
