"""Tests for repro.memsim.cache_sim (incl. hypothesis invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.cache import CacheGeometry, ReplacementPolicy
from repro.errors import SimulationError
from repro.memsim.cache_sim import SetAssociativeCache


def _tiny(associativity=2, sets=4, line=32, policy=ReplacementPolicy.LRU):
    geometry = CacheGeometry(
        name="c",
        size_bytes=associativity * sets * line,
        associativity=associativity,
        line_bytes=line,
        latency_cycles=1,
        replacement=policy,
    )
    return SetAssociativeCache(geometry)


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = _tiny()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(31) is True  # same line

    def test_distinct_lines_miss_separately(self):
        cache = _tiny()
        cache.access(0)
        assert cache.access(32) is False

    def test_stats_accumulate(self):
        cache = _tiny()
        cache.access(0)
        cache.access(0)
        cache.access(32)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.accesses == 3
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_negative_address_rejected(self):
        with pytest.raises(SimulationError):
            _tiny().access(-1)

    def test_invalidate_clears_contents_keeps_stats(self):
        cache = _tiny()
        cache.access(0)
        cache.invalidate()
        assert not cache.contains(0)
        assert cache.stats.misses == 1

    def test_contains_does_not_mutate(self):
        cache = _tiny()
        cache.access(0)
        hits_before = cache.stats.hits
        assert cache.contains(0)
        assert cache.stats.hits == hits_before


class TestLru:
    def test_lru_evicts_least_recent(self):
        cache = _tiny(associativity=2, sets=1, line=32)
        cache.access(0)      # A
        cache.access(32)     # B
        cache.access(0)      # touch A -> B is LRU
        cache.access(64)     # C evicts B
        assert cache.contains(0)
        assert not cache.contains(32)
        assert cache.contains(64)

    def test_fifo_ignores_touches(self):
        cache = _tiny(associativity=2, sets=1, line=32,
                      policy=ReplacementPolicy.FIFO)
        cache.access(0)
        cache.access(32)
        cache.access(0)      # touch does not matter under FIFO
        cache.access(64)     # evicts 0 (first in)
        assert not cache.contains(0)
        assert cache.contains(32)

    def test_cyclic_sweep_over_capacity_thrashes_lru(self):
        """The classic LRU pathology behind the Figure 5a cliff: a
        cyclic walk one line beyond capacity misses every access."""
        cache = _tiny(associativity=4, sets=1, line=32)
        lines = [i * 32 for i in range(5)]  # capacity is 4 lines
        for _ in range(3):
            for addr in lines:
                cache.access(addr)
        cache.stats.reset()
        for addr in lines:
            cache.access(addr)
        assert cache.stats.miss_rate == 1.0

    def test_working_set_within_capacity_all_hits(self):
        cache = _tiny(associativity=4, sets=1, line=32)
        lines = [i * 32 for i in range(4)]
        for addr in lines:
            cache.access(addr)
        cache.stats.reset()
        for _ in range(3):
            for addr in lines:
                assert cache.access(addr)


class TestRandomPolicy:
    def test_random_policy_is_seeded(self):
        def run(seed):
            geometry = CacheGeometry(
                name="c", size_bytes=2 * 32, associativity=2, line_bytes=32,
                latency_cycles=1, replacement=ReplacementPolicy.RANDOM,
            )
            cache = SetAssociativeCache(geometry, seed=seed)
            for i in range(20):
                cache.access((i % 5) * 32)
            return cache.stats.hits
        assert run(7) == run(7)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 4096), min_size=1, max_size=300))
    def test_property_occupancy_never_exceeds_associativity(self, addresses):
        cache = _tiny(associativity=2, sets=4)
        for address in addresses:
            cache.access(address)
        assert all(o <= 2 for o in cache.set_occupancy())

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 4096), min_size=1, max_size=300))
    def test_property_hits_plus_misses_equals_accesses(self, addresses):
        cache = _tiny()
        for address in addresses:
            cache.access(address)
        assert cache.stats.hits + cache.stats.misses == len(addresses)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 4096), min_size=1, max_size=300))
    def test_property_immediate_reaccess_always_hits(self, addresses):
        cache = _tiny()
        for address in addresses:
            cache.access(address)
            assert cache.access(address) is True

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 64 * 1024), min_size=1, max_size=200))
    def test_property_resident_lines_bounded_by_capacity(self, addresses):
        cache = _tiny(associativity=4, sets=8)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines() <= 32
