"""Tests for repro.memsim.hierarchy."""

import pytest

from repro.arch.machines import SNOWBALL_A9500, XEON_X5550
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.paging import AddressSpace
from repro.osmodel.page_allocator import boot_allocator


def _snowball_hierarchy(fragmentation=0.0, seed=0):
    allocator = boot_allocator(
        SNOWBALL_A9500.memory.total_bytes // 4096,
        fragmentation=fragmentation,
        seed=seed,
    )
    space = AddressSpace(allocator)
    return MemoryHierarchy(SNOWBALL_A9500, space, seed=seed), space


class TestAccessPath:
    def test_first_access_goes_to_dram(self):
        hierarchy, space = _snowball_hierarchy()
        mapping = space.mmap(4096)
        outcome = hierarchy.access(mapping.virtual_base)
        assert outcome.level_name == "DRAM"
        assert outcome.supply_cycles > 0

    def test_second_access_hits_l1_for_free(self):
        hierarchy, space = _snowball_hierarchy()
        mapping = space.mmap(4096)
        hierarchy.access(mapping.virtual_base)
        outcome = hierarchy.access(mapping.virtual_base)
        assert outcome.level_name == "L1d"
        assert outcome.supply_cycles == 0.0

    def test_l1_evicted_line_comes_from_l2(self):
        """Walk a 64 KiB array (2x L1, well inside the 512 KiB L2):
        second pass must be served by L2."""
        hierarchy, space = _snowball_hierarchy()
        mapping = space.mmap(64 * 1024)
        for pass_index in range(2):
            for offset in range(0, 64 * 1024, 32):
                hierarchy.access(mapping.virtual_base + offset)
        stats = hierarchy.level_stats()
        l2_hits, _ = stats["L2"]
        assert l2_hits > 1500  # most of the 2048 second-pass lines

    def test_identity_hierarchy_without_address_space(self):
        hierarchy = MemoryHierarchy(XEON_X5550)
        outcome = hierarchy.access(0)
        assert outcome.level_name == "DRAM"
        assert hierarchy.access(0).level_name == "L1d"

    def test_reset_state_restores_cold_caches(self):
        hierarchy = MemoryHierarchy(XEON_X5550)
        hierarchy.access(0)
        hierarchy.reset_state()
        assert hierarchy.access(0).level_name == "DRAM"

    def test_reset_stats_keeps_contents(self):
        hierarchy = MemoryHierarchy(XEON_X5550)
        hierarchy.access(0)
        hierarchy.reset_stats()
        assert hierarchy.access(0).level_name == "L1d"
        assert hierarchy.dram_accesses == 0

    def test_inclusion_invariant_holds_after_traffic(self):
        hierarchy, space = _snowball_hierarchy()
        mapping = space.mmap(256 * 1024)
        for offset in range(0, 256 * 1024, 64):
            hierarchy.access(mapping.virtual_base + offset)
        hierarchy.check_invariants()

    def test_dram_supply_includes_latency_or_transfer(self):
        hierarchy, space = _snowball_hierarchy()
        mapping = space.mmap(4096)
        outcome = hierarchy.access(mapping.virtual_base)
        core = SNOWBALL_A9500.core
        min_expected = (
            SNOWBALL_A9500.memory.latency_ns * 1e-9 * core.frequency_hz
        ) / core.mem_parallelism
        assert outcome.supply_cycles >= min_expected


class TestPagePlacementSensitivity:
    def _misses_at_32k(self, fragmentation, seed):
        hierarchy, space = _snowball_hierarchy(fragmentation, seed)
        mapping = space.mmap(32 * 1024)
        # Warm up, then measure a steady-state pass.
        for _ in range(2):
            for offset in range(0, 32 * 1024, 32):
                hierarchy.access(mapping.virtual_base + offset)
        hierarchy.reset_stats()
        for offset in range(0, 32 * 1024, 32):
            hierarchy.access(mapping.virtual_base + offset)
        return hierarchy.levels[0].stats.misses

    def test_consecutive_pages_fit_l1_exactly(self):
        """A 32 KiB array on consecutive pages maps evenly into the
        32 KiB physically-indexed L1: steady state has no misses."""
        assert self._misses_at_32k(0.0, seed=1) == 0

    def test_fragmented_pages_cause_conflict_misses(self):
        """§V-A-1: scattered frames land unevenly across the sets and
        conflict-miss — 'much more cache misses, hence a dramatic drop
        of overall performance'."""
        fragmented = [self._misses_at_32k(0.85, seed=s) for s in range(6)]
        assert max(fragmented) > 0

    def test_run_to_run_variability_only_with_fragmentation(self):
        clean = {self._misses_at_32k(0.0, seed=s) for s in range(4)}
        assert clean == {0}
