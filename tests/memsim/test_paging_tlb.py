"""Tests for repro.memsim.paging and repro.memsim.tlb."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.memsim.paging import AddressSpace
from repro.memsim.tlb import Tlb
from repro.osmodel.page_allocator import BuddyAllocator, ReusingPageAllocator


def _space(frames=1024) -> AddressSpace:
    return AddressSpace(ReusingPageAllocator(BuddyAllocator(frames)))


class TestAddressSpace:
    def test_mmap_rounds_to_pages(self):
        space = _space()
        mapping = space.mmap(5000)
        assert mapping.size_bytes == 8192

    def test_translate_within_mapping(self):
        space = _space()
        mapping = space.mmap(8192)
        frame0 = mapping.allocation.frames[0]
        assert space.translate(mapping.virtual_base) == frame0 * 4096
        assert space.translate(mapping.virtual_base + 5) == frame0 * 4096 + 5

    def test_translate_crosses_page_boundary(self):
        space = _space()
        mapping = space.mmap(8192)
        frame1 = mapping.allocation.frames[1]
        paddr = space.translate(mapping.virtual_base + 4096 + 17)
        assert paddr == frame1 * 4096 + 17

    def test_unmapped_access_faults(self):
        space = _space()
        with pytest.raises(AllocationError, match="fault"):
            space.translate(0xDEAD)

    def test_munmap_then_access_faults(self):
        space = _space()
        mapping = space.mmap(4096)
        space.munmap(mapping)
        with pytest.raises(AllocationError):
            space.translate(mapping.virtual_base)

    def test_munmap_unknown_region_rejected(self):
        space_a, space_b = _space(), _space()
        mapping = space_a.mmap(4096)
        with pytest.raises(AllocationError):
            space_b.munmap(mapping)

    def test_mappings_do_not_overlap(self):
        space = _space()
        a = space.mmap(4096 * 3)
        b = space.mmap(4096 * 2)
        assert a.virtual_end <= b.virtual_base

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            _space().mmap(0)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(1, 8 * 4096), min_size=1, max_size=10))
    def test_property_translations_stay_inside_own_frames(self, sizes):
        space = _space(4096)
        for size in sizes:
            mapping = space.mmap(size)
            frames = set(mapping.allocation.frames)
            for offset in (0, size - 1):
                paddr = space.translate(mapping.virtual_base + offset)
                assert paddr // 4096 in frames


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(4, miss_penalty_cycles=30)
        assert tlb.access(7) == 30.0
        assert tlb.access(7) == 0.0
        assert (tlb.hits, tlb.misses) == (1, 1)

    def test_lru_eviction(self):
        tlb = Tlb(2, miss_penalty_cycles=30)
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)       # touch 1; 2 becomes LRU
        tlb.access(3)       # evicts 2
        assert tlb.access(1) == 0.0
        assert tlb.access(2) == 30.0

    def test_flush(self):
        tlb = Tlb(4, miss_penalty_cycles=30)
        tlb.access(1)
        tlb.flush()
        assert tlb.access(1) == 30.0

    def test_capacity_never_exceeded(self):
        tlb = Tlb(3, miss_penalty_cycles=1)
        for page in range(100):
            tlb.access(page)
        assert len(tlb._resident) <= 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Tlb(0, miss_penalty_cycles=1)
        with pytest.raises(ConfigurationError):
            Tlb(4, miss_penalty_cycles=-1)
