"""Tests for the next-line prefetcher (opt-in) and the stride sweep."""

import pytest

from repro.arch.machines import SNOWBALL_A9500
from repro.kernels import MemBench
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.paging import AddressSpace
from repro.osmodel import OSModel
from repro.osmodel.page_allocator import boot_allocator


def _pair(prefetch: bool):
    allocator = boot_allocator(65536, seed=0)
    space = AddressSpace(allocator)
    hierarchy = MemoryHierarchy(
        SNOWBALL_A9500, space, seed=0, prefetch_next_line=prefetch
    )
    return hierarchy, space


class TestPrefetcher:
    def test_off_by_default(self):
        hierarchy, _ = _pair(False)
        assert not hierarchy.prefetch_next_line
        assert hierarchy.prefetches_issued == 0

    def test_streaming_misses_halve_with_prefetch(self):
        results = {}
        for prefetch in (False, True):
            hierarchy, space = _pair(prefetch)
            mapping = space.mmap(64 * 1024)
            for offset in range(0, 64 * 1024, 32):
                hierarchy.access(mapping.virtual_base + offset)
            results[prefetch] = hierarchy.levels[0].stats.misses
        assert results[True] <= results[False] / 2 + 1
        assert results[False] == 2048  # every line cold-misses

    def test_prefetch_counts_are_tracked(self):
        hierarchy, space = _pair(True)
        mapping = space.mmap(4096)
        hierarchy.access(mapping.virtual_base)
        assert hierarchy.prefetches_issued == 1

    def test_prefetch_beyond_mapping_is_silently_skipped(self):
        hierarchy, space = _pair(True)
        mapping = space.mmap(4096)
        # Miss on the mapping's LAST line: the next line is unmapped.
        hierarchy.access(mapping.virtual_base + 4096 - 32)
        assert hierarchy.prefetches_issued == 0

    def test_prefetch_does_not_inflate_demand_stats(self):
        hierarchy, space = _pair(True)
        mapping = space.mmap(4096)
        hierarchy.access(mapping.virtual_base)
        stats = hierarchy.levels[0].stats
        assert stats.accesses == 1  # the demand access only

    def test_l1_hits_do_not_trigger_prefetch(self):
        hierarchy, space = _pair(True)
        mapping = space.mmap(4096)
        hierarchy.access(mapping.virtual_base)
        issued = hierarchy.prefetches_issued
        hierarchy.access(mapping.virtual_base)  # L1 hit
        assert hierarchy.prefetches_issued == issued

    def test_install_is_idempotent(self):
        from repro.arch.cache import CacheGeometry
        from repro.memsim.cache_sim import SetAssociativeCache
        cache = SetAssociativeCache(CacheGeometry("c", 4 * 32, 2, 32, 1))
        cache.install(0)
        cache.install(0)
        assert cache.resident_lines() == 1
        assert cache.stats.accesses == 0


class TestStrideSweep:
    def test_bandwidth_degrades_with_stride(self):
        """Fewer useful elements per fetched line as the stride grows
        past one — until every access pays a full line."""
        os_model = OSModel.boot(SNOWBALL_A9500, seed=4)
        bench = MemBench(SNOWBALL_A9500, os_model, seed=4)
        results = bench.run_stride_sweep(
            array_bytes=64 * 1024, strides=(1, 2, 4, 8), replicates=3, seed=4
        )

        def mean(stride):
            values = results.where(stride=stride).values()
            return sum(values) / len(values)

        assert mean(1) > mean(2) > mean(4) > mean(8)

    def test_stride_beyond_line_saturates(self):
        """Once the stride spans >= one line (8 x 4B on 32 B lines),
        further growth cannot lose more spatial locality."""
        os_model = OSModel.boot(SNOWBALL_A9500, seed=4)
        bench = MemBench(SNOWBALL_A9500, os_model, seed=4)
        results = bench.run_stride_sweep(
            array_bytes=64 * 1024, strides=(8, 16, 32), replicates=3, seed=4
        )

        def mean(stride):
            values = results.where(stride=stride).values()
            return sum(values) / len(values)

        assert mean(16) == pytest.approx(mean(8), rel=0.35)
