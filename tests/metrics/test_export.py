"""Unit tests for the metrics exporters and the JSON schema validator."""

import json

import pytest

from repro.errors import MetricsError
from repro.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    load_and_validate,
    registry_to_dict,
    render_metrics,
    to_json,
    to_prometheus,
    to_table,
    validate_metrics_json,
    write_metrics,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def populated_registry():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    reg.inc("des.events", 10)
    reg.inc("engine.wall", 3, volatile=True)
    reg.gauge_max("queue.high_water", 4)
    reg.gauge_set("jobs", 2, volatile=True)
    reg.histogram("latency", upper_bounds=[0.1, 1.0]).observe(0.05)
    reg.histogram("latency").observe(0.5)
    reg.histogram("latency").observe(5.0)
    with reg.span("run"):
        clock.tick(1.0)
        with reg.span("inner"):
            clock.tick(0.5)
    return reg


class TestJsonExport:
    def test_roundtrips_and_validates(self):
        payload = json.loads(to_json(populated_registry()))
        validate_metrics_json(payload)
        assert payload["schema"] == METRICS_SCHEMA_VERSION
        assert payload["counters"]["des.events"]["value"] == 10

    def test_trailing_newline_and_sorted_keys(self):
        text = to_json(populated_registry())
        assert text.endswith("\n")
        assert text == to_json(populated_registry())  # stable

    def test_deterministic_drops_volatile_metrics(self):
        payload = json.loads(to_json(populated_registry(), deterministic=True))
        validate_metrics_json(payload)
        assert payload["deterministic"] is True
        assert "engine.wall" not in payload["counters"]
        assert "jobs" not in payload["gauges"]
        assert "des.events" in payload["counters"]
        assert "wall_seconds" not in payload["spans"]["children"][0]

    def test_deterministic_export_ignores_wall_clock(self):
        docs = []
        for tick in (1.0, 17.0):
            clock = FakeClock()
            reg = MetricsRegistry(clock=clock)
            reg.inc("c", 1)
            with reg.span("s"):
                clock.tick(tick)
            docs.append(to_json(reg, deterministic=True))
        assert docs[0] == docs[1]


class TestPrometheusExport:
    def test_type_headers_and_values(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE repro_des_events counter" in text
        assert "repro_des_events 10" in text
        assert "# TYPE repro_queue_high_water gauge" in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(populated_registry())
        assert 'repro_latency_bucket{le="0.1"} 1' in text
        assert 'repro_latency_bucket{le="1"} 2' in text
        assert 'repro_latency_bucket{le="+Inf"} 3' in text
        assert "repro_latency_count 3" in text

    def test_span_paths_as_labels(self):
        text = to_prometheus(populated_registry())
        assert 'repro_span_count{path="run"} 1' in text
        assert 'repro_span_count{path="run/inner"} 1' in text
        assert 'repro_span_seconds{path="run"}' in text

    def test_deterministic_omits_span_seconds(self):
        text = to_prometheus(populated_registry(), deterministic=True)
        assert "repro_span_seconds" not in text
        assert "repro_engine_wall" not in text
        assert 'repro_span_count{path="run"} 1' in text


class TestTableExport:
    def test_sections_present(self):
        text = to_table(populated_registry())
        assert "Metrics" in text
        assert "Histograms" in text
        assert "Span profile" in text
        assert "des.events" in text

    def test_empty_registry(self):
        assert to_table(MetricsRegistry()) == "(no metrics recorded)\n"


class TestRenderAndWrite:
    def test_render_dispatch(self):
        reg = populated_registry()
        assert render_metrics(reg, "json").startswith("{")
        assert "# TYPE" in render_metrics(reg, "prom")
        assert "Metrics" in render_metrics(reg, "table")

    def test_unknown_format_raises(self):
        with pytest.raises(MetricsError, match="unknown metrics format"):
            render_metrics(MetricsRegistry(), "xml")

    def test_write_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "deep" / "dir" / "m.json"
        write_metrics(populated_registry(), target)
        payload = load_and_validate(target)
        assert payload["counters"]["des.events"]["value"] == 10


class TestValidator:
    def _valid(self):
        return json.loads(to_json(populated_registry()))

    def test_accepts_valid_document(self):
        validate_metrics_json(self._valid())

    @pytest.mark.parametrize("mutate, message", [
        (lambda p: p.update(schema=99), "schema must be"),
        (lambda p: p.update(deterministic="yes"), "must be a boolean"),
        (lambda p: p["counters"]["des.events"].update(value=-1), "negative"),
        (lambda p: p["counters"]["des.events"].pop("volatile"),
         "volatile must be a boolean"),
        (lambda p: p["histograms"]["latency"]["bucket_counts"].append(1),
         "entries"),
        (lambda p: p["histograms"]["latency"].update(count=99),
         "bucket counts sum"),
        (lambda p: p["histograms"]["latency"].update(upper_bounds=[2.0, 1.0]),
         "strictly increasing"),
        (lambda p: p["spans"].update(name="rooted"), "unnamed node"),
    ])
    def test_rejects_violations(self, mutate, message):
        payload = self._valid()
        mutate(payload)
        with pytest.raises(MetricsError, match=message):
            validate_metrics_json(payload)

    def test_rejects_unsorted_children(self):
        payload = self._valid()
        run = payload["spans"]["children"][0]
        run["children"] = [
            {"name": "b", "count": 1, "wall_seconds": 0.0, "children": []},
            {"name": "a", "count": 1, "wall_seconds": 0.0, "children": []},
        ]
        with pytest.raises(MetricsError, match="sorted by name"):
            validate_metrics_json(payload)

    def test_load_and_validate_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(MetricsError, match="unreadable"):
            load_and_validate(bad)

    def test_registry_to_dict_marks_determinism(self):
        reg = populated_registry()
        assert registry_to_dict(reg)["deterministic"] is False
        assert registry_to_dict(reg, deterministic=True)["deterministic"] is True
