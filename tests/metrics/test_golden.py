"""Golden-export conformance tests (ISSUE satellite).

``tests/golden/fig3_metrics.{json,prom}`` pin the deterministic export
of a small Figure-3 run.  These tests regenerate the run and require
byte-identical output — any change to metric names, values, bucket
layouts, span structure, or exporter formatting shows up as a golden
diff and must be intentional (regenerate with
``python tests/metrics/test_golden.py``).
"""

import json
from pathlib import Path

from repro.engine import ExperimentEngine
from repro.engine.sweeps import run_speedup_curve
from repro.metrics import (
    MetricsRegistry,
    to_json,
    to_prometheus,
    use_registry,
    validate_metrics_json,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
GOLDEN_JSON = GOLDEN_DIR / "fig3_metrics.json"
GOLDEN_PROM = GOLDEN_DIR / "fig3_metrics.prom"


def fig3_registry():
    """The pinned run: a 2-point LINPACK strong-scaling curve."""
    reg = MetricsRegistry()
    with use_registry(reg):
        engine = ExperimentEngine(jobs=1, cache=None)
        run_speedup_curve(
            engine, "linpack", counts=[1, 4], num_nodes=8, seed=7,
            baseline_cores=1, label="fig3/linpack",
        )
    return reg


class TestGoldenExports:
    def test_json_export_matches_golden_byte_for_byte(self):
        assert to_json(fig3_registry(), deterministic=True) == (
            GOLDEN_JSON.read_text(encoding="utf-8")
        )

    def test_prometheus_export_matches_golden_byte_for_byte(self):
        assert to_prometheus(fig3_registry(), deterministic=True) == (
            GOLDEN_PROM.read_text(encoding="utf-8")
        )

    def test_golden_json_passes_schema_validation(self):
        validate_metrics_json(
            json.loads(GOLDEN_JSON.read_text(encoding="utf-8"))
        )

    def test_golden_covers_required_sections(self):
        payload = json.loads(GOLDEN_JSON.read_text(encoding="utf-8"))
        counters = payload["counters"]
        assert "des.events_dispatched" in counters
        # Cache hit/miss counts depend on cache state, so they are
        # volatile now and must NOT appear in deterministic exports;
        # the deterministic point counter stays.
        assert "engine.cache.misses" not in counters
        assert "engine.points" in counters
        assert "mpi.messages.allreduce" in counters
        # The Figure 4 observation as a queryable metric: time ranks
        # spend parked in MPI waits, per collective.
        assert any(
            name.startswith("mpi.wait_seconds.") for name in counters
        )
        spans = payload["spans"]["children"]
        assert any(node["name"].startswith("engine/") for node in spans)


def regenerate():  # pragma: no cover - manual tool
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    reg = fig3_registry()
    GOLDEN_JSON.write_text(to_json(reg, deterministic=True), encoding="utf-8")
    GOLDEN_PROM.write_text(
        to_prometheus(reg, deterministic=True), encoding="utf-8"
    )
    print(f"wrote {GOLDEN_JSON} and {GOLDEN_PROM}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
