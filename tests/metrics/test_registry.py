"""Unit tests for the metrics registry, its metric kinds, and merging."""

import pytest

from repro.errors import MetricsError
from repro.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    current_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError, match="cannot decrease"):
            reg.counter("c").inc(-1)

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_convenience_inc(self):
        reg = MetricsRegistry()
        reg.inc("c", 4)
        assert reg.counter("c").value == 4


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge_set("g", 3)
        reg.gauge_set("g", 1)
        assert reg.gauge("g").value == 1

    def test_set_max_keeps_high_water(self):
        reg = MetricsRegistry()
        reg.gauge_max("g", 3)
        reg.gauge_max("g", 1)
        reg.gauge_max("g", 7)
        assert reg.gauge("g").value == 7

    def test_unset_gauge_excluded_from_snapshot(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        assert reg.snapshot()["gauges"] == {}


class TestHistogram:
    def test_bucket_counts_sum_to_count(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", upper_bounds=[1.0, 2.0])
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            hist.observe(value)
        assert sum(hist.bucket_counts) == hist.count == 5

    def test_le_semantics_boundary_goes_low(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", upper_bounds=[1.0, 2.0])
        hist.observe(1.0)  # exactly on the edge: belongs to le=1.0
        assert hist.bucket_counts == [1, 0, 0]

    def test_overflow_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", upper_bounds=[1.0])
        hist.observe(5.0)
        assert hist.bucket_counts == [0, 1]

    def test_nan_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError, match="NaN"):
            reg.observe("h", float("nan"))

    def test_non_increasing_bounds_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError, match="strictly increasing"):
            reg.histogram("h", upper_bounds=[1.0, 1.0])

    def test_empty_bounds_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError, match="at least one bucket"):
            reg.histogram("h", upper_bounds=[])

    def test_default_buckets(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").upper_bounds == DEFAULT_BUCKETS


class TestNamesAndKinds:
    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "1leading", "sp ace", "semi;colon"):
            with pytest.raises(MetricsError, match="invalid metric name"):
                reg.counter(bad)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(MetricsError, match="already registered"):
            reg.gauge("m")
        with pytest.raises(MetricsError, match="already registered"):
            reg.histogram("m")

    def test_iteration_is_name_sorted(self):
        reg = MetricsRegistry()
        for name in ("z", "a", "m"):
            reg.inc(name)
        assert [c.name for c in reg.counters()] == ["a", "m", "z"]


class TestSnapshotMerge:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.gauge_max("g", 5)
        reg.observe("h", 0.5)
        with reg.span("phase"):
            pass
        return reg

    def test_merge_adds_counters_and_histograms(self):
        a, b = self._populated(), self._populated()
        a.merge(b.snapshot())
        assert a.counter("c").value == 4
        assert a.gauge("g").value == 5  # max, not sum
        assert a.histogram("h").count == 2
        assert a.spans.child("phase").count == 2

    def test_merge_into_empty_equals_source(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_mismatched_buckets_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", upper_bounds=[1.0]).observe(0.5)
        b.histogram("h", upper_bounds=[2.0]).observe(0.5)
        with pytest.raises(MetricsError, match="bucket layouts differ"):
            a.merge(b.snapshot())

    def test_volatile_flag_survives_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("wall", 1, volatile=True)
        reg.inc("sim", 1)
        snap = reg.snapshot()
        assert snap["counters"]["wall"]["volatile"] is True
        assert snap["counters"]["sim"]["volatile"] is False
        other = MetricsRegistry()
        other.merge(snap)
        assert other.counter("wall").volatile is True


class TestNullRegistry:
    def test_disabled_and_inert(self):
        NULL_REGISTRY.inc("c", 5)
        NULL_REGISTRY.gauge_set("g", 1)
        NULL_REGISTRY.observe("h", 1)
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_REGISTRY.enabled is False
        snap = NULL_REGISTRY.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert snap["spans"]["children"] == []

    def test_metric_objects_are_shared_noops(self):
        counter = NULL_REGISTRY.counter("a")
        assert counter is NULL_REGISTRY.counter("b")
        counter.inc(10)  # no state anywhere


class TestAmbientPlumbing:
    def test_default_is_null(self):
        assert current_registry() is NULL_REGISTRY

    def test_set_registry_installs_and_restores(self):
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert current_registry() is reg
        finally:
            set_registry(previous)
        assert current_registry() is NULL_REGISTRY

    def test_set_none_restores_null(self):
        set_registry(MetricsRegistry())
        set_registry(None)
        assert current_registry() is NULL_REGISTRY

    def test_use_registry_scopes_thread_locally(self):
        outer = MetricsRegistry()
        inner = MetricsRegistry()
        previous = set_registry(outer)
        try:
            with use_registry(inner) as scoped:
                assert scoped is inner
                assert current_registry() is inner
            assert current_registry() is outer
        finally:
            set_registry(previous)

    def test_use_registry_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert current_registry() is NULL_REGISTRY
