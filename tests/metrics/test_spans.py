"""Unit tests for the span timers and the aggregated profile tree."""

import pytest

from repro.errors import MetricsError
from repro.metrics import MetricsRegistry, SpanNode


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def reg(clock):
    return MetricsRegistry(clock=clock)


class TestSpanTiming:
    def test_single_span_records_elapsed(self, reg, clock):
        with reg.span("a"):
            clock.tick(2.0)
        node = reg.spans.child("a")
        assert node.count == 1
        assert node.inclusive_seconds == 2.0
        assert node.exclusive_seconds == 2.0

    def test_nested_spans_build_a_tree(self, reg, clock):
        with reg.span("outer"):
            clock.tick(1.0)
            with reg.span("inner"):
                clock.tick(3.0)
            clock.tick(0.5)
        outer = reg.spans.child("outer")
        inner = outer.child("inner")
        assert outer.inclusive_seconds == 4.5
        assert inner.inclusive_seconds == 3.0
        assert outer.exclusive_seconds == 1.5

    def test_repeated_entries_aggregate(self, reg, clock):
        for _ in range(3):
            with reg.span("a"):
                clock.tick(1.0)
        node = reg.spans.child("a")
        assert node.count == 3
        assert node.inclusive_seconds == 3.0

    def test_siblings_do_not_nest(self, reg, clock):
        with reg.span("a"):
            clock.tick(1.0)
        with reg.span("b"):
            clock.tick(2.0)
        assert set(reg.spans.children) == {"a", "b"}
        assert reg.spans.child("a").children == {}

    def test_exclusive_plus_children_equals_inclusive(self, reg, clock):
        with reg.span("p"):
            clock.tick(1.0)
            with reg.span("c1"):
                clock.tick(2.0)
            with reg.span("c2"):
                clock.tick(4.0)
        parent = reg.spans.child("p")
        children_sum = sum(
            c.inclusive_seconds for c in parent.children.values()
        )
        assert parent.exclusive_seconds + children_sum == (
            parent.inclusive_seconds
        )


class TestSpanErrors:
    def test_empty_name_rejected(self, reg):
        with pytest.raises(MetricsError, match="non-empty"):
            reg.span("")

    def test_reentrant_use_of_same_span_object_rejected(self, reg):
        span = reg.span("a")
        with span:
            with pytest.raises(MetricsError, match="already active"):
                span.__enter__()

    def test_out_of_order_exit_rejected(self, reg):
        outer = reg.span("outer")
        inner = reg.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(MetricsError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_span_closes_on_exception(self, reg, clock):
        with pytest.raises(RuntimeError):
            with reg.span("a"):
                clock.tick(1.0)
                raise RuntimeError("boom")
        assert reg.spans.child("a").count == 1
        with reg.span("b"):  # stack is healthy again
            pass
        assert "b" in reg.spans.children


class TestSpanNode:
    def test_walk_yields_sorted_paths(self):
        root = SpanNode("")
        root.child("b").child("x")
        root.child("a")
        paths = [path for path, _ in root.walk()]
        assert paths == ["a", "b", "b/x"]

    def test_to_dict_deterministic_drops_wall_times(self, reg, clock):
        with reg.span("a"):
            clock.tick(1.0)
        full = reg.spans.to_dict()
        det = reg.spans.to_dict(deterministic=True)
        assert "wall_seconds" in full["children"][0]
        assert "wall_seconds" not in det["children"][0]
        assert det["children"][0]["count"] == 1

    def test_merge_name_mismatch_rejected(self):
        node = SpanNode("a")
        with pytest.raises(MetricsError, match="cannot merge"):
            node.merge({"name": "b", "count": 1, "children": []})

    def test_merge_adds_counts_and_times(self):
        a, b = SpanNode(""), SpanNode("")
        child = a.child("x")
        child.count, child.wall_seconds = 1, 2.0
        other = b.child("x")
        other.count, other.wall_seconds = 2, 3.0
        a.merge(b.to_dict())
        assert a.child("x").count == 3
        assert a.child("x").wall_seconds == 5.0
