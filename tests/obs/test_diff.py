"""Tests for the cross-run metrics regression gate (repro.obs.diff)."""

import json
import math

import pytest

from repro.errors import MetricsError
from repro.metrics import MetricsRegistry
from repro.metrics.export import registry_to_dict, to_json
from repro.obs.diff import (
    MetricChange,
    diff_metrics,
    diff_metrics_files,
    load_metrics_file,
    parse_threshold,
)


def _payload(events=100, depth=3.0, lat=(0.001, 0.002)):
    registry = MetricsRegistry()
    registry.counter("des.events").inc(events)
    registry.gauge("queue.depth").set(depth)
    for sample in lat:
        registry.histogram("net.latency_s").observe(sample)
    registry.counter("wallclock.s", volatile=True).inc(12.5)
    return registry_to_dict(registry, deterministic=True)


class TestParseThreshold:
    @pytest.mark.parametrize("text,expected", [
        ("5%", 0.05),
        ("0.05", 0.05),
        ("12.5 %", 0.125),
        (" 0 ", 0.0),
        (0.25, 0.25),
        (2, 2.0),
    ])
    def test_accepted_forms(self, text, expected):
        assert parse_threshold(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "five", "-5%", "5%%", "1e9", None])
    def test_rejected_forms(self, text):
        with pytest.raises(MetricsError):
            parse_threshold(text)


class TestMetricChange:
    def test_no_drift(self):
        change = MetricChange("c", 10.0, 10.0, 0.05)
        assert change.relative_change == 0.0
        assert not change.regressed

    def test_signed_drift_and_threshold_edge(self):
        up = MetricChange("c", 100.0, 110.0, 0.05)
        assert up.relative_change == pytest.approx(0.10)
        assert up.regressed
        down = MetricChange("c", 100.0, 96.0, 0.05)
        assert down.relative_change == pytest.approx(-0.04)
        assert not down.regressed
        # exactly at the threshold is not a regression (strict >)
        edge = MetricChange("c", 100.0, 105.0, 0.05)
        assert not edge.regressed

    def test_appear_and_disappear_always_regress(self):
        appeared = MetricChange("c", None, 3.0, 0.5)
        gone = MetricChange("c", 3.0, None, 0.5)
        assert math.isinf(appeared.relative_change)
        assert appeared.regressed and gone.regressed
        assert "appeared" in appeared.describe()
        assert "disappeared" in gone.describe()

    def test_from_zero_is_infinite_drift(self):
        assert math.isinf(MetricChange("c", 0.0, 1.0, 0.05).relative_change)


class TestDiffMetrics:
    def test_identical_payloads_are_ok(self):
        diff = diff_metrics(_payload(), _payload(), threshold=0.05)
        assert diff.ok
        assert diff.compared > 0
        assert "no regressions" in diff.format()

    def test_volatile_metrics_are_ignored(self):
        names = {c.name for c in diff_metrics(_payload(), _payload()).changes}
        assert "counter:des.events" in names
        assert not any("wallclock" in name for name in names)

    def test_drift_beyond_threshold_flags(self):
        diff = diff_metrics(
            _payload(events=100), _payload(events=110), threshold=0.05
        )
        assert not diff.ok
        assert [c.name for c in diff.regressions] == ["counter:des.events"]
        assert "1 regression(s):" in diff.format()

    def test_same_drift_within_looser_threshold_passes(self):
        diff = diff_metrics(
            _payload(events=100), _payload(events=110), threshold=0.15
        )
        assert diff.ok

    def test_histograms_compare_count_and_sum(self):
        diff = diff_metrics(
            _payload(lat=(0.001, 0.002)), _payload(lat=(0.001,)),
            threshold=0.05,
        )
        flagged = {c.name for c in diff.regressions}
        assert "histogram:net.latency_s/count" in flagged
        assert "histogram:net.latency_s/sum" in flagged

    def test_regressions_sorted_biggest_drift_first(self):
        diff = diff_metrics(
            _payload(events=100, depth=10.0),
            _payload(events=150, depth=11.5),
            threshold=0.05,
        )
        assert [c.name for c in diff.regressions] == [
            "counter:des.events", "gauge:queue.depth"
        ]

    def test_trace_report_payloads_accepted(self):
        report_like = {"schema": 1, "metrics": _payload()}
        diff = diff_metrics(report_like, _payload(), threshold=0.05)
        assert diff.ok

    def test_document_without_metrics_rejected(self):
        with pytest.raises(MetricsError, match="neither a metrics export"):
            diff_metrics({"schema": 1}, _payload())


class TestFileLevel:
    def test_round_trip_through_files(self, tmp_path):
        before = tmp_path / "a.json"
        after = tmp_path / "b.json"
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        before.write_text(to_json(registry, deterministic=True))
        registry.counter("c").inc(1)
        after.write_text(to_json(registry, deterministic=True))
        diff = diff_metrics_files(before, after, threshold=0.05)
        assert not diff.ok

    def test_missing_file_is_a_metrics_error(self, tmp_path):
        with pytest.raises(MetricsError, match="cannot read"):
            load_metrics_file(tmp_path / "nope.json")

    def test_invalid_json_is_a_metrics_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(MetricsError, match="not valid JSON"):
            load_metrics_file(bad)

    def test_schema_violations_are_caught(self, tmp_path):
        bad = tmp_path / "bad.json"
        payload = _payload()
        payload["schema"] = 99
        bad.write_text(json.dumps(payload))
        with pytest.raises(MetricsError, match="failed validation"):
            load_metrics_file(bad)
