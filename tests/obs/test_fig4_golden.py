"""Golden-pinned Figure 4 trace report (ISSUE acceptance).

``tests/golden/fig4_trace_report.json`` and ``fig4_trace_metrics.json``
pin the full trace analysis of the Figure 4 scenario (BigDFT, 36 ranks
on the simulated Tibidabo GbE fat tree).  The paper's finding — the
run is dominated by ranks waiting in ``alltoallv`` because the
commodity switches collapse under incast — must fall out of the
analysis machine-checkably: the dominant wait state is pinned to
``switch-contention`` on ``alltoallv``, byte for byte.

Regenerate after an intentional simulator change with
``PYTHONPATH=src python tests/obs/test_fig4_golden.py``.
"""

import json
from pathlib import Path

from repro.apps import BigDFT
from repro.cluster import MpiJob, tibidabo
from repro.metrics import MetricsRegistry, to_json, use_registry
from repro.obs import build_run_report, diff_metrics
from repro.tracing.recorder import TraceRecorder

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
GOLDEN_REPORT = GOLDEN_DIR / "fig4_trace_report.json"
GOLDEN_METRICS = GOLDEN_DIR / "fig4_trace_metrics.json"

NUM_RANKS = 36
SEED = 7


def fig4_analysis():
    """The pinned run: exactly what ``repro trace-report`` executes."""
    registry = MetricsRegistry()
    recorder = TraceRecorder()
    with use_registry(registry):
        cluster = tibidabo(num_nodes=18, seed=SEED)
        app = BigDFT()
        MpiJob(
            cluster, NUM_RANKS, app.rank_program(cluster, NUM_RANKS),
            tracer=recorder,
        ).run()
    report = build_run_report(
        recorder,
        scenario=f"fig4-bigdft-{NUM_RANKS}ranks-seed{SEED}",
        registry=registry,
    )
    return report, registry


class TestFig4Golden:
    def test_report_matches_golden_byte_for_byte(self):
        report, _ = fig4_analysis()
        assert report.to_json() == GOLDEN_REPORT.read_text(encoding="utf-8")

    def test_metrics_match_golden_byte_for_byte(self):
        _, registry = fig4_analysis()
        assert to_json(registry, deterministic=True) == (
            GOLDEN_METRICS.read_text(encoding="utf-8")
        )

    def test_golden_pins_the_figure_4_root_cause(self):
        """The acceptance criterion, checked against the committed file
        so the pin survives even if the simulator is not re-run."""
        payload = json.loads(GOLDEN_REPORT.read_text(encoding="utf-8"))
        dominant = payload["wait_states"]["dominant"]
        assert dominant["category"] == "switch-contention"
        assert dominant["label"] == "alltoallv"
        # the diagnosis is substantial, not a rounding artefact: the
        # contended collective owns the majority of blocked time
        assert dominant["seconds"] > 0.5 * payload["wait_states"]["blocked_s"]
        assert "switch-contention" in payload["wait_states"]["explanation"]

    def test_golden_efficiencies_show_a_communication_bound_run(self):
        payload = json.loads(GOLDEN_REPORT.read_text(encoding="utf-8"))
        eff = payload["efficiency"]
        # Figure 4's signature: well balanced but communication bound.
        assert eff["load_balance"] > 0.9
        assert eff["communication_efficiency"] < 0.7
        assert payload["critical_path"]["dominant_wait_label"] == "alltoallv"

    def test_regenerated_run_passes_the_regression_gate(self):
        """What CI does: diff a fresh run against the golden baseline."""
        _, registry = fig4_analysis()
        baseline = json.loads(GOLDEN_METRICS.read_text(encoding="utf-8"))
        fresh = json.loads(to_json(registry, deterministic=True))
        diff = diff_metrics(baseline, fresh, threshold=0.05)
        assert diff.ok, diff.format()


def regenerate():  # pragma: no cover - manual tool
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    report, registry = fig4_analysis()
    GOLDEN_REPORT.write_text(report.to_json(), encoding="utf-8")
    GOLDEN_METRICS.write_text(
        to_json(registry, deterministic=True), encoding="utf-8"
    )
    print(f"wrote {GOLDEN_REPORT} and {GOLDEN_METRICS}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
