"""Tests for the combined trace-report artefact (repro.obs.report)."""

import json

import pytest

from repro.cluster import MpiJob, tibidabo
from repro.metrics import MetricsRegistry, use_registry
from repro.obs.report import REPORT_SCHEMA_VERSION, build_run_report
from repro.tracing.recorder import TraceRecorder


def _traced_run(num_ranks=4):
    registry = MetricsRegistry()
    recorder = TraceRecorder()
    with use_registry(registry):
        cluster = tibidabo(num_nodes=2, seed=3)

        def program(rank):
            yield rank.compute(0.01 * (rank.rank + 1), label="work")
            yield from rank.alltoallv([2048] * rank.size)
            yield from rank.barrier()

        MpiJob(cluster, num_ranks, program, tracer=recorder).run()
    return recorder, registry


@pytest.fixture(scope="module")
def report():
    recorder, registry = _traced_run()
    return build_run_report(
        recorder, scenario="unit-test-run", registry=registry
    )


class TestToDict:
    def test_schema_and_identity(self, report):
        payload = report.to_dict()
        assert payload["schema"] == REPORT_SCHEMA_VERSION
        assert payload["scenario"] == "unit-test-run"
        assert payload["num_ranks"] == 4
        assert payload["runtime_s"] == pytest.approx(report.runtime_seconds)

    def test_critical_path_section(self, report):
        section = report.to_dict()["critical_path"]
        assert section["total_s"] == pytest.approx(report.runtime_seconds)
        assert section["segments"] > 0
        # breakdown categories tile the whole path
        assert sum(section["breakdown_s"].values()) == pytest.approx(
            section["total_s"]
        )
        for category, label, seconds in section["by_label_s"]:
            assert isinstance(category, str) and isinstance(label, str)
            assert seconds >= 0

    def test_wait_state_section(self, report):
        section = report.to_dict()["wait_states"]
        assert section["contention_factor"] > 1
        assert section["total_wait_s"] >= section["blocked_s"] >= 0
        for entry in section["entries"]:
            assert set(entry) == {"category", "label", "seconds", "occurrences"}
        assert isinstance(section["explanation"], str)

    def test_efficiency_section(self, report):
        eff = report.to_dict()["efficiency"]
        assert 0 < eff["load_balance"] <= 1
        assert 0 < eff["communication_efficiency"] <= 1
        assert eff["parallel_efficiency"] == pytest.approx(
            eff["load_balance"] * eff["communication_efficiency"]
        )

    def test_metrics_embedded_when_registry_given(self, report):
        metrics = report.to_dict()["metrics"]
        assert metrics is not None
        assert metrics["deterministic"] is True
        assert "counters" in metrics

    def test_metrics_absent_without_registry(self):
        recorder, _ = _traced_run()
        bare = build_run_report(recorder, scenario="bare")
        assert bare.to_dict()["metrics"] is None


class TestSerialization:
    def test_to_json_is_canonical_and_parseable(self, report):
        text = report.to_json()
        assert text.endswith("\n")
        payload = json.loads(text)
        assert payload == report.to_dict()
        # sorted keys — byte-stable across runs of the same trace
        assert text == report.to_json()

    def test_deterministic_across_reruns(self):
        texts = []
        for _ in range(2):
            recorder, registry = _traced_run()
            texts.append(
                build_run_report(
                    recorder, scenario="repeat", registry=registry
                ).to_json()
            )
        assert texts[0] == texts[1]

    def test_markdown_mentions_the_findings(self, report):
        text = report.to_markdown()
        assert "# Trace report: unit-test-run" in text
        assert "## Critical path" in text
        assert "## Wait states" in text
        assert "## POP efficiencies" in text
        assert report.waits.explain() in text

    def test_save_writes_both_artefacts(self, report, tmp_path):
        paths = report.save(tmp_path / "deep" / "out")
        assert sorted(paths) == ["report.json", "report.md"]
        assert paths["report.json"].read_text() == report.to_json()
        assert paths["report.md"].read_text() == report.to_markdown()
