"""Significance-aware drift gate (ISSUE satellite).

The point of ``diff-metrics --significance``: a mean that wiggles
within run-to-run noise must NOT trip the CI gate (the plain
threshold gate would), while a genuine shift — replicate
distributions that barely overlap — must.
"""

import json

import pytest

from repro.cli import main
from repro.core.stats import summarize_replicates
from repro.errors import MetricsError
from repro.obs import (
    SUMMARY_SCHEMA,
    compare_summary_docs,
    iter_summary_points,
    load_summary_doc,
)


def summary_doc(series_values, artefact="fig3", series="linpack"):
    """A minimal --summary-out document: {x: [replicates]}."""
    return {
        "schema": SUMMARY_SCHEMA,
        "confidence": 0.95,
        "seed": 7,
        "seeds": [7, 8, 9, 10, 11],
        "artefacts": {
            artefact: {
                "series": {
                    series: {
                        "x_label": "cores",
                        "y_label": "speedup",
                        "points": [
                            {
                                "x": x,
                                "summary": summarize_replicates(
                                    values, resamples=99
                                ).to_dict(),
                            }
                            for x, values in sorted(series_values.items())
                        ],
                    }
                }
            }
        },
    }


BASE = {16: [14.9, 15.1, 15.0, 14.95, 15.05]}
NOISY = {16: [15.05, 14.92, 15.08, 14.97, 15.02]}       # same distribution
SHIFTED = {16: [10.1, 10.0, 10.2, 9.9, 10.05]}          # real regression


class TestCompareSummaryDocs:
    def test_within_noise_drift_is_not_significant(self):
        report = compare_summary_docs(summary_doc(BASE), summary_doc(NOISY))
        assert report.ok
        assert len(report.rows) == 1
        assert not report.rows[0].comparison.significant
        # The plain threshold gate WOULD have flagged this wiggle at a
        # tight threshold — that asymmetry is the satellite's point.
        means = [
            summarize_replicates(BASE[16]).mean,
            summarize_replicates(NOISY[16]).mean,
        ]
        assert means[0] != means[1]

    def test_real_shift_is_significant(self):
        report = compare_summary_docs(summary_doc(BASE), summary_doc(SHIFTED))
        assert not report.ok
        row = report.significant[0]
        assert row.key == ("fig3", "linpack", 16.0)
        assert row.comparison.relative_change == pytest.approx(-0.33, abs=0.02)

    def test_unpaired_points_flag_the_report(self):
        bigger = dict(BASE)
        bigger[64] = [60.0, 60.5, 59.5, 60.2, 59.8]
        report = compare_summary_docs(summary_doc(bigger), summary_doc(BASE))
        assert not report.ok
        assert report.only_in_a == (("fig3", "linpack", 64.0),)
        assert "only in A" in report.format()

    def test_iter_summary_points_roundtrips(self):
        doc = summary_doc(BASE)
        points = dict(iter_summary_points(doc))
        assert list(points) == [("fig3", "linpack", 16.0)]
        assert points[("fig3", "linpack", 16.0)].count == 5


class TestLoadSummaryDoc:
    def test_rejects_metrics_exports(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"counters": {}}), encoding="utf-8")
        with pytest.raises(MetricsError, match="summary-out"):
            load_summary_doc(path)

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "summary.json"
        path.write_text(
            json.dumps({"schema": 99, "artefacts": {}}), encoding="utf-8"
        )
        with pytest.raises(MetricsError, match="schema"):
            load_summary_doc(path)


class TestCliGate:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_within_noise_drift_passes_the_gate(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", summary_doc(BASE))
        b = self.write(tmp_path, "b.json", summary_doc(NOISY))
        assert main(["diff-metrics", "--significance", a, b]) == 0
        assert "no significant differences" in capsys.readouterr().out

    def test_real_drift_trips_the_gate(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", summary_doc(BASE))
        b = self.write(tmp_path, "b.json", summary_doc(SHIFTED))
        assert main(["diff-metrics", "--significance", a, b]) == 1
        assert "significant difference" in capsys.readouterr().out

    def test_compare_command_reports_the_same_verdicts(
        self, tmp_path, capsys
    ):
        a = self.write(tmp_path, "a.json", summary_doc(BASE))
        b = self.write(tmp_path, "b.json", summary_doc(SHIFTED))
        assert main(["compare", a, b]) == 1
        out = capsys.readouterr().out
        assert "fig3/linpack @ x=16" in out
        assert "differs" in out

    def test_compare_rejects_wrong_arity(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", summary_doc(BASE))
        assert main(["compare", a]) == 1
        assert "exactly two" in capsys.readouterr().err
