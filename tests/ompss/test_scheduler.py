"""Tests for repro.ompss.scheduler and repro.ompss.kernels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machines import EXYNOS5_DUAL, SNOWBALL_A9500, TEGRA3_NODE
from repro.errors import ConfigurationError, SimulationError
from repro.ompss import (
    OmpSsScheduler,
    SchedulingPolicy,
    Worker,
    WorkerKind,
    cpu_workers,
    magicfilter_taskgraph,
)
from repro.ompss.taskgraph import TaskGraph


def _fork_join(width=4, depth=2.0) -> TaskGraph:
    graph = TaskGraph()
    graph.add("fork", 1.0, outs=("x",))
    for i in range(width):
        graph.add(f"mid{i}", depth, ins=("x",), outs=(f"y{i}",))
    graph.add("join", 1.0, ins=tuple(f"y{i}" for i in range(width)))
    return graph


class TestBasicScheduling:
    def test_single_worker_serializes_total_work(self):
        graph = _fork_join()
        schedule = OmpSsScheduler(cpu_workers(1)).run(graph)
        assert schedule.makespan == pytest.approx(graph.total_work())

    def test_enough_workers_reach_critical_path(self):
        graph = _fork_join(width=4)
        schedule = OmpSsScheduler(cpu_workers(4)).run(graph)
        assert schedule.makespan == pytest.approx(graph.critical_path())

    def test_makespan_bounded_below_by_critical_path(self):
        graph = _fork_join(width=6, depth=3.0)
        for count in (1, 2, 3, 6):
            schedule = OmpSsScheduler(cpu_workers(count)).run(graph)
            assert schedule.makespan >= graph.critical_path() - 1e-9

    def test_schedule_validates_cleanly(self):
        graph = _fork_join(width=5)
        schedule = OmpSsScheduler(cpu_workers(3)).run(graph)
        schedule.validate(graph)

    def test_empty_graph(self):
        schedule = OmpSsScheduler(cpu_workers(2)).run(TaskGraph())
        assert schedule.makespan == 0.0

    def test_deterministic(self):
        graph = _fork_join(width=7)
        a = OmpSsScheduler(cpu_workers(3)).run(graph)
        b = OmpSsScheduler(cpu_workers(3)).run(graph)
        assert a.assignments == b.assignments

    def test_worker_speed_scales_durations(self):
        graph = TaskGraph()
        graph.add("t", 2.0)
        fast = OmpSsScheduler([Worker(0, WorkerKind.CPU, speed=2.0)]).run(graph)
        assert fast.makespan == pytest.approx(1.0)

    def test_no_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            OmpSsScheduler([])

    def test_duplicate_worker_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            OmpSsScheduler([Worker(0, WorkerKind.CPU), Worker(0, WorkerKind.CPU)])

    def test_incompatible_task_detected(self):
        graph = TaskGraph()
        graph.add("gpu-only", {"gpu": 1.0})
        with pytest.raises(SimulationError, match="incompatible"):
            OmpSsScheduler(cpu_workers(2)).run(graph)


class TestHeterogeneousScheduling:
    def _hetero_graph(self) -> TaskGraph:
        graph = TaskGraph()
        for i in range(8):
            graph.add(f"t{i}", {"cpu": 4.0, "gpu": 1.0}, outs=(f"d{i}",))
        return graph

    def _workers(self):
        return cpu_workers(2) + [Worker(worker_id=9, kind=WorkerKind.GPU)]

    def test_earliest_finish_uses_the_gpu(self):
        schedule = OmpSsScheduler(
            self._workers(), policy=SchedulingPolicy.EARLIEST_FINISH
        ).run(self._hetero_graph())
        gpu_busy = schedule.worker_busy_time(9)
        assert gpu_busy > 0

    def test_earliest_finish_beats_fifo_on_heterogeneous_pool(self):
        graph = self._hetero_graph()
        eft = OmpSsScheduler(
            self._workers(), policy=SchedulingPolicy.EARLIEST_FINISH
        ).run(graph)
        fifo = OmpSsScheduler(
            self._workers(), policy=SchedulingPolicy.FIFO
        ).run(graph)
        assert eft.makespan <= fifo.makespan

    def test_critical_path_priority_starts_the_chain_first(self):
        graph = TaskGraph()
        # Shards submitted BEFORE the chain: FIFO busies both workers
        # with shards, CP priority starts the chain immediately.
        for i in range(6):
            graph.add(f"shard{i}", 2.0)
        graph.add("chain0", 5.0, outs=("c0",))
        graph.add("chain1", 5.0, ins=("c0",), outs=("c1",))
        cp = OmpSsScheduler(
            cpu_workers(2), policy=SchedulingPolicy.CRITICAL_PATH
        ).run(graph)
        fifo = OmpSsScheduler(
            cpu_workers(2), policy=SchedulingPolicy.FIFO
        ).run(graph)
        # Optimal: chain on one worker [0,10] + one shard -> 12; FIFO
        # delays the chain behind shards -> 14.
        assert cp.makespan == pytest.approx(12.0)
        assert fifo.makespan > cp.makespan
        assert cp.assignments[6].start == pytest.approx(0.0)  # chain0 first

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 12), st.integers(0, 2))
    def test_property_schedules_always_valid(self, workers, tasks, shape):
        graph = TaskGraph()
        for i in range(tasks):
            if shape == 0:
                graph.add(f"t{i}", 1.0 + i * 0.1)
            elif shape == 1:
                graph.add(f"t{i}", 1.0, ins=("x",) if i else (), outs=("x",))
            else:
                graph.add(f"t{i}", 1.0, ins=("root",) if i else (), outs=(f"y{i}",) if i else ("root",))
        for policy in SchedulingPolicy:
            schedule = OmpSsScheduler(cpu_workers(workers), policy=policy).run(graph)
            schedule.validate(graph)
            assert schedule.makespan >= graph.critical_path() - 1e-9
            assert schedule.makespan <= graph.total_work() + 1e-9


class TestMagicfilterGraph:
    def test_three_sweeps_serialize(self):
        """The separable decomposition: sweep s reads sweep s-1's
        volume, so sweeps cannot overlap (the OmpSs view of the
        alltoallv barrier of Figure 4)."""
        graph = magicfilter_taskgraph(SNOWBALL_A9500, blocks_per_sweep=4)
        one = OmpSsScheduler(cpu_workers(1)).run(graph)
        many = OmpSsScheduler(cpu_workers(16)).run(graph)
        # Even unlimited workers can't beat 3 serialized sweeps of one
        # block each.
        assert many.makespan >= one.makespan / 4 - 1e-9

    def test_two_cores_halve_the_runtime(self):
        graph = magicfilter_taskgraph(SNOWBALL_A9500, blocks_per_sweep=8)
        one = OmpSsScheduler(cpu_workers(1)).run(graph)
        two = OmpSsScheduler(cpu_workers(2)).run(graph)
        assert two.makespan == pytest.approx(one.makespan / 2, rel=0.05)

    def test_tuned_unroll_beats_untuned(self):
        tuned = magicfilter_taskgraph(SNOWBALL_A9500, blocks_per_sweep=4)
        untuned = magicfilter_taskgraph(
            SNOWBALL_A9500, blocks_per_sweep=4, unroll=1
        )
        worker = cpu_workers(1)
        assert (
            OmpSsScheduler(worker).run(tuned).makespan
            < OmpSsScheduler(worker).run(untuned).makespan
        )

    def test_exynos_gpu_accelerates_doubles(self):
        """§VI-A: the Mali-T604 takes double-precision magicfilter
        sweeps, so the hybrid pool beats CPU-only."""
        graph = magicfilter_taskgraph(EXYNOS5_DUAL, blocks_per_sweep=8, use_gpu=True)
        cpu_only = OmpSsScheduler(cpu_workers(2)).run(graph)
        hybrid = OmpSsScheduler(
            cpu_workers(2) + [Worker(9, WorkerKind.GPU)]
        ).run(graph)
        assert hybrid.makespan < cpu_only.makespan

    def test_tegra3_gpu_cannot_take_dp_tasks(self):
        """Tegra3's GPU is SP-only: the graph carries no GPU durations
        and a GPU worker sits idle."""
        graph = magicfilter_taskgraph(TEGRA3_NODE, blocks_per_sweep=4, use_gpu=True)
        schedule = OmpSsScheduler(
            cpu_workers(2) + [Worker(9, WorkerKind.GPU)]
        ).run(graph)
        assert schedule.worker_busy_time(9) == 0.0

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            magicfilter_taskgraph(SNOWBALL_A9500, blocks_per_sweep=0)

    def test_gpu_requires_accelerator(self):
        with pytest.raises(ConfigurationError):
            magicfilter_taskgraph(SNOWBALL_A9500, use_gpu=True)