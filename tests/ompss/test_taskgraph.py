"""Tests for repro.ompss.taskgraph (directionality-based dependencies)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.ompss.taskgraph import Task, TaskGraph


class TestTask:
    def test_duration_lookup(self):
        task = Task(0, "t", {"cpu": 1.0, "gpu": 0.5}, (), ())
        assert task.duration_on("gpu") == 0.5
        assert task.min_duration == 0.5

    def test_unsupported_kind_rejected(self):
        task = Task(0, "t", {"cpu": 1.0}, (), ())
        with pytest.raises(ConfigurationError):
            task.duration_on("gpu")

    def test_empty_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(0, "t", {}, (), ())

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(0, "t", {"cpu": 0.0}, (), ())


class TestDependencyInference:
    def test_raw_reader_depends_on_writer(self):
        graph = TaskGraph()
        writer = graph.add("w", 1.0, outs=("x",))
        reader = graph.add("r", 1.0, ins=("x",))
        assert graph.predecessors(reader) == {writer}

    def test_war_writer_depends_on_readers(self):
        graph = TaskGraph()
        writer = graph.add("w1", 1.0, outs=("x",))
        reader = graph.add("r", 1.0, ins=("x",))
        overwriter = graph.add("w2", 1.0, outs=("x",))
        assert reader in graph.predecessors(overwriter)

    def test_waw_writer_depends_on_previous_writer(self):
        graph = TaskGraph()
        first = graph.add("w1", 1.0, outs=("x",))
        second = graph.add("w2", 1.0, outs=("x",))
        assert first in graph.predecessors(second)

    def test_independent_data_no_edges(self):
        graph = TaskGraph()
        a = graph.add("a", 1.0, outs=("x",))
        b = graph.add("b", 1.0, outs=("y",))
        assert graph.predecessors(b) == frozenset()
        assert graph.roots() == [a, b]

    def test_inout_chains_serialize(self):
        """inout (in the same task) produces a serial chain."""
        graph = TaskGraph()
        ids = [
            graph.add(f"t{i}", 1.0, ins=("acc",), outs=("acc",))
            for i in range(4)
        ]
        for previous, current in zip(ids, ids[1:]):
            assert previous in graph.predecessors(current)
        assert graph.critical_path() == pytest.approx(4.0)

    def test_readers_between_writes_all_block_the_writer(self):
        graph = TaskGraph()
        graph.add("w", 1.0, outs=("x",))
        readers = [graph.add(f"r{i}", 1.0, ins=("x",)) for i in range(3)]
        overwriter = graph.add("w2", 1.0, outs=("x",))
        assert set(readers) <= set(graph.predecessors(overwriter))

    def test_successors_inverse_of_predecessors(self):
        graph = TaskGraph()
        writer = graph.add("w", 1.0, outs=("x",))
        reader = graph.add("r", 1.0, ins=("x",))
        assert graph.successors(writer) == {reader}

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskGraph().task(0)


class TestGraphMetrics:
    def test_critical_path_of_fork_join(self):
        graph = TaskGraph()
        graph.add("fork", 1.0, outs=("x",))
        for i in range(4):
            graph.add(f"mid{i}", 2.0, ins=("x",), outs=(f"y{i}",))
        graph.add("join", 1.0, ins=tuple(f"y{i}" for i in range(4)))
        assert graph.critical_path() == pytest.approx(4.0)
        assert graph.total_work() == pytest.approx(10.0)

    def test_critical_path_uses_fastest_kind(self):
        graph = TaskGraph()
        graph.add("t", {"cpu": 4.0, "gpu": 1.0})
        assert graph.critical_path() == pytest.approx(1.0)

    def test_empty_graph(self):
        assert TaskGraph().critical_path() == 0.0
        assert len(TaskGraph()) == 0

    def test_upward_rank_orders_chain(self):
        graph = TaskGraph()
        first = graph.add("a", 1.0, outs=("x",))
        second = graph.add("b", 1.0, ins=("x",), outs=("y",))
        third = graph.add("c", 1.0, ins=("y",))
        ranks = graph.upward_rank()
        assert ranks[first] > ranks[second] > ranks[third]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["x", "y", "z"]), st.booleans()),
        min_size=1, max_size=25,
    ))
    def test_property_graph_is_acyclic_by_construction(self, accesses):
        """Edges only ever point from earlier to later submissions, so
        submission order is a valid topological order."""
        graph = TaskGraph()
        for datum, is_write in accesses:
            if is_write:
                graph.add("w", 1.0, outs=(datum,))
            else:
                graph.add("r", 1.0, ins=(datum,))
        for task in graph:
            for predecessor in graph.predecessors(task.task_id):
                assert predecessor < task.task_id
