"""Tests for repro.osmodel.page_allocator (§V-A-1 substrate)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.osmodel.page_allocator import (
    AllocationPattern,
    BuddyAllocator,
    PageAllocation,
    ReusingPageAllocator,
    boot_allocator,
)


class TestPageAllocation:
    def test_consecutive_pattern(self):
        alloc = PageAllocation(frames=(4, 5, 6), page_size=4096)
        assert alloc.pattern is AllocationPattern.CONSECUTIVE

    def test_fragmented_pattern(self):
        alloc = PageAllocation(frames=(4, 9, 6), page_size=4096)
        assert alloc.pattern is AllocationPattern.FRAGMENTED

    def test_physical_address_translation(self):
        alloc = PageAllocation(frames=(10, 3), page_size=4096)
        assert alloc.physical_address(0) == 10 * 4096
        assert alloc.physical_address(4096 + 7) == 3 * 4096 + 7

    def test_out_of_range_offset_rejected(self):
        alloc = PageAllocation(frames=(1,), page_size=4096)
        with pytest.raises(AllocationError):
            alloc.physical_address(4096)

    def test_duplicate_frames_rejected(self):
        with pytest.raises(AllocationError):
            PageAllocation(frames=(1, 1), page_size=4096)


class TestBuddyAllocator:
    def test_fresh_boot_allocates_consecutive(self):
        """Pristine free pool -> consecutive frames (the 'good' runs)."""
        buddy = BuddyAllocator(1024)
        alloc = buddy.allocate(13)
        assert alloc.pattern is AllocationPattern.CONSECUTIVE
        assert alloc.frames[0] == 0

    def test_fragmented_boot_scatters(self):
        """Churned free pool -> non-consecutive frames (the 'bad' runs)."""
        buddy = BuddyAllocator(4096)
        buddy.fragment(0.8, random.Random(3))
        alloc = buddy.allocate(13)
        assert alloc.pattern is AllocationPattern.FRAGMENTED

    def test_free_returns_frames(self):
        buddy = BuddyAllocator(64)
        before = buddy.free_frames
        alloc = buddy.allocate(8)
        assert buddy.free_frames == before - 8
        buddy.free(alloc)
        assert buddy.free_frames == before

    def test_double_free_detected(self):
        buddy = BuddyAllocator(64)
        alloc = buddy.allocate(2)
        buddy.free(alloc)
        with pytest.raises(AllocationError):
            buddy.free(alloc)

    def test_exhaustion_raises_and_rolls_back(self):
        buddy = BuddyAllocator(16)
        buddy.allocate(10)
        free_before = buddy.free_frames
        with pytest.raises(AllocationError):
            buddy.allocate(7)
        assert buddy.free_frames == free_before  # partial grab rolled back

    def test_coalescing_restores_large_blocks(self):
        buddy = BuddyAllocator(1024)
        allocations = [buddy.allocate(1) for _ in range(1024)]
        for alloc in allocations:
            buddy.free(alloc)
        big = buddy.allocate(1024)
        assert big.pattern is AllocationPattern.CONSECUTIVE

    def test_fragment_after_allocation_rejected(self):
        buddy = BuddyAllocator(64)
        buddy.allocate(1)
        with pytest.raises(AllocationError):
            buddy.fragment(0.5, random.Random(0))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BuddyAllocator(0)
        with pytest.raises(ConfigurationError):
            BuddyAllocator(64, page_size=3000)
        with pytest.raises(ConfigurationError):
            BuddyAllocator(64).allocate(0)
        with pytest.raises(ConfigurationError):
            BuddyAllocator(64).fragment(1.5, random.Random(0))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(64, 512),
        st.lists(st.integers(1, 16), min_size=1, max_size=12),
        st.floats(0.0, 0.9),
        st.integers(0, 10),
    )
    def test_property_no_frame_allocated_twice(self, frames, sizes, churn, seed):
        buddy = BuddyAllocator(frames)
        buddy.fragment(churn, random.Random(seed))
        live: set[int] = set()
        for size in sizes:
            try:
                alloc = buddy.allocate(size)
            except AllocationError:
                break
            overlap = live & set(alloc.frames)
            assert not overlap, f"frames {overlap} handed out twice"
            live |= set(alloc.frames)
            assert all(0 <= f < frames for f in alloc.frames)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(64, 512), st.integers(0, 5))
    def test_property_alloc_free_preserves_frame_count(self, frames, seed):
        buddy = BuddyAllocator(frames)
        rng = random.Random(seed)
        allocations = []
        for _ in range(10):
            try:
                allocations.append(buddy.allocate(rng.randint(1, 8)))
            except AllocationError:
                break
        rng.shuffle(allocations)
        for alloc in allocations:
            buddy.free(alloc)
        assert buddy.free_frames == frames


class TestReusingPageAllocator:
    def test_same_size_gets_same_frames_back(self):
        """The paper's within-run quirk: 'OS was likely to reuse the
        same pages, as we did malloc/free repeatedly'."""
        reusing = ReusingPageAllocator(BuddyAllocator(1024))
        first = reusing.allocate(8)
        reusing.free(first)
        second = reusing.allocate(8)
        assert second.frames == first.frames

    def test_different_size_misses_the_quick_list(self):
        reusing = ReusingPageAllocator(BuddyAllocator(1024))
        first = reusing.allocate(8)
        reusing.free(first)
        other = reusing.allocate(4)
        assert other.frames != first.frames

    def test_drain_releases_to_backing(self):
        backing = BuddyAllocator(64)
        reusing = ReusingPageAllocator(backing)
        alloc = reusing.allocate(8)
        reusing.free(alloc)
        assert backing.free_frames == 64 - 8  # still held by quick list
        reusing.drain()
        assert backing.free_frames == 64


class TestBootAllocator:
    def test_seeded_boots_are_reproducible(self):
        a = boot_allocator(2048, fragmentation=0.7, seed=9).allocate(13)
        b = boot_allocator(2048, fragmentation=0.7, seed=9).allocate(13)
        assert a.frames == b.frames

    def test_different_seeds_give_different_layouts(self):
        """Run-to-run divergence: same experiment, different physical
        placement — the §V-A-1 irreproducibility."""
        layouts = {
            boot_allocator(2048, fragmentation=0.7, seed=s).allocate(13).frames
            for s in range(5)
        }
        assert len(layouts) > 1

    def test_zero_fragmentation_always_consecutive(self):
        for seed in range(3):
            alloc = boot_allocator(2048, fragmentation=0.0, seed=seed).allocate(13)
            assert alloc.pattern is AllocationPattern.CONSECUTIVE
