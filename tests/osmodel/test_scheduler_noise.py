"""Tests for repro.osmodel.scheduler, noise and system (Figure 5)."""

import pytest

from repro.arch.machines import SNOWBALL_A9500, XEON_X5550
from repro.errors import ConfigurationError
from repro.osmodel.noise import PeriodicDaemonNoise, QuietNoise
from repro.osmodel.scheduler import (
    CfsScheduler,
    RtFifoScheduler,
    SchedulingPolicy,
    scheduler_for_policy,
)
from repro.osmodel.system import OSModel


class TestCfsScheduler:
    def test_never_degraded(self):
        scheduler = CfsScheduler(seed=1)
        assert not any(scheduler.next_sample().degraded for _ in range(500))

    def test_slowdown_close_to_one(self):
        scheduler = CfsScheduler(jitter=0.01, seed=1)
        samples = [scheduler.next_sample().slowdown for _ in range(200)]
        assert all(1.0 <= s < 1.1 for s in samples)

    def test_reset_replays_the_stream(self):
        scheduler = CfsScheduler(seed=5)
        first = [scheduler.next_sample().slowdown for _ in range(10)]
        scheduler.reset()
        second = [scheduler.next_sample().slowdown for _ in range(10)]
        assert first == second

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            CfsScheduler(jitter=-0.1)


class TestRtFifoScheduler:
    def test_two_modes_exist(self):
        """Figure 5a: a nominal mode and a degraded mode ~5x slower."""
        scheduler = RtFifoScheduler(seed=3)
        samples = [scheduler.next_sample() for _ in range(3000)]
        degraded = [s for s in samples if s.degraded]
        nominal = [s for s in samples if not s.degraded]
        assert degraded and nominal
        ratio = (sum(s.slowdown for s in degraded) / len(degraded)) / (
            sum(s.slowdown for s in nominal) / len(nominal)
        )
        assert 3.5 <= ratio <= 6.0  # "almost 5 times lower"

    def test_degraded_samples_are_consecutive(self):
        """Figure 5b: degraded measurements occur in consecutive runs,
        not scattered."""
        scheduler = RtFifoScheduler(seed=3)
        flags = [scheduler.next_sample().degraded for _ in range(3000)]
        degraded_count = sum(flags)
        transitions = sum(
            1 for a, b in zip(flags, flags[1:]) if a != b
        )
        assert degraded_count > 20
        # Far fewer transitions than degraded samples => long runs.
        assert transitions < degraded_count / 5

    def test_reset_restores_nominal_state(self):
        scheduler = RtFifoScheduler(seed=3, p_enter=0.99)
        scheduler.next_sample()
        scheduler.next_sample()
        assert scheduler.in_degraded_regime
        scheduler.reset()
        assert not scheduler.in_degraded_regime

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RtFifoScheduler(degraded_factor=0.5)
        with pytest.raises(ConfigurationError):
            RtFifoScheduler(p_enter=0.0)
        with pytest.raises(ConfigurationError):
            RtFifoScheduler(p_exit=1.0)


class TestSchedulerForPolicy:
    def test_rt_on_arm_is_pathological(self):
        scheduler = scheduler_for_policy(SchedulingPolicy.FIFO, on_arm=True)
        assert isinstance(scheduler, RtFifoScheduler)

    def test_rt_on_x86_behaves_like_cfs(self):
        """Reference [15]: RT priority helps on standard systems —
        certainly no degraded regime."""
        scheduler = scheduler_for_policy(SchedulingPolicy.FIFO, on_arm=False)
        assert isinstance(scheduler, CfsScheduler)

    def test_default_policy_is_cfs_everywhere(self):
        for on_arm in (True, False):
            scheduler = scheduler_for_policy(SchedulingPolicy.OTHER, on_arm=on_arm)
            assert isinstance(scheduler, CfsScheduler)


class TestNoise:
    def test_quiet_steals_nothing(self):
        assert QuietNoise().stolen_time(100.0) == 0.0

    def test_quiet_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            QuietNoise().stolen_time(-1.0)

    def test_periodic_steals_expected_fraction(self):
        noise = PeriodicDaemonNoise(period_s=0.1, busy_s=0.001, seed=0)
        stolen = noise.stolen_time(10.0)
        assert stolen == pytest.approx(0.1, rel=0.05)  # ~1% of 10 s

    def test_short_interval_may_miss_the_daemon(self):
        noise = PeriodicDaemonNoise(period_s=1.0, busy_s=0.01, seed=1)
        total = sum(noise.stolen_time(0.1) for _ in range(10))
        assert total == pytest.approx(0.01, abs=0.011)

    def test_busy_longer_than_period_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicDaemonNoise(period_s=0.1, busy_s=0.2)


class TestOSModel:
    def test_boot_on_arm_with_rt_policy(self):
        os_model = OSModel.boot(
            SNOWBALL_A9500, policy=SchedulingPolicy.FIFO, seed=1
        )
        assert isinstance(os_model.scheduler, RtFifoScheduler)

    def test_boot_on_x86_with_rt_policy(self):
        os_model = OSModel.boot(XEON_X5550, policy=SchedulingPolicy.FIFO, seed=1)
        assert isinstance(os_model.scheduler, CfsScheduler)

    def test_page_size_comes_from_machine(self):
        os_model = OSModel.boot(SNOWBALL_A9500, seed=0)
        assert os_model.page_size == SNOWBALL_A9500.page_size

    def test_reset_replays_scheduler(self):
        os_model = OSModel.boot(SNOWBALL_A9500, policy=SchedulingPolicy.FIFO, seed=2)
        first = [os_model.scheduler.next_sample().slowdown for _ in range(5)]
        os_model.reset()
        second = [os_model.scheduler.next_sample().slowdown for _ in range(5)]
        assert first == second

    def test_fragmented_boot_gives_scattered_pages(self):
        os_model = OSModel.boot(SNOWBALL_A9500, fragmentation=0.8, seed=3)
        from repro.osmodel.page_allocator import AllocationPattern
        alloc = os_model.allocator.allocate(13)
        assert alloc.pattern is AllocationPattern.FRAGMENTED
