"""Property-based tests for the rewritten DES event queue.

The tuple-heap + slot-table engine must be observationally identical
to a trivially-correct model under arbitrary interleavings of
schedule / cancel / kill:

* **causality** — observed fire times never decrease;
* **FIFO tie-breaking** — events sharing a timestamp fire in schedule
  order, even when cancellations punch holes between them and lazy
  compaction reshuffles the heap mid-drain;
* **waiter drain** — every ``on_finish`` waiter fires exactly once no
  matter which terminal state (finish / kill / fail) the process
  reaches, and no waiter is ever dropped.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.cluster.des import Process, Simulator, Timeout
from repro.errors import SimulationError

# One scripted queue interaction: a delay bucket (coarse grid to force
# plenty of timestamp ties) and whether the event is later cancelled.
actions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
    min_size=1,
    max_size=120,
)


class TestQueueOrderProperties:
    @given(actions=actions)
    @settings(max_examples=60)
    def test_fifo_ties_and_causality_under_cancel(self, actions):
        sim = Simulator()
        fired = []
        expected = []
        events = []
        for i, (bucket, cancel) in enumerate(actions):
            delay = bucket * 0.5
            events.append(sim.schedule(delay, lambda i=i: fired.append(i)))
            if not cancel:
                expected.append((delay, i))
        for (_, cancel), event in zip(actions, events):
            if cancel:
                event.cancel()
        sim.run()
        # Reference model: stable sort by (time, schedule order).
        assert fired == [i for _, i in sorted(expected)]
        assert sim.pending == 0
        assert sim.events_executed == len(expected)

    @given(actions=actions, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60)
    def test_mid_drain_scheduling_preserves_global_order(self, actions, seed):
        # Half the events are scheduled up front, half from inside
        # callbacks (landing in the insert heap while the sorted drain
        # array is active) — the merge must still yield global
        # (time, seq) order.
        sim = Simulator()
        fired = []

        def record_and_spawn(i, bucket):
            fired.append(sim.now)
            if bucket % 2:
                sim.schedule(0.25, lambda: fired.append(sim.now))

        for i, (bucket, _) in enumerate(actions):
            sim.schedule(bucket * 0.5, lambda i=i, b=bucket: record_and_spawn(i, b))
        sim.run()
        assert fired == sorted(fired)  # causality: monotone times
        assert sim.pending == 0

    @given(
        buckets=st.lists(
            st.integers(min_value=0, max_value=3), min_size=1, max_size=60
        ),
        until_bucket=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=40)
    def test_run_until_pause_loses_nothing(self, buckets, until_bucket):
        sim = Simulator()
        fired = []
        for i, bucket in enumerate(buckets):
            sim.schedule(bucket * 1.0, lambda i=i: fired.append(i))
        until = until_bucket * 1.0
        sim.run(until=until)
        early = list(fired)
        assert all(buckets[i] * 1.0 <= until for i in early)
        sim.run()
        assert sorted(fired) == list(range(len(buckets)))
        assert fired[: len(early)] == early


# A process script: how the rank terminates, and after how many sleeps.
termination = st.sampled_from(["finish", "kill", "fail"])


class TestWaiterDrainProperty:
    @given(
        scripts=st.lists(
            st.tuples(
                termination,
                st.integers(min_value=1, max_value=3),  # sleeps before the end
                st.integers(min_value=0, max_value=2),  # waiters attached
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60)
    def test_every_waiter_fires_exactly_once(self, scripts):
        sim = Simulator()
        fired: dict[tuple[int, int], int] = {}
        processes = []

        def program(sleeps):
            for _ in range(sleeps):
                yield Timeout(1.0)

        for p_index, (how, sleeps, n_waiters) in enumerate(scripts):
            process = Process(sim, program(sleeps), name=f"rank{p_index}")
            process.start()
            for w_index in range(n_waiters):
                key = (p_index, w_index)
                fired[key] = 0

                def waiter(key=key, process=process):
                    assert process.terminated  # never fires early
                    fired[key] += 1

                process.on_finish(waiter)
            # Inject at t=0.5, before the first sleep completes, so a
            # scripted kill/fail always beats normal completion.
            if how == "kill":
                sim.schedule(0.5, process.kill)
            elif how == "fail":
                sim.schedule(
                    0.5,
                    lambda process=process: process.interrupt(
                        SimulationError("injected"), immediate=True
                    ),
                )
            processes.append(process)
        sim.run()
        assert all(count == 1 for count in fired.values()), fired
        assert all(process.terminated for process in processes)
        # Terminal state matches the script (a rank scripted to finish
        # was neither crashed nor failed, and vice versa).
        for process, (how, _, _) in zip(processes, scripts):
            if how == "finish":
                assert process.finished
            elif how == "kill":
                assert process.crashed
            else:
                assert process.failure is not None
