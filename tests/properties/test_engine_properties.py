"""Property-based tests for the engine's metrics invariants.

Two ISSUE guarantees:

* the deterministic metrics export of a sweep is identical at
  ``jobs=1`` and ``jobs=4`` (worker snapshots captured uniformly and
  merged in submission order, volatile wall metrics excluded);
* re-running a sweep against a warm cache reports zero misses.

Each example simulates real sweeps, so the budgets stay small.
"""

import tempfile

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.engine import ExperimentEngine, ResultCache
from repro.engine.sweeps import run_magicfilter_sweep
from repro.metrics import MetricsRegistry, to_json, use_registry

unroll_subsets = st.lists(
    st.integers(min_value=1, max_value=12), min_size=1, max_size=3, unique=True
).map(sorted)


def sweep_metrics(jobs, unrolls, cache=None):
    """Deterministic-export JSON of one magicfilter sweep."""
    reg = MetricsRegistry()
    with use_registry(reg):
        engine = ExperimentEngine(jobs=jobs, cache=cache)
        run_magicfilter_sweep(
            engine, "Intel Xeon X5550", unrolls=unrolls, label="prop"
        )
    return reg, to_json(reg, deterministic=True)


class TestJobsEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(unroll_subsets)
    def test_jobs1_and_jobs4_export_identical_deterministic_metrics(
        self, unrolls
    ):
        _, serial = sweep_metrics(1, unrolls)
        _, parallel = sweep_metrics(4, unrolls)
        assert serial == parallel

    @settings(max_examples=5, deadline=None)
    @given(unroll_subsets)
    def test_point_count_matches_sweep_size(self, unrolls):
        reg, _ = sweep_metrics(1, unrolls)
        assert reg.counter("engine.points").value == len(unrolls)
        assert reg.counter("engine.cache.misses").value == len(unrolls)
        assert reg.counter("engine.sweeps").value == 1


class TestWarmCache:
    @settings(max_examples=5, deadline=None)
    @given(unroll_subsets)
    def test_warm_cache_rerun_reports_zero_misses(self, unrolls):
        # A fresh directory per example: tmp_path would be shared
        # across hypothesis examples and pre-warm later ones.
        with tempfile.TemporaryDirectory() as root:
            cache = ResultCache(root)
            cold_reg, _ = sweep_metrics(1, unrolls, cache=cache)
            warm_reg, _ = sweep_metrics(1, unrolls, cache=cache)
        assert cold_reg.counter("engine.cache.misses").value == len(unrolls)
        assert warm_reg.counter("engine.cache.misses").value == 0
        assert warm_reg.counter("engine.cache.hits").value == len(unrolls)
