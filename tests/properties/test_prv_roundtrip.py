"""Property-based round-trip tests for the Paraver export/parse pair.

Times are generated on the nanosecond grid (what ``.prv`` stores), so
parsed values are compared within one nanosecond; fault records ride
through a canonical-JSON comment line and must round-trip *exactly*.
The strategies deliberately leave rank gaps (ranks from {0, 3, 7}) so
traces with silent ranks exercise the exporter's header arithmetic.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.tracing.paraver import export_prv, parse_prv
from repro.tracing.recorder import TraceRecorder

_NS = 1e9

labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)
ranks = st.sampled_from([0, 3, 7])
times_ns = st.integers(min_value=0, max_value=10**12)

state_specs = st.tuples(ranks, labels, times_ns, times_ns)
comm_specs = st.tuples(
    ranks, ranks, st.integers(min_value=0, max_value=2**20),
    times_ns, times_ns, st.integers(min_value=0, max_value=2**30),
)
detail_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(alphabet="abcxyz", max_size=6),
    st.lists(st.integers(min_value=0, max_value=99), max_size=4),
)
fault_specs = st.tuples(
    labels, times_ns, labels,
    st.dictionaries(
        st.sampled_from(["cores", "node", "ms", "extent"]),
        detail_values, max_size=3,
    ),
)


class _Msg:
    def __init__(self, src, dst, nbytes, send_ns, arrival_ns, tag):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.send_time = send_ns / _NS
        self.arrival_time = arrival_ns / _NS
        self.label = "comm"
        self.seq = -1


def _build(states, comms, faults):
    recorder = TraceRecorder()
    for rank, label, a, b in states:
        t0, t1 = sorted((a, b))
        recorder.state(rank, label, t0 / _NS, t1 / _NS)
    for src, dst, nbytes, a, b, tag in comms:
        send, arrival = sorted((a, b))
        recorder.comm(_Msg(src, dst, nbytes, send, arrival, tag))
    for kind, time_ns, target, detail in faults:
        recorder.fault(kind, time_ns / _NS, target, **detail)
    return recorder


recorders = st.builds(
    _build,
    st.lists(state_specs, max_size=12),
    st.lists(comm_specs, max_size=12),
    st.lists(fault_specs, max_size=6),
).filter(lambda r: r.num_ranks > 0)


@given(recorders)
def test_export_parse_export_is_a_fixed_point(recorder):
    once = export_prv(recorder)
    assert export_prv(parse_prv(once)) == once


@given(recorders)
def test_states_round_trip_within_one_nanosecond(recorder):
    parsed = parse_prv(export_prv(recorder))
    assert len(parsed.states) == len(recorder.states)
    for before, after in zip(recorder.states, parsed.states):
        assert after.rank == before.rank
        assert after.label == before.label
        assert abs(after.t0 - before.t0) <= 1.5 / _NS
        assert abs(after.t1 - before.t1) <= 1.5 / _NS


@given(recorders)
def test_comm_endpoints_and_sizes_round_trip(recorder):
    parsed = parse_prv(export_prv(recorder))
    assert len(parsed.comms) == len(recorder.comms)
    for before, after in zip(recorder.comms, parsed.comms):
        assert (after.src, after.dst, after.nbytes) == (
            before.src, before.dst, before.nbytes
        )
        assert abs(after.send_time - before.send_time) <= 1.5 / _NS
        assert abs(after.arrival_time - before.arrival_time) <= 1.5 / _NS


@given(recorders)
def test_faults_round_trip_exactly(recorder):
    parsed = parse_prv(export_prv(recorder))
    assert parsed.faults == recorder.faults


@given(recorders)
def test_num_ranks_preserved(recorder):
    assert parse_prv(export_prv(recorder)).num_ranks == recorder.num_ranks


def test_empty_trace_rejected():
    with pytest.raises(TraceError):
        export_prv(TraceRecorder())


def test_malformed_fault_comment_rejected():
    text = export_prv(_build([(0, "w", 0, 10)], [], []))
    text += "# fault {not json}\n"
    with pytest.raises(TraceError, match="fault comment"):
        parse_prv(text)
