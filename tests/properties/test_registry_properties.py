"""Property-based tests for the registry invariants (ISSUE satellites).

Strategies stick to integers (as floats they are exact), so merge
associativity/commutativity can assert exact equality instead of
tolerances.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st

from repro.metrics import MetricsRegistry

amounts = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=0, max_size=30
)
observations = st.lists(
    st.integers(min_value=-100, max_value=10**4), min_size=0, max_size=50
)
BOUNDS = (1.0, 10.0, 100.0)


def counter_registry(values):
    reg = MetricsRegistry()
    for value in values:
        reg.inc("c", value)
    return reg


def mixed_registry(counter_vals, gauge_vals, hist_vals):
    reg = MetricsRegistry()
    for value in counter_vals:
        reg.inc("c", value)
    for value in gauge_vals:
        reg.gauge_max("g", value)
    for value in hist_vals:
        reg.histogram("h", upper_bounds=BOUNDS).observe(value)
    return reg


class TestCounterProperties:
    @given(amounts)
    def test_counter_is_monotone_under_any_increment_sequence(self, values):
        reg = MetricsRegistry()
        last = 0.0
        for value in values:
            reg.inc("c", value)
            assert reg.counter("c").value >= last
            last = reg.counter("c").value
        assert last == sum(values)


class TestHistogramProperties:
    @given(observations)
    def test_bucket_counts_always_sum_to_observation_count(self, values):
        reg = MetricsRegistry()
        hist = reg.histogram("h", upper_bounds=BOUNDS)
        for value in values:
            hist.observe(value)
            assert sum(hist.bucket_counts) == hist.count
        assert hist.count == len(values)
        assert hist.sum == sum(float(v) for v in values)

    @given(observations)
    def test_buckets_are_cumulative_by_bound(self, values):
        reg = MetricsRegistry()
        hist = reg.histogram("h", upper_bounds=BOUNDS)
        for value in values:
            hist.observe(value)
        cumulative = 0
        for bound, count in zip(hist.upper_bounds, hist.bucket_counts):
            cumulative += count
            assert cumulative == sum(1 for v in values if v <= bound)


registries = st.builds(
    mixed_registry,
    amounts,
    st.lists(st.integers(min_value=-100, max_value=100), max_size=10),
    observations,
)


class TestMergeProperties:
    @staticmethod
    def _merged(*snaps):
        reg = MetricsRegistry()
        for snap in snaps:
            reg.merge(snap)
        return reg.snapshot()

    @given(registries, registries)
    def test_merge_is_commutative(self, a, b):
        sa, sb = a.snapshot(), b.snapshot()
        assert self._merged(sa, sb) == self._merged(sb, sa)

    @given(registries, registries, registries)
    def test_merge_is_associative(self, a, b, c):
        sa, sb, sc = a.snapshot(), b.snapshot(), c.snapshot()
        left = MetricsRegistry()
        left.merge(sa)
        left.merge(sb)
        ab = left.snapshot()
        right = MetricsRegistry()
        right.merge(sb)
        right.merge(sc)
        bc = right.snapshot()
        assert self._merged(ab, sc) == self._merged(sa, bc)

    @given(registries)
    def test_merge_with_empty_is_identity(self, a):
        snap = a.snapshot()
        target = MetricsRegistry()
        target.merge(snap)
        target.merge(MetricsRegistry().snapshot())
        assert target.snapshot() == snap

    @given(registries)
    def test_snapshot_merge_roundtrip(self, a):
        target = MetricsRegistry()
        target.merge(a.snapshot())
        assert target.snapshot() == a.snapshot()
