"""Property-based tests for the span profile tree invariants.

Hypothesis generates random well-formed span programs — sequences of
push/pop/tick operations driven by a deterministic fake clock — and the
tests assert the two structural invariants the module documents:
children's inclusive time never exceeds the parent's, and exclusive
time plus children's inclusive time equals inclusive time exactly.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st

from repro.metrics import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


# One program step: ("push", name) opens a child span, ("pop",) closes
# the innermost open span (skipped when only the root is open), and
# ("tick", n) advances the clock by n integer time units (floats of
# integers add exactly, so the invariants can be asserted with ==).
steps = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.sampled_from("abcd")),
        st.tuples(st.just("pop")),
        st.tuples(st.just("tick"), st.integers(min_value=0, max_value=7)),
    ),
    max_size=60,
)


def run_program(program):
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    open_spans = []
    for step in program:
        if step[0] == "push":
            span = reg.span(step[1])
            span.__enter__()
            open_spans.append(span)
        elif step[0] == "pop":
            if open_spans:
                open_spans.pop().__exit__(None, None, None)
        else:
            clock.tick(float(step[1]))
    while open_spans:
        open_spans.pop().__exit__(None, None, None)
    return reg


class TestSpanTreeInvariants:
    @given(steps)
    def test_child_inclusive_never_exceeds_parent_inclusive(self, program):
        reg = run_program(program)
        for _, node in reg.spans.walk():
            for child in node.children.values():
                assert child.inclusive_seconds <= node.inclusive_seconds

    @given(steps)
    def test_exclusive_plus_children_equals_inclusive(self, program):
        reg = run_program(program)
        nodes = [reg.spans] + [node for _, node in reg.spans.walk()]
        for node in nodes:
            children_sum = sum(
                c.inclusive_seconds for c in node.children.values()
            )
            if node is reg.spans:
                continue  # the root carries no time of its own
            assert node.exclusive_seconds + children_sum == (
                node.inclusive_seconds
            )

    @given(steps)
    def test_counts_match_program_pushes(self, program):
        reg = run_program(program)
        total_count = sum(node.count for _, node in reg.spans.walk())
        pushes = sum(1 for step in program if step[0] == "push")
        assert total_count == pushes

    @given(steps)
    def test_total_time_never_exceeds_clock(self, program):
        reg = run_program(program)
        elapsed = sum(float(s[1]) for s in program if s[0] == "tick")
        for child in reg.spans.children.values():
            assert child.inclusive_seconds <= elapsed

    @given(steps, steps)
    def test_merge_preserves_totals(self, program_a, program_b):
        a = run_program(program_a)
        b = run_program(program_b)
        count_a = sum(node.count for _, node in a.spans.walk())
        count_b = sum(node.count for _, node in b.spans.walk())
        a.spans.merge(b.spans.to_dict())
        merged_count = sum(node.count for _, node in a.spans.walk())
        assert merged_count == count_a + count_b
