"""Property-based tests for the statistical-rigor core.

The ISSUE guarantees every new stats routine rides on Hypothesis
properties rather than hand-picked examples:

* the bootstrap confidence interval always contains the sample mean
  (the interval is explicitly widened to include the point estimate);
* bootstrap/permutation results are pure functions of (data, seed);
* ``summarize`` is equivariant under positive scaling;
* ``detect_modes`` is stable under permutation of the input;
* p-values live in (0, 1], comparisons are label-symmetric, and
  identical samples never read as significantly different.
"""

import math

import pytest

pytest.importorskip("hypothesis")

from hypothesis import assume, given, settings, strategies as st

from repro.core.stats import (
    bootstrap_ci,
    compare_replicates,
    detect_modes,
    mann_whitney,
    permutation_test,
    stable_seed,
    summarize,
    summarize_replicates,
)

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
series = st.lists(finite, min_size=1, max_size=24)
pair = st.tuples(
    st.lists(finite, min_size=1, max_size=12),
    st.lists(finite, min_size=1, max_size=12),
)
seeds = st.integers(min_value=0, max_value=2**32)


class TestBootstrapCi:
    @settings(max_examples=40, deadline=None)
    @given(series, seeds)
    def test_interval_contains_sample_mean(self, values, seed):
        mean = summarize(values).mean
        low, high = bootstrap_ci(values, resamples=199, seed=seed)
        assert low <= mean <= high

    @settings(max_examples=40, deadline=None)
    @given(series, seeds)
    def test_seed_determinism(self, values, seed):
        first = bootstrap_ci(values, resamples=199, seed=seed)
        second = bootstrap_ci(values, resamples=199, seed=seed)
        assert first == second

    @settings(max_examples=20, deadline=None)
    @given(st.lists(finite, min_size=5, max_size=24, unique=True), seeds)
    def test_interval_is_ordered_and_bounded_by_data(self, values, seed):
        low, high = bootstrap_ci(values, resamples=199, seed=seed)
        assert low <= high
        # Tolerance of a few ulps: resample means are computed in
        # floating point and can graze past the data extremes.
        slack = 1e-9 * max(1.0, abs(min(values)), abs(max(values)))
        assert min(values) - slack <= low
        assert high <= max(values) + slack


class TestSummarizeEquivariance:
    @settings(max_examples=40, deadline=None)
    @given(series, positive)
    def test_scaling_scales_location_and_spread(self, values, factor):
        base = summarize(values)
        scaled = summarize([v * factor for v in values])
        assert scaled.mean == pytest.approx(base.mean * factor, rel=1e-9, abs=1e-6)
        assert scaled.std == pytest.approx(base.std * factor, rel=1e-9, abs=1e-6)
        assert scaled.median == pytest.approx(
            base.median * factor, rel=1e-9, abs=1e-6
        )
        assert scaled.minimum == pytest.approx(
            base.minimum * factor, rel=1e-9, abs=1e-6
        )
        assert scaled.maximum == pytest.approx(
            base.maximum * factor, rel=1e-9, abs=1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(positive, min_size=2, max_size=24), positive)
    def test_cv_is_scale_invariant(self, values, factor):
        base = summarize(values)
        scaled = summarize([v * factor for v in values])
        assert scaled.cv == pytest.approx(base.cv, rel=1e-6, abs=1e-9)


class TestDetectModesStability:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(finite, min_size=1, max_size=24), seeds)
    def test_permutation_invariance(self, values, seed):
        import random

        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        original = [(m.center, m.count) for m in detect_modes(values)]
        permuted = [(m.center, m.count) for m in detect_modes(shuffled)]
        assert sorted(original) == sorted(permuted)


class TestSignificanceTests:
    @settings(max_examples=40, deadline=None)
    @given(pair)
    def test_p_values_in_unit_interval(self, samples):
        a, b = samples
        assert 0.0 < mann_whitney(a, b).p_value <= 1.0
        assert 0.0 < permutation_test(a, b, resamples=99).p_value <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(pair, seeds)
    def test_permutation_seed_determinism(self, samples, seed):
        a, b = samples
        first = permutation_test(a, b, resamples=99, seed=seed)
        second = permutation_test(a, b, resamples=99, seed=seed)
        assert first == second

    @settings(max_examples=40, deadline=None)
    @given(pair)
    def test_mann_whitney_is_label_symmetric(self, samples):
        a, b = samples
        assert mann_whitney(a, b).p_value == pytest.approx(
            mann_whitney(b, a).p_value, rel=1e-12, abs=1e-15
        )

    @settings(max_examples=40, deadline=None)
    @given(series)
    def test_identical_samples_never_differ_significantly(self, values):
        comparison = compare_replicates(values, list(values), resamples=99)
        assert not comparison.significant
        assert comparison.mann_whitney_p == pytest.approx(1.0)


class TestReplicateSummary:
    @settings(max_examples=40, deadline=None)
    @given(series, seeds)
    def test_summary_roundtrips_through_dict(self, values, seed):
        summary = summarize_replicates(values, seed=seed, resamples=99)
        rebuilt = type(summary).from_dict(summary.to_dict())
        assert rebuilt == summary

    @settings(max_examples=40, deadline=None)
    @given(series, seeds)
    def test_summary_brackets_mean_and_orders_extremes(self, values, seed):
        summary = summarize_replicates(values, seed=seed, resamples=99)
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.count == len(values)


class TestStableSeed:
    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=20), st.integers(), st.integers())
    def test_distinct_parts_rarely_collide_and_repeat_exactly(
        self, label, x, y
    ):
        assume(x != y)
        assert stable_seed(label, x) == stable_seed(label, x)
        assert stable_seed(label, x) != stable_seed(label, y)
        assert 0 <= stable_seed(label, x) < 2**63


def test_detect_modes_uses_math_isclose_free_centers():
    # Regression guard: two clearly-separated clusters stay two modes
    # regardless of input order (the property above, pinned on the
    # Figure-5 shape).
    fast = [2.4, 2.41, 2.39, 2.4]
    slow = [1.1, 1.12, 1.09]
    modes = detect_modes(fast + slow)
    assert len(modes) == 2
    assert not math.isclose(modes[0].center, modes[1].center)
