"""Property-based equivalence of streaming and batch trace analysis.

Hypothesis generates random fig4-shaped traces — per-rank monotone
timelines, cross-rank messages, waits in arrival order, all timestamps
multiples of 1/8 so float arithmetic is exact — and the tests assert
the streaming analyzer's contract:

* for any trace, streaming produces *exactly* the batch report
  (same JSON document, byte for byte);
* the frontier limit — how aggressively events are evicted to the
  spill log — never changes the answer, only the memory profile;
* a trace the batch pipeline rejects is rejected by the stream too.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import assume, given, settings, strategies as st

from repro.errors import TraceError
from repro.obs import build_run_report, build_stream_run_report
from repro.tracing import TraceRecorder
from repro.tracing.events import CommEvent
from repro.tracing.stream import StreamConfig, TraceStreamAnalyzer

Q = 0.125  # all times are multiples of this; float addition is exact


@st.composite
def trace_ops(draw):
    """One random trace as a replayable list of tracer calls."""
    num_ranks = draw(st.integers(2, 4))
    rounds = draw(st.integers(1, 4))
    now = [0.0] * num_ranks
    ops = []
    seq = 0
    for round_index in range(rounds):
        for rank in range(num_ranks):
            dt = draw(st.integers(1, 6)) * Q
            ops.append(
                ("state", rank, "compute", now[rank], now[rank] + dt,
                 "compute", -1)
            )
            now[rank] += dt
        messages = []
        for src in range(num_ranks):
            for _ in range(draw(st.integers(0, 2))):
                dst = draw(st.integers(0, num_ranks - 1))
                if dst == src:
                    dst = (src + 1) % num_ranks
                latency = draw(st.integers(1, 12)) * Q
                send = now[src]
                ops.append(
                    ("state", src, "msg", send, send + Q, "send", seq)
                )
                now[src] = send + Q
                message = CommEvent(
                    src=src, dst=dst, tag=("t", round_index, src),
                    nbytes=1024, send_time=send,
                    arrival_time=send + latency, label="msg", seq=seq,
                )
                ops.append(("comm", message))
                messages.append(message)
                seq += 1
        inbound = {}
        for message in messages:
            inbound.setdefault(message.dst, []).append(message)
        for dst in range(num_ranks):
            arrivals = sorted(
                inbound.get(dst, ()), key=lambda m: (m.arrival_time, m.seq)
            )
            for message in arrivals:
                t0 = now[dst]
                t1 = max(t0, message.arrival_time)
                ops.append(("state", dst, "msg", t0, t1, "wait", message.seq))
                now[dst] = t1
    return ops


def feed(ops, tracer):
    for op in ops:
        if op[0] == "state":
            _, rank, label, t0, t1, kind, cause = op
            tracer.state(rank, label, t0, t1, kind=kind, cause=cause)
        else:
            tracer.comm(op[1])


def batch_outcome(recorder):
    try:
        return "ok", build_run_report(recorder, scenario="p").to_json()
    except TraceError:
        return "error", None


def stream_outcome(ops, config):
    with TraceStreamAnalyzer(config) as analyzer:
        feed(ops, analyzer)
        try:
            result = analyzer.finalize()
        except TraceError:
            return "error", None
        return "ok", build_stream_run_report(result, scenario="p").to_json()


@settings(max_examples=60, deadline=None)
@given(ops=trace_ops())
def test_streaming_equals_batch_exactly(ops):
    recorder = TraceRecorder()
    feed(ops, recorder)
    kind, batch_doc = batch_outcome(recorder)
    stream_kind, stream_doc = stream_outcome(
        ops, StreamConfig(frontier_limit=4, segment_events=4)
    )
    assert stream_kind == kind
    assert stream_doc == batch_doc


@settings(max_examples=40, deadline=None)
@given(ops=trace_ops())
def test_frontier_limit_never_changes_the_report(ops):
    outcomes = {
        stream_outcome(
            ops, StreamConfig(frontier_limit=limit, segment_events=4)
        )
        for limit in (1, 3, 17, None)
    }
    assert len(outcomes) == 1


@settings(max_examples=40, deadline=None)
@given(ops=trace_ops(), data=st.data())
def test_batch_rejection_implies_stream_rejection(ops, data):
    """Truncate one wait so it ends before its cause arrives — the
    validation failure must surface identically in both pipelines."""
    candidates = [
        index
        for index, op in enumerate(ops)
        if op[0] == "state" and op[5] == "wait" and op[4] > op[3]
    ]
    assume(candidates)
    index = data.draw(st.sampled_from(candidates))
    _, rank, label, t0, t1, kind, cause = ops[index]
    ops = list(ops)
    ops[index] = ("state", rank, label, t0, t0, kind, cause)

    recorder = TraceRecorder()
    feed(ops, recorder)
    assert batch_outcome(recorder)[0] == "error"
    assert stream_outcome(
        ops, StreamConfig(frontier_limit=2, segment_events=2)
    )[0] == "error"
