"""Circuit-breaker state machine, driven by a fake clock."""

import pytest

from repro.errors import CircuitOpen
from repro.service import BreakerBoard, CircuitBreaker
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN


class Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        "cluster", failure_threshold=3, cooldown_s=5.0, clock=clock
    )


class TestStateMachine:
    def trip(self, breaker):
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()

    def test_closed_admits_freely(self, breaker):
        for _ in range(10):
            breaker.allow()
        assert breaker.state == CLOSED

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.allow()

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_threshold_trips_open(self, breaker):
        self.trip(breaker)
        assert breaker.state == OPEN
        assert breaker.times_opened == 1

    def test_open_sheds_with_remaining_cooldown(self, breaker, clock):
        self.trip(breaker)
        clock.advance(2.0)
        with pytest.raises(CircuitOpen) as info:
            breaker.allow()
        assert info.value.scenario_class == "cluster"
        assert info.value.retry_after_s == pytest.approx(3.0)
        payload = info.value.to_payload()
        assert payload["scenario_class"] == "cluster"
        assert payload["retry_after_s"] == pytest.approx(3.0)

    def test_cooldown_elapsed_grants_exactly_one_probe(self, breaker, clock):
        self.trip(breaker)
        clock.advance(5.1)
        breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        with pytest.raises(CircuitOpen):
            breaker.allow()  # everyone else still shed

    def test_probe_success_closes(self, breaker, clock):
        self.trip(breaker)
        clock.advance(5.1)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_cooldown(self, breaker, clock):
        self.trip(breaker)
        clock.advance(5.1)
        breaker.allow()
        breaker.record_failure()  # one failure, no threshold counting
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        with pytest.raises(CircuitOpen) as info:
            breaker.allow()
        assert info.value.retry_after_s == pytest.approx(5.0)

    def test_abandoned_probe_frees_the_slot(self, breaker, clock):
        self.trip(breaker)
        clock.advance(5.1)
        breaker.allow()
        breaker.abandon_probe()  # probe cancelled mid-flight: no verdict
        assert breaker.state == HALF_OPEN
        breaker.allow()  # the slot is claimable again

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker("c", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("c", cooldown_s=0.0)


class TestBreakerBoard:
    def test_one_breaker_per_class_cached(self, clock):
        board = BreakerBoard(clock=clock)
        assert board.for_class("demo") is board.for_class("demo")
        assert board.for_class("demo") is not board.for_class("chaos")

    def test_classes_fail_independently(self, clock):
        board = BreakerBoard(failure_threshold=2, clock=clock)
        for _ in range(2):
            board.for_class("chaos").record_failure()
        assert board.for_class("chaos").state == OPEN
        board.for_class("demo").allow()  # unaffected
        assert board.states() == {"chaos": OPEN, "demo": CLOSED}
