"""The service CLI surface (`repro submit/status/result`) and the
SIGINT hygiene contract for every command.
"""

import asyncio
import json
import threading

import pytest

from repro.cli import TOOL_COMMANDS, main
from repro.metrics.registry import MetricsRegistry, use_registry
from repro.service import JobService, ServiceConfig
from repro.service.http import ServiceServer


@pytest.fixture
def server_url(tmp_path):
    started = threading.Event()
    state = {}

    def host():
        async def run():
            with use_registry(MetricsRegistry()):
                service = JobService(ServiceConfig(
                    cache_root=tmp_path / "cache", pool_size=2,
                ))
                server = ServiceServer(service, port=0)
                await server.start()
                state["port"] = server.port
                state["loop"] = asyncio.get_running_loop()
                state["stop"] = asyncio.Event()
                started.set()
                await state["stop"].wait()
                await server.stop()

        asyncio.run(run())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert started.wait(timeout=10)
    yield f"http://127.0.0.1:{state['port']}"
    state["loop"].call_soon_threadsafe(state["stop"].set)
    thread.join(timeout=10)


class TestSubmitCommand:
    def test_submit_prints_result_bytes_and_a_summary_line(
        self, server_url, capsys
    ):
        code = main([
            "submit", "squares", "--param", "x=7", "--url", server_url,
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == '{"value":49}\n'
        assert "[submit] job j-" in captured.err
        assert "state=done" in captured.err
        assert "source=computed" in captured.err

    def test_submit_summary_shows_dedup_and_source(
        self, server_url, capsys
    ):
        main(["submit", "squares", "--param", "x=8", "--url", server_url])
        capsys.readouterr()
        code = main([
            "submit", "squares", "--param", "x=8", "--url", server_url,
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == '{"value":64}\n'
        assert "deduped=false" in captured.err
        assert "source=cache" in captured.err
        assert "state=done" in captured.err

    def test_no_wait_prints_the_job_id_for_polling(
        self, server_url, capsys
    ):
        code = main([
            "submit", "sleepy", "--param", "duration_s=0.05",
            "--no-wait", "--url", server_url,
        ])
        captured = capsys.readouterr()
        assert code == 0
        handle = json.loads(captured.out)
        assert handle["state"] in ("queued", "running", "done")

        job_id = handle["job_id"]
        for _ in range(400):
            capsys.readouterr()
            assert main(["status", job_id, "--url", server_url]) in (0, 1)
            snapshot = json.loads(capsys.readouterr().out)
            if snapshot["state"] == "done":
                break
        assert snapshot["state"] == "done"
        assert main(["result", job_id, "--url", server_url]) == 0
        assert json.loads(capsys.readouterr().out) == {"slept_s": 0.05}

    def test_status_without_id_prints_service_stats(
        self, server_url, capsys
    ):
        code = main(["status", "--url", server_url])
        captured = capsys.readouterr()
        assert code == 0
        stats = json.loads(captured.out)
        assert stats["pool_size"] == 2

    def test_failed_job_exits_one_with_its_typed_error(
        self, server_url, tmp_path, capsys
    ):
        code = main([
            "submit", "chaos-squares",
            "--param", "x=5",
            "--param", f"state_dir={tmp_path / 'state'}",
            "--param", 'faults={"5": {"kind": "raise", "times": 99}}',
            "--url", server_url,
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "ChaosFault" in captured.err

    def test_malformed_params_fail_cleanly(self, server_url, capsys):
        code = main([
            "submit", "squares", "--param", "no-equals-sign",
            "--url", server_url,
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "error in submit" in captured.err

    def test_unreachable_service_is_one_clean_line(self, capsys):
        code = main([
            "submit", "squares", "--param", "x=1",
            "--url", "http://127.0.0.1:1",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot reach service" in captured.err


class TestSigintHygiene:
    def test_interrupt_exits_130_with_one_line(self, monkeypatch, capsys):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(TOOL_COMMANDS, "status", interrupted)
        code = main(["status"])
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted: status stopped by SIGINT" in captured.err
        assert "Traceback" not in captured.err

    def test_interrupt_flushes_a_partial_run_marker(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import COMMANDS

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(COMMANDS, "fig1", interrupted)
        run_dir = tmp_path / "run"
        code = main(["fig1", "--run-dir", str(run_dir)])
        captured = capsys.readouterr()
        assert code == 130
        marker = json.loads((run_dir / "interrupted.json").read_text())
        assert marker["artefact"] == "fig1"
        assert marker["completed_sweeps"] == []
        assert marker["journal_records"] == 0
        assert "partial state flushed" in captured.err

    def test_interrupt_without_run_dir_leaves_no_marker(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import COMMANDS

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(COMMANDS, "fig1", interrupted)
        code = main(["fig1"])
        capsys.readouterr()
        assert code == 130
        assert not list(tmp_path.rglob("interrupted.json"))

    def test_interrupt_still_exports_requested_metrics(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import COMMANDS

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(COMMANDS, "fig1", interrupted)
        out = tmp_path / "metrics.json"
        code = main(["fig1", "--metrics-out", str(out)])
        capsys.readouterr()
        assert code == 130
        assert json.loads(out.read_text())  # export happened anyway
