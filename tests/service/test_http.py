"""The HTTP front end, exercised through the real client.

The server runs its own event loop in a background thread; the test
body talks to it over a real socket with :class:`ServiceClient` —
exactly the way ``repro submit`` does.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.engine.hashing import canonical_json
from repro.errors import (
    InvalidJobRequest,
    JobNotFinished,
    JobNotFound,
    ServiceError,
)
from repro.metrics.registry import MetricsRegistry, use_registry
from repro.service import JobService, ServiceClient, ServiceConfig
from repro.service.http import ServiceServer


@pytest.fixture
def server(tmp_path):
    """A live service on an ephemeral port; yields a connected client."""
    started = threading.Event()
    state = {}

    def host():
        async def main():
            with use_registry(MetricsRegistry()):
                service = JobService(ServiceConfig(
                    cache_root=tmp_path / "cache",
                    pool_size=2,
                    queue_limit=8,
                ))
                srv = ServiceServer(
                    service, port=0, read_timeout_s=0.5
                )
                await srv.start()
                state["port"] = srv.port
                state["loop"] = asyncio.get_running_loop()
                state["stop"] = asyncio.Event()
                started.set()
                await state["stop"].wait()
                await srv.stop()

        asyncio.run(main())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "server never came up"
    yield ServiceClient(f"http://127.0.0.1:{state['port']}", timeout_s=30)
    state["loop"].call_soon_threadsafe(state["stop"].set)
    thread.join(timeout=10)
    assert not thread.is_alive(), "server thread failed to stop"


class TestEndpoints:
    def test_health_and_stats(self, server):
        assert server.healthz() == {"status": "ok"}
        assert server.readyz() == {"status": "ready"}
        stats = server.stats()
        assert stats["pool_size"] == 2
        assert not stats["draining"]

    def test_submit_wait_returns_the_finished_job(self, server):
        reply = server.submit("squares", {"x": 9})
        job = reply["job"]
        assert job["state"] == "done"
        assert job["source"] == "computed"
        assert not reply["deduped"]
        # The raw result endpoint serves canonical JSON bytes.
        assert server.result_bytes(job["job_id"]) == (
            canonical_json({"value": 81}) + "\n"
        ).encode()
        assert server.result(job["job_id"]) == {"value": 81}

    def test_submit_no_wait_then_poll(self, server):
        reply = server.submit("squares", {"x": 5}, wait=False)
        job_id = reply["job"]["job_id"]
        for _ in range(200):
            status = server.status(job_id)["job"]
            if status["state"] == "done":
                break
        assert status["state"] == "done"
        assert any(
            j["job_id"] == job_id for j in server.jobs()["jobs"]
        )

    def test_typed_errors_cross_the_wire(self, server):
        with pytest.raises(InvalidJobRequest, match="unknown scenario"):
            server.submit("nope", {})
        with pytest.raises(JobNotFound):
            server.status("j-424242")
        reply = server.submit("sleepy", {"duration_s": 30.0}, wait=False)
        job_id = reply["job"]["job_id"]
        with pytest.raises(JobNotFinished):
            server.result(job_id)
        server.cancel(job_id)
        assert server.status(job_id)["job"]["state"] == "cancelled"

    def test_metrics_export_prometheus_text(self, server):
        server.submit("squares", {"x": 2})
        text = server.metrics()
        assert "repro_service_submitted" in text
        assert "repro_service_completed" in text

    def test_event_stream_replays_the_job_lifecycle(self, server):
        reply = server.submit("squares", {"x": 4}, wait=False)
        job_id = reply["job"]["job_id"]
        import http.client

        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            assert response.status == 200
            states = []
            for line in response:
                if not line.strip():
                    continue
                event = json.loads(line)
                states.append(event["state"])
                if event["state"] in ("done", "failed", "cancelled"):
                    break
            assert states[-1] == "done"
        finally:
            conn.close()

    def test_half_a_request_is_dropped_not_wedged(self, server):
        """Slow-loris hygiene: a stalled client times out server-side
        and the service keeps answering everyone else."""
        probe = socket.create_connection(
            (server.host, server.port), timeout=5
        )
        try:
            probe.sendall(b"POST /jobs HTTP/1.1\r\nContent-Le")
            # Never finish the headers; the read timeout (0.5s) fires.
            assert server.healthz() == {"status": "ok"}
            reply = server.submit("squares", {"x": 3})
            assert reply["job"]["state"] == "done"
        finally:
            probe.close()

    def test_unreachable_service_raises_a_typed_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout_s=1)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
