"""Bounded admission queue and single-flight map."""

import asyncio

import pytest

from repro.errors import ServiceOverloaded
from repro.service import AdmissionQueue, SingleFlight
from repro.service.jobs import Job, JobState


def make_job(i, content_hash=None):
    return Job(
        f"j-{i:06d}",
        scenario="squares",
        scenario_class="demo",
        params={"x": i},
        content_hash=content_hash or f"hash-{i}",
    )


class TestAdmission:
    def test_fifo_order(self):
        async def scenario():
            queue = AdmissionQueue(4, pool_size=1)
            jobs = [make_job(i) for i in range(3)]
            for job in jobs:
                await queue.admit(job)
            taken = [await queue.take() for _ in range(3)]
            return jobs, taken

        jobs, taken = asyncio.run(scenario())
        assert taken == jobs

    def test_overflow_is_a_typed_429_with_a_hint(self):
        async def scenario():
            queue = AdmissionQueue(2, pool_size=1)
            await queue.admit(make_job(0))
            await queue.admit(make_job(1))
            with pytest.raises(ServiceOverloaded) as info:
                await queue.admit(make_job(2))
            return queue, info.value

        queue, error = asyncio.run(scenario())
        assert error.status == 429
        payload = error.to_payload()
        assert payload["depth"] == 2
        assert payload["capacity"] == 2
        assert payload["retry_after_s"] >= 0.5
        assert queue.depth() == 2  # the rejected job was never enqueued

    def test_retry_after_tracks_observed_walls(self):
        queue = AdmissionQueue(8, pool_size=2)
        fast = queue.retry_after_s()
        for _ in range(20):
            queue.observe_wall(40.0)
        slow = queue.retry_after_s()
        assert slow > fast
        for _ in range(20):
            queue.observe_wall(1000.0)
        assert queue.retry_after_s() == 60.0  # honest ceiling

    def test_take_blocks_until_admission(self):
        async def scenario():
            queue = AdmissionQueue(2, pool_size=1)
            taker = asyncio.create_task(queue.take())
            await asyncio.sleep(0.01)
            assert not taker.done()
            job = make_job(1)
            await queue.admit(job)
            return job, await asyncio.wait_for(taker, timeout=2.0)

        job, taken = asyncio.run(scenario())
        assert taken is job

    def test_take_skips_jobs_cancelled_while_queued(self):
        async def scenario():
            queue = AdmissionQueue(4, pool_size=1)
            doomed, live = make_job(0), make_job(1)
            await queue.admit(doomed)
            await queue.admit(live)
            await doomed.transition(JobState.CANCELLED)
            return live, await queue.take()

        live, taken = asyncio.run(scenario())
        assert taken is live

    def test_restore_waives_the_capacity_check(self):
        async def scenario():
            queue = AdmissionQueue(1, pool_size=1)
            await queue.admit(make_job(0))
            queue.restore(make_job(1))  # recovery must not drop work
            return queue.depth()

        assert asyncio.run(scenario()) == 2

    def test_drain_returns_and_clears_the_backlog(self):
        async def scenario():
            queue = AdmissionQueue(4, pool_size=1)
            jobs = [make_job(i) for i in range(3)]
            for job in jobs:
                await queue.admit(job)
            await jobs[1].transition(JobState.CANCELLED)
            return jobs, queue.drain(), queue.depth()

        jobs, drained, depth = asyncio.run(scenario())
        assert drained == [jobs[0], jobs[2]]  # terminal jobs not persisted
        assert depth == 0


class TestSingleFlight:
    def test_claim_get_release(self):
        flight = SingleFlight()
        job = make_job(1, "abc")
        assert flight.get("abc") is None
        flight.claim(job)
        assert flight.get("abc") is job
        flight.release(job)
        assert flight.get("abc") is None

    def test_release_only_removes_its_own_job(self):
        flight = SingleFlight()
        first, second = make_job(1, "abc"), make_job(2, "abc")
        flight.claim(first)
        flight.claim(second)  # second claim superseded the first
        flight.release(first)  # stale release must not evict the live job
        assert flight.get("abc") is second

    def test_lingering_terminal_job_is_dropped(self):
        async def scenario():
            flight = SingleFlight()
            job = make_job(1, "abc")
            flight.claim(job)
            await job.transition(JobState.DONE, value=1)
            return flight.get("abc"), len(flight)

        found, remaining = asyncio.run(scenario())
        assert found is None
        assert remaining == 0
