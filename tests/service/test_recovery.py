"""Crash-safe job journal: what survives a dead service instance.

The WAL contract: ``job/<id>`` on admission, ``value/<hash>`` before a
result is acknowledged, ``state/<id>`` at terminal.  A restarted
instance re-serves completed jobs byte-identically with zero
recomputation and requeues everything admitted-but-unfinished.
"""

import asyncio

from repro.engine import RunJournal
from repro.engine.hashing import canonical_json
from repro.service import (
    JobService,
    ServiceConfig,
    job_content_key,
    resolve_scenario,
)
from repro.service.jobs import JobState


def run(coro):
    return asyncio.run(coro)


def make_service(tmp_path, *, generation, **overrides):
    # Each generation gets its own cache root: anything warm on the
    # second instance can then only have come from the shared journal.
    defaults = dict(
        cache_root=tmp_path / f"cache-{generation}",
        run_dir=tmp_path / "run",
        pool_size=1,
        queue_limit=8,
    )
    defaults.update(overrides)
    return JobService(ServiceConfig(**defaults))


class TestRestartRecovery:
    def test_completed_jobs_reserve_byte_identically(self, tmp_path):
        async def first_life():
            service = make_service(tmp_path, generation=1)
            await service.start()
            try:
                job, _ = await service.submit("squares", {"x": 7})
                await asyncio.wait_for(job.wait_terminal(), timeout=30)
                return job.job_id, canonical_json(job.value)
            finally:
                await service.shutdown(drain_s=1.0)

        async def second_life():
            service = make_service(tmp_path, generation=2)
            await service.start()
            try:
                recovered = service.get(job_id)
                # And a fresh identical submission is warm, not queued.
                resubmit, deduped = await service.submit(
                    "squares", {"x": 7}
                )
                return recovered, resubmit, deduped
            finally:
                await service.shutdown(drain_s=1.0)

        job_id, first_bytes = run(first_life())
        recovered, resubmit, deduped = run(second_life())
        assert recovered.state is JobState.DONE
        assert recovered.recovered
        assert recovered.source == "journal"
        assert canonical_json(recovered.value) == first_bytes
        assert not deduped
        assert resubmit.state is JobState.DONE
        assert resubmit.source == "journal"  # zero recomputation
        assert canonical_json(resubmit.value) == first_bytes

    def test_unfinished_jobs_are_requeued_and_complete(self, tmp_path):
        async def first_life():
            service = make_service(tmp_path, generation=1)
            await service.start()
            try:
                job, _ = await service.submit(
                    "sleepy", {"duration_s": 30.0}
                )
                while job.state is JobState.QUEUED:
                    await asyncio.sleep(0.01)
                return job.job_id
            finally:
                # Zero drain budget: the attempt dies mid-sleep with
                # no terminal journal record.
                await service.shutdown(drain_s=0.0)

        async def second_life():
            service = make_service(tmp_path, generation=2)
            # Shrink the nap before the pool starts so the requeued
            # job finishes inside the test budget: recovery validates
            # against the *current* registry, params included.
            service.journal.completed[f"job/{job_id}"]["params"] = {
                "duration_s": 0.05, "tag": "",
            }
            await service.start()
            try:
                job = service.get(job_id)
                assert job.recovered
                await asyncio.wait_for(job.wait_terminal(), timeout=30)
                return job
            finally:
                await service.shutdown(drain_s=1.0)

        job_id = run(first_life())
        job = run(second_life())
        assert job.state is JobState.DONE
        assert job.source == "computed"
        assert job.value == {"slept_s": 0.05}

    def test_new_ids_never_collide_with_recovered_ones(self, tmp_path):
        async def first_life():
            service = make_service(tmp_path, generation=1)
            await service.start()
            try:
                ids = []
                for x in (1, 2, 3):
                    job, _ = await service.submit("squares", {"x": x})
                    await asyncio.wait_for(job.wait_terminal(), timeout=30)
                    ids.append(job.job_id)
                return ids
            finally:
                await service.shutdown(drain_s=1.0)

        async def second_life():
            service = make_service(tmp_path, generation=2)
            await service.start()
            try:
                job, _ = await service.submit("squares", {"x": 4})
                return job.job_id
            finally:
                await service.shutdown(drain_s=1.0)

        old_ids = run(first_life())
        new_id = run(second_life())
        assert new_id not in old_ids
        assert new_id > max(old_ids)

    def test_failed_jobs_recover_with_their_error(self, tmp_path):
        async def first_life():
            service = make_service(tmp_path, generation=1)
            await service.start()
            try:
                job, _ = await service.submit("chaos-squares", {
                    "x": 5,
                    "state_dir": str(tmp_path / "state"),
                    "faults": {"5": {"kind": "raise", "times": 99}},
                })
                await asyncio.wait_for(job.wait_terminal(), timeout=30)
                return job.job_id
            finally:
                await service.shutdown(drain_s=1.0)

        async def second_life():
            service = make_service(tmp_path, generation=2)
            await service.start()
            try:
                return service.get(job_id)
            finally:
                await service.shutdown(drain_s=1.0)

        job_id = run(first_life())
        job = run(second_life())
        assert job.state is JobState.FAILED
        assert job.error["type"] == "ChaosFault"


class TestJournalEdgeCases:
    def test_value_without_terminal_record_still_serves(self, tmp_path):
        """The crash window between the value append and the state
        append: the value write is the acknowledgment that matters."""
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        _, _, digest = job_content_key(
            resolve_scenario("squares"), {"x": 3}
        )
        journal = RunJournal(run_dir / "service.journal")
        journal.append("job/j-000005", {
            "scenario": "squares", "params": {"x": 3}, "deadline_s": None,
        })
        journal.append(f"value/{digest}", {"value": 9})
        journal.close()

        async def scenario():
            service = make_service(tmp_path, generation=1)
            await service.start()
            try:
                job = service.get("j-000005")
                fresh, _ = await service.submit("squares", {"x": 99})
                return job, fresh
            finally:
                await service.shutdown(drain_s=1.0)

        job, fresh = run(scenario())
        assert job.state is JobState.DONE
        assert job.source == "journal"
        assert job.value == {"value": 9}
        assert int(fresh.job_id.rsplit("-", 1)[-1]) >= 6

    def test_unrecognizable_submissions_are_dropped_not_fatal(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        journal = RunJournal(run_dir / "service.journal")
        journal.append("job/j-000001", {
            "scenario": "renamed-away", "params": {}, "deadline_s": None,
        })
        journal.close()

        async def scenario():
            service = make_service(tmp_path, generation=1)
            await service.start()
            try:
                return dict(service.jobs), service.stats()
            finally:
                await service.shutdown(drain_s=1.0)

        jobs, stats = run(scenario())
        assert jobs == {}
        assert stats["queue_depth"] == 0
