"""Scenario registry: validation and cache-key parity with the engine."""

import pytest

from repro.engine import ExperimentEngine, SweepSpec, content_key
from repro.errors import InvalidJobRequest
from repro.service import SCENARIOS, job_content_key, resolve_scenario


class TestResolution:
    def test_unknown_scenario_lists_what_exists(self):
        with pytest.raises(InvalidJobRequest, match="squares"):
            resolve_scenario("nope")

    def test_non_string_names_are_rejected_not_crashed(self):
        with pytest.raises(InvalidJobRequest):
            resolve_scenario({"name": "squares"})

    def test_every_scenario_has_a_class_and_a_picklable_worker(self):
        import pickle

        for scenario in SCENARIOS.values():
            assert scenario.scenario_class
            pickle.dumps(scenario.worker)  # forked attempts require it


class TestValidation:
    def test_squares_builds_key_and_point(self):
        key, point = resolve_scenario("squares").build({"x": 7})
        assert key == {"experiment": "service-squares"}
        assert point == {"x": 7}

    def test_unknown_parameter_is_rejected(self):
        with pytest.raises(InvalidJobRequest, match="does not accept"):
            resolve_scenario("squares").build({"x": 1, "cores": 4})

    def test_missing_required_parameter_is_rejected(self):
        with pytest.raises(InvalidJobRequest, match="requires parameter 'x'"):
            resolve_scenario("squares").build({})

    def test_bool_is_not_an_int(self):
        with pytest.raises(InvalidJobRequest, match="must be int"):
            resolve_scenario("squares").build({"x": True})

    def test_wrong_type_reports_what_arrived(self):
        with pytest.raises(InvalidJobRequest, match="got str"):
            resolve_scenario("squares").build({"x": "9"})

    def test_cluster_defaults_match_the_batch_figures(self):
        _, point = resolve_scenario("cluster-elapsed").build(
            {"app": "linpack", "cores": 4}
        )
        assert point["num_nodes"] == 96
        assert point["seed"] == 7
        assert point["app_args"] == {}

    def test_negative_sleep_is_rejected(self):
        with pytest.raises(InvalidJobRequest, match=">= 0"):
            resolve_scenario("sleepy").build({"duration_s": -1.0})

    def test_magicfilter_shape_must_be_three_ints(self):
        with pytest.raises(InvalidJobRequest, match="nx, ny, nz"):
            resolve_scenario("magicfilter").build(
                {"machine": "snowball", "shape": [32, 32], "unroll": 2}
            )

    def test_param_order_does_not_change_the_key(self):
        scenario = resolve_scenario("cluster-elapsed")
        a = job_content_key(scenario, {"app": "linpack", "cores": 4})
        b = job_content_key(scenario, {"cores": 4, "app": "linpack"})
        assert a[2] == b[2]


class TestEngineKeyParity:
    """The tentpole's interop contract: a service submission and the
    equivalent batch sweep point address the *same* cache entry."""

    def parity(self, name, params, sweep_key):
        scenario = resolve_scenario(name)
        material, point, digest = job_content_key(scenario, params)
        spec = SweepSpec("parity", lambda p: None, [point], key=sweep_key)
        engine_material = ExperimentEngine.point_key(spec, point)
        assert material == engine_material
        assert digest == content_key(engine_material)

    def test_chaos_squares(self, tmp_path):
        self.parity(
            "chaos-squares",
            {"x": 3, "state_dir": str(tmp_path), "faults": {}},
            {"experiment": "chaos-squares"},
        )

    def test_cluster_elapsed(self):
        # The exact key shape run_cluster_times builds for figure 3.
        self.parity(
            "cluster-elapsed",
            {"app": "linpack", "cores": 8},
            {
                "experiment": "cluster-elapsed",
                "app": "linpack",
                "app_args": {},
                "num_nodes": 96,
            },
        )

    def test_page_alloc(self):
        self.parity(
            "page-alloc",
            {"machine": "snowball", "fragmentation": 0.25},
            {
                "experiment": "page-alloc",
                "machine": "snowball",
                "array_bytes": 8 << 20,
            },
        )
