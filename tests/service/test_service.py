"""JobService behavior: dedup, admission, breakers, deadlines, cancel.

Every test drives the real service object (real worker pool, real
forked attempts) inside ``asyncio.run`` — no HTTP, no mocks of the
execution path.
"""

import asyncio

import pytest

from repro.errors import (
    CircuitOpen,
    InvalidJobRequest,
    JobNotFound,
    ServiceDraining,
    ServiceOverloaded,
)
from repro.service import JobService, ServiceConfig
from repro.service.jobs import JobState


def run(coro):
    return asyncio.run(coro)


def make_service(tmp_path, **overrides):
    defaults = dict(
        cache_root=tmp_path / "cache",
        pool_size=2,
        queue_limit=8,
        breaker_cooldown_s=0.2,
    )
    defaults.update(overrides)
    return JobService(ServiceConfig(**defaults))


def attempt_bytes(state_dir):
    """Total chaos-worker attempts recorded under *state_dir* (one byte
    per attempt; see repro.engine.chaos.bump_attempt)."""
    if not state_dir.exists():
        return 0
    return sum(p.stat().st_size for p in state_dir.iterdir())


class TestHappyPath:
    def test_cold_submission_computes_and_completes(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            try:
                job, deduped = await service.submit("squares", {"x": 7})
                await asyncio.wait_for(job.wait_terminal(), timeout=30)
                return job, deduped
            finally:
                await service.shutdown(drain_s=1.0)

        job, deduped = run(scenario())
        assert not deduped
        assert job.state is JobState.DONE
        assert job.value == {"value": 49}
        assert job.source == "computed"
        assert job.attempts == 1
        assert job.wall_seconds >= 0.0

    def test_repeat_submission_is_warm_from_cache(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            try:
                first, _ = await service.submit("squares", {"x": 6})
                await asyncio.wait_for(first.wait_terminal(), timeout=30)
                second, deduped = await service.submit("squares", {"x": 6})
                return first, second, deduped
            finally:
                await service.shutdown(drain_s=1.0)

        first, second, deduped = run(scenario())
        assert not deduped  # warm, not in-flight: a distinct job record
        assert second.job_id != first.job_id
        assert second.state is JobState.DONE  # done on return, no queueing
        assert second.source == "cache"
        assert second.value == first.value

    def test_batch_cache_entries_serve_the_service_warm(self, tmp_path):
        """A point computed by the batch engine is a warm hit here —
        the two front ends share one content-addressed result space."""
        from repro.engine import ResultCache
        from repro.service import job_content_key, resolve_scenario

        async def scenario():
            material, _, _ = job_content_key(
                resolve_scenario("squares"), {"x": 11}
            )
            cache = ResultCache(tmp_path / "cache")
            cache.put(material, {"value": {"value": 121}, "metrics": None})
            service = make_service(tmp_path)
            await service.start()
            try:
                job, _ = await service.submit("squares", {"x": 11})
                return job
            finally:
                await service.shutdown(drain_s=1.0)

        job = run(scenario())
        assert job.state is JobState.DONE
        assert job.source == "cache"
        assert job.value == {"value": 121}


class TestSingleFlightDedup:
    def test_identical_concurrent_submissions_compute_once(self, tmp_path):
        state_dir = tmp_path / "state"
        params = {
            "x": 4,
            "state_dir": str(state_dir),
            # times=0: the fault never fires, but the attempt counter
            # still ticks — a pure computation odometer.
            "faults": {"4": {"kind": "raise", "times": 0}},
        }

        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            try:
                results = await asyncio.gather(*[
                    service.submit("chaos-squares", dict(params))
                    for _ in range(5)
                ])
                job = results[0][0]
                await asyncio.wait_for(job.wait_terminal(), timeout=30)
                return results, job
            finally:
                await service.shutdown(drain_s=1.0)

        results, job = run(scenario())
        assert {id(j) for j, _ in results} == {id(job)}  # one job object
        assert [deduped for _, deduped in results] == [
            False, True, True, True, True
        ]
        assert job.dedup_count == 4
        assert job.value == {"x": 4, "value": 16}
        assert attempt_bytes(state_dir) == 1  # the engine ran exactly once

    def test_dedup_window_closes_when_the_job_finishes(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            try:
                first, _ = await service.submit("squares", {"x": 3})
                await asyncio.wait_for(first.wait_terminal(), timeout=30)
                second, deduped = await service.submit("squares", {"x": 3})
                return first, second, deduped
            finally:
                await service.shutdown(drain_s=1.0)

        first, second, deduped = run(scenario())
        assert not deduped
        assert second is not first


class TestAdmissionControl:
    def test_full_queue_rejects_with_429_semantics(self, tmp_path):
        async def scenario():
            service = make_service(
                tmp_path, pool_size=1, queue_limit=2
            )
            await service.start()
            try:
                # One long job occupies the pool slot...
                blockers = [await service.submit(
                    "sleepy", {"duration_s": 30.0, "tag": "b0"}
                )]
                while blockers[0][0].state is JobState.QUEUED:
                    await asyncio.sleep(0.01)
                # ...then two more fill the queue to capacity.
                for i in (1, 2):
                    blockers.append(await service.submit(
                        "sleepy", {"duration_s": 30.0, "tag": f"b{i}"}
                    ))
                with pytest.raises(ServiceOverloaded) as info:
                    await service.submit("sleepy", {"duration_s": 30.0,
                                                    "tag": "overflow"})
                return info.value, [j for j, _ in blockers]
            finally:
                await service.shutdown(drain_s=0.0)

        error, blockers = run(scenario())
        assert error.status == 429
        assert error.retry_after_s > 0
        assert error.capacity == 2

    def test_draining_service_admits_nothing(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            await service.shutdown(drain_s=0.0)
            with pytest.raises(ServiceDraining):
                await service.submit("squares", {"x": 1})

        run(scenario())

    def test_unknown_scenario_and_bad_deadline_are_typed(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            await service.start()
            try:
                with pytest.raises(InvalidJobRequest):
                    await service.submit("no-such-thing", {})
                with pytest.raises(InvalidJobRequest):
                    await service.submit(
                        "squares", {"x": 1}, deadline_s=-2.0
                    )
                with pytest.raises(InvalidJobRequest):
                    await service.submit(
                        "squares", {"x": 1}, deadline_s=True
                    )
                with pytest.raises(JobNotFound):
                    service.get("j-999999")
            finally:
                await service.shutdown(drain_s=0.0)

        run(scenario())


class TestCircuitBreaker:
    async def fail_once(self, service, x, state_dir):
        job, _ = await service.submit("chaos-squares", {
            "x": x,
            "state_dir": str(state_dir),
            "faults": {str(x): {"kind": "raise", "times": 99}},
        })
        await asyncio.wait_for(job.wait_terminal(), timeout=30)
        assert job.state is JobState.FAILED
        return job

    def test_repeated_failures_trip_only_their_class(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, breaker_threshold=3)
            await service.start()
            try:
                for x in (21, 22, 23):
                    await self.fail_once(service, x, tmp_path / "state")
                # The chaos class is now shed...
                with pytest.raises(CircuitOpen) as info:
                    await service.submit("chaos-squares", {
                        "x": 99, "state_dir": str(tmp_path / "state"),
                    })
                # ...while the demo class still flows.
                healthy, _ = await service.submit("squares", {"x": 2})
                await asyncio.wait_for(healthy.wait_terminal(), timeout=30)
                return info.value, healthy, service.breakers.states()
            finally:
                await service.shutdown(drain_s=1.0)

        error, healthy, states = run(scenario())
        assert error.scenario_class == "chaos"
        assert error.retry_after_s > 0
        assert healthy.state is JobState.DONE
        assert states["chaos"] == "open"

    def test_half_open_probe_success_heals_the_class(self, tmp_path):
        async def scenario():
            service = make_service(
                tmp_path, breaker_threshold=2, breaker_cooldown_s=0.2
            )
            await service.start()
            try:
                for x in (31, 32):
                    await self.fail_once(service, x, tmp_path / "state")
                await asyncio.sleep(0.25)  # cooldown elapses
                probe, _ = await service.submit("chaos-squares", {
                    "x": 33, "state_dir": str(tmp_path / "state"),
                })
                await asyncio.wait_for(probe.wait_terminal(), timeout=30)
                return probe, service.breakers.states()
            finally:
                await service.shutdown(drain_s=1.0)

        probe, states = run(scenario())
        assert probe.state is JobState.DONE
        assert states["chaos"] == "closed"

    def test_failed_job_records_its_error_and_transients(self, tmp_path):
        async def scenario():
            service = make_service(
                tmp_path, retries=1, retry_delay_s=0.01
            )
            await service.start()
            try:
                return await self.fail_once(
                    service, 41, tmp_path / "state"
                )
            finally:
                await service.shutdown(drain_s=1.0)

        job = run(scenario())
        assert job.error["type"] == "ChaosFault"
        assert job.attempts == 2
        transients = job.error["transient_errors"]
        assert [t["type"] for t in transients] == ["ChaosFault"]


class TestDeadlinesAndCancellation:
    def test_job_deadline_fails_with_retry_exhausted(self, tmp_path):
        async def scenario():
            service = make_service(
                tmp_path, retries=2, retry_delay_s=10.0
            )
            await service.start()
            try:
                job, _ = await service.submit(
                    "sleepy", {"duration_s": 30.0}, deadline_s=0.3
                )
                await asyncio.wait_for(job.wait_terminal(), timeout=30)
                return job
            finally:
                await service.shutdown(drain_s=1.0)

        job = run(scenario())
        assert job.state is JobState.FAILED
        assert job.error["type"] == "RetryExhausted"
        assert "deadline" in job.error["message"]

    def test_cancel_running_job_reclaims_the_worker(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, pool_size=1)
            await service.start()
            try:
                stuck, _ = await service.submit(
                    "sleepy", {"duration_s": 60.0}
                )
                while stuck.state is JobState.QUEUED:
                    await asyncio.sleep(0.01)
                await service.cancel(stuck.job_id, "operator said so")
                # The single pool slot must come back: a fresh job runs.
                fresh, _ = await service.submit("squares", {"x": 5})
                await asyncio.wait_for(fresh.wait_terminal(), timeout=30)
                return stuck, fresh
            finally:
                await service.shutdown(drain_s=1.0)

        stuck, fresh = run(scenario())
        assert stuck.state is JobState.CANCELLED
        assert stuck.error == {
            "type": "JobCancelled", "message": "operator said so",
        }
        assert fresh.state is JobState.DONE

    def test_last_waiter_disconnecting_cancels_the_job(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, pool_size=1)
            await service.start()
            try:
                job, _ = await service.submit(
                    "sleepy", {"duration_s": 60.0}, wait=True
                )
                _, second_deduped = await service.submit(
                    "sleepy", {"duration_s": 60.0}, wait=True
                )
                assert second_deduped and job.waiters == 2
                await service.release_waiter(job)
                assert job.state is not JobState.CANCELLED  # one left
                await service.release_waiter(job)
                await asyncio.wait_for(job.wait_terminal(), timeout=10)
                return job
            finally:
                await service.shutdown(drain_s=1.0)

        job = run(scenario())
        assert job.state is JobState.CANCELLED
        assert "disconnected" in job.error["message"]

    def test_cancelled_queued_job_never_runs(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, pool_size=1)
            await service.start()
            try:
                blocker, _ = await service.submit(
                    "sleepy", {"duration_s": 60.0}
                )
                queued, _ = await service.submit("squares", {"x": 8})
                await service.cancel(queued.job_id, "changed my mind")
                return queued
            finally:
                await service.shutdown(drain_s=0.0)

        queued = run(scenario())
        assert queued.state is JobState.CANCELLED
        assert queued.attempts == 0


class TestStats:
    def test_stats_reflect_live_state(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, pool_size=1, queue_limit=4)
            await service.start()
            try:
                await service.submit("sleepy", {"duration_s": 60.0})
                await service.submit("squares", {"x": 1})
                await asyncio.sleep(0.05)  # let the worker pick one up
                return service.stats()
            finally:
                await service.shutdown(drain_s=0.0)

        stats = run(scenario())
        assert stats["jobs"] == 2
        assert stats["inflight"] == 1
        assert stats["queue_depth"] == 1
        assert stats["pool_size"] == 1
        assert not stats["draining"]
