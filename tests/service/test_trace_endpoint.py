"""``GET /jobs/<id>/trace`` over a real socket.

The trace-analysis scenario drives the streaming analyzer inside the
forked worker and appends provisional wait-state summaries to the
job's progress file; the endpoint tails that file live and closes
with a ``{"final": true, ...}`` line carrying the job's value.  These
tests follow the stream through :class:`ServiceClient` exactly the
way an operator's script would.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.errors import ServiceError
from repro.metrics.registry import MetricsRegistry, use_registry
from repro.service import JobService, ServiceClient, ServiceConfig
from repro.service.http import ServiceServer

POINT = {"app": "bigdft", "seed": 7, "num_ranks": 36}


@pytest.fixture
def server(tmp_path):
    """A live service on an ephemeral port; yields a connected client."""
    started = threading.Event()
    state = {}

    def host():
        async def main():
            with use_registry(MetricsRegistry()):
                service = JobService(ServiceConfig(
                    cache_root=tmp_path / "cache",
                    run_dir=tmp_path / "run",
                    pool_size=2,
                    queue_limit=8,
                ))
                srv = ServiceServer(service, port=0, read_timeout_s=0.5)
                await srv.start()
                state["port"] = srv.port
                state["loop"] = asyncio.get_running_loop()
                state["stop"] = asyncio.Event()
                started.set()
                await state["stop"].wait()
                await srv.stop()

        asyncio.run(main())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "server never came up"
    yield ServiceClient(f"http://127.0.0.1:{state['port']}", timeout_s=60)
    state["loop"].call_soon_threadsafe(state["stop"].set)
    thread.join(timeout=10)
    assert not thread.is_alive(), "server thread failed to stop"


class TestTraceStream:
    def test_live_job_streams_provisional_then_final(self, server):
        job_id = server.submit(
            "trace-analysis", POINT, wait=False
        )["job"]["job_id"]
        lines = server.trace(job_id)

        final = lines[-1]
        assert final["final"] is True
        assert final["state"] == "done"
        provisional = lines[:-1]
        assert len(provisional) >= 2, "no live summaries streamed"
        assert all(line["provisional"] for line in provisional)
        counts = [line["events_ingested"] for line in provisional]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]
        # Every provisional line is a self-contained summary.
        for line in provisional:
            assert line["num_ranks"] >= 1
            assert line["waits_classified"] + line["waits_pending"] >= 0
            assert isinstance(line["top_wait_states"], list)

        # The final line carries the job's value: the exact analysis.
        summary = final["summary"]
        assert summary["scenario"] == "fig4-bigdft-36ranks-seed7"
        assert summary["stream"]["events_ingested"] == counts[-1]
        assert summary["stream"]["frontier_high_water"] <= (
            0.30 * summary["stream"]["events_ingested"]
        )
        # ... and matches what /result serves.
        assert server.result(job_id) == summary

    def test_raw_ndjson_over_the_socket(self, server):
        """The wire format itself: NDJSON, readable line by line."""
        job_id = server.submit(
            "trace-analysis", POINT, wait=False
        )["job"]["job_id"]
        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=60
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/trace")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == (
                "application/x-ndjson"
            )
            lines = []
            while True:
                raw = response.readline()
                if not raw:
                    break
                lines.append(json.loads(raw))
        finally:
            conn.close()
        assert lines[-1]["final"] is True
        assert all("final" not in line for line in lines[:-1])

    def test_warm_job_gets_only_the_final_line(self, server):
        first = server.submit("trace-analysis", POINT)["job"]
        assert first["state"] == "done"
        again = server.submit("trace-analysis", POINT)["job"]
        lines = server.trace(again["job_id"])
        assert lines[-1]["final"] is True
        assert lines[-1]["summary"] == server.result(first["job_id"])

    def test_progressless_scenario_is_a_404(self, server):
        job_id = server.submit("squares", {"x": 4})["job"]["job_id"]
        with pytest.raises(ServiceError, match="no live trace progress"):
            server.trace(job_id)
        # The snapshot advertises which jobs have the channel.
        assert server.status(job_id)["job"]["progress"] is False

    def test_snapshot_advertises_progress(self, server):
        job = server.submit("trace-analysis", POINT)["job"]
        assert job["progress"] is True
