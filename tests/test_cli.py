"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_artefact_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_all_artefacts_registered(self):
        expected = {
            "claims", "table1", "table2", "fig1", "fig2", "fig3", "fig4",
            "fig5", "fig6", "fig7",
            "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9",
            "faults",
        }
        assert set(COMMANDS) == expected

    def test_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.seed == 7
        assert not args.quick
        assert args.plan == "montblanc"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "YALES2" in out and "BQCD" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "LINPACK" in out
        assert "38.7" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "exaflop" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Machine (12GB)" in out
        assert "Machine (796MB)" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "GB/s" in out
        assert "consecutive" in out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "sweet spot: [4, 5, 6, 7]" in out

    def test_x2(self, capsys):
        assert main(["x2"]) == 0
        out = capsys.readouterr().out
        assert "Mali-T604" in out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "LINPACK" in out and "BigDFT" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "commodity" in out and "upgraded" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "128b" in out

    def test_x1(self, capsys):
        assert main(["x1"]) == 0
        out = capsys.readouterr().out
        assert "fragmentation" in out

    def test_x3(self, capsys):
        assert main(["x3"]) == 0
        out = capsys.readouterr().out
        assert "buffer" in out

    def test_x5(self, capsys):
        assert main(["x5"]) == 0
        out = capsys.readouterr().out
        assert "32 KB" in out

    def test_x6(self, capsys):
        assert main(["x6"]) == 0
        out = capsys.readouterr().out
        assert "Mali" in out

    def test_x7(self, capsys):
        assert main(["x7"]) == 0
        out = capsys.readouterr().out
        assert "BQCD" in out

    def test_x8(self, capsys):
        assert main(["x8"]) == 0
        out = capsys.readouterr().out
        assert "prototype" in out

    def test_x9_quick(self, capsys):
        assert main(["x9", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "sweet spot" in out and "rework" in out

    def test_faults_quick(self, capsys):
        assert main(["faults", "--quick", "--plan", "single-crash"]) == 0
        out = capsys.readouterr().out
        assert "resilience summary" in out
        assert "MTTF" in out and "detection latency" in out
        assert "goodput lost to retries" in out and "rework" in out

    def test_faults_unknown_plan_fails_cleanly(self, capsys):
        assert main(["faults", "--quick", "--plan", "meteor"]) == 1
        assert "unknown fault plan" in capsys.readouterr().err
