"""Tests for repro.energy.scale (cluster-level energy, §IV/§VI)."""

import pytest

from repro.apps import BigDFT, Specfem3D
from repro.cluster import tibidabo
from repro.energy.scale import (
    cluster_power_watts,
    counterbalance_study,
    measure_cluster_energy,
    switches_in_use,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def cluster():
    return tibidabo(num_nodes=96, seed=7)


class TestFootprint:
    def test_switch_count_single_leaf(self, cluster):
        assert switches_in_use(cluster, 1) == 1
        assert switches_in_use(cluster, 40) == 1

    def test_switch_count_grows_with_leaves(self, cluster):
        assert switches_in_use(cluster, 41) == 3   # 2 leaves + root
        assert switches_in_use(cluster, 96) == 4   # 3 leaves + root

    def test_out_of_range_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            switches_in_use(cluster, 0)
        with pytest.raises(ConfigurationError):
            switches_in_use(cluster, 97)

    def test_cluster_power_includes_fabric(self, cluster):
        nodes_only = cluster.node_power_watts(10)
        total = cluster_power_watts(cluster, 10)
        assert total == pytest.approx(nodes_only + 60.0)

    def test_network_power_matters_at_small_scale(self, cluster):
        """One switch (60 W) dwarfs a handful of 4 W nodes — the
        'network inefficiency' side of the paper's counterbalance."""
        power = cluster_power_watts(cluster, 2)
        assert power > 8 * cluster.node.tdp_watts


class TestMeasureEnergy:
    def test_basic_accounting(self, cluster):
        run = measure_cluster_energy(Specfem3D(timesteps=5), cluster, 16)
        assert run.nodes == 8
        assert run.node_power_w == pytest.approx(32.0)
        assert run.network_power_w == pytest.approx(60.0)
        assert run.energy_joules == pytest.approx(
            run.total_power_w * run.elapsed_seconds
        )

    def test_network_fraction(self, cluster):
        run = measure_cluster_energy(Specfem3D(timesteps=5), cluster, 16)
        assert run.network_power_fraction == pytest.approx(60.0 / 92.0)

    def test_invalid_cores_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            measure_cluster_energy(Specfem3D(), cluster, 0)


class TestCounterbalance:
    def test_scalable_code_energy_flat_or_falling(self, cluster):
        """SPECFEM3D scales ~ideally: more nodes, proportionally less
        time — compute energy stays flat while the fixed switch power
        amortizes, so energy must not grow much."""
        study = counterbalance_study(
            Specfem3D(timesteps=5), cluster, [8, 16, 32, 64]
        )
        energies = dict(study.energy_curve())
        assert energies[64] < energies[8] * 1.6

    def test_congested_code_wastes_energy_at_scale(self, cluster):
        """BigDFT's energy-to-solution is U-shaped: adding cores pays
        until the incast threshold, then the network pathology burns
        more joules for the same problem — the paper's counterbalance,
        quantified."""
        study = counterbalance_study(
            BigDFT(scf_iterations=4), cluster, [4, 8, 16, 24, 36]
        )
        energies = dict(study.energy_curve())
        assert energies[36] > energies[24]          # the congestion tax
        assert study.most_efficient_cores < 36      # optimum before 36

    def test_network_fraction_shrinks_with_nodes(self, cluster):
        study = counterbalance_study(
            Specfem3D(timesteps=5), cluster, [8, 64]
        )
        fractions = dict(study.network_fraction_curve())
        assert fractions[64] < fractions[8]

    def test_empty_sweep_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            counterbalance_study(Specfem3D(), cluster, [])
