"""Replay every quantitative claim of the paper (the scorecard)."""

import pytest

from repro.errors import ConfigurationError
from repro.paper import ALL_CLAIMS, audit, claim_by_id


class TestRegistry:
    def test_claims_cover_every_section(self):
        sections = {claim.section for claim in ALL_CLAIMS}
        assert {"I", "III-C", "IV", "V-A-2", "V-A-3", "V-B", "VI-A"} <= sections

    def test_claim_ids_unique(self):
        ids = [claim.claim_id for claim in ALL_CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_lookup(self):
        claim = claim_by_id("table2.linpack.ratio")
        assert claim.expected == 38.7
        with pytest.raises(ConfigurationError):
            claim_by_id("nope")

    def test_every_claim_quotes_the_paper(self):
        for claim in ALL_CLAIMS:
            assert len(claim.statement) > 10, claim.claim_id


@pytest.mark.parametrize("claim", ALL_CLAIMS, ids=lambda c: c.claim_id)
def test_claim_reproduces(claim):
    result = claim.check()
    assert result.passed, result.describe()


def test_audit_runs_everything():
    results = audit()
    assert len(results) == len(ALL_CLAIMS)
    assert all(r.passed for r in results), "\n".join(
        r.describe() for r in results if not r.passed
    )
