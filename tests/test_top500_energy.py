"""Tests for repro.top500 and repro.energy (Figure 1 and Table II
ratio arithmetic)."""

import pytest

from repro.apps import Linpack, Specfem3D
from repro.arch.machines import SNOWBALL_A9500, XEON_X5550
from repro.energy import (
    compare_runs,
    energy_ratio,
    energy_to_solution,
    gflops_per_watt,
    performance_ratio,
)
from repro.errors import ConfigurationError, DataError
from repro.top500.data import (
    GREEN500_TOP_2012_GFLOPS_PER_WATT,
    TOP500_SERIES,
    series_column,
)
from repro.top500.model import (
    fit_series,
    project_exaflop,
    required_efficiency_factor,
)


class TestTop500Data:
    def test_twenty_years_of_lists(self):
        years = [e.year for e in TOP500_SERIES]
        assert years == list(range(1993, 2013))

    def test_entries_are_internally_ordered(self):
        for entry in TOP500_SERIES:
            assert entry.entry_gflops <= entry.top_gflops <= entry.sum_gflops

    def test_every_column_grows_monotonically(self):
        for column in ("sum", "top", "entry"):
            _, values = series_column(column)
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_known_anchor_points(self):
        by_year = {e.year: e for e in TOP500_SERIES}
        assert by_year[1993].top_gflops == pytest.approx(59.7)
        assert by_year[2008].top_gflops > 1e6  # Roadrunner broke the petaflop
        assert by_year[2012].top_gflops > 16e6  # Sequoia

    def test_unknown_column_rejected(self):
        with pytest.raises(DataError):
            series_column("median")


class TestFigure1Projection:
    def test_growth_factor_is_about_1p9_per_year(self):
        """The famous Top500 doubling-ish cadence."""
        for column in ("sum", "top", "entry"):
            fit = fit_series(column)
            assert 1.7 <= fit.growth <= 2.1
            assert fit.r_squared > 0.95

    def test_exaflop_projected_around_2018(self):
        """Figure 1 / §I: 'break the exaflops barrier by the projected
        year of 2018'."""
        projection = project_exaflop("top")
        assert 2017.0 <= projection.exaflop_year <= 2021.0

    def test_required_efficiency_factor_is_about_25(self):
        """§I: 'the efficiency of supercomputers need to be increased
        by a factor of 25'."""
        assert required_efficiency_factor() == pytest.approx(25.0, rel=0.08)

    def test_20mw_exaflop_needs_50_gflops_per_watt(self):
        projection = project_exaflop("top")
        assert projection.required_gflops_per_watt == pytest.approx(50.0)

    def test_2012_leader_is_about_2_gflops_per_watt(self):
        """§I: the Top500 head 'reaches an efficiency of about 2 GFLOPS
        per Watt'."""
        assert 1.8 <= GREEN500_TOP_2012_GFLOPS_PER_WATT <= 2.3

    def test_invalid_budget_rejected(self):
        with pytest.raises(DataError):
            required_efficiency_factor(power_budget_w=0)


class TestEnergyModel:
    def test_energy_to_solution(self):
        run = Specfem3D().run(SNOWBALL_A9500)
        assert energy_to_solution(run) == pytest.approx(
            2.5 * run.elapsed_seconds
        )

    def test_performance_ratio_for_times(self):
        snow = Specfem3D().run(SNOWBALL_A9500)
        xeon = Specfem3D().run(XEON_X5550)
        ratio = performance_ratio(xeon, snow)
        assert ratio == pytest.approx(snow.metric_value / xeon.metric_value)

    def test_performance_ratio_for_rates(self):
        snow = Linpack().run(SNOWBALL_A9500)
        xeon = Linpack().run(XEON_X5550)
        ratio = performance_ratio(xeon, snow)
        assert ratio == pytest.approx(xeon.metric_value / snow.metric_value)

    def test_energy_ratio_normalizes_rate_metrics_by_work(self):
        """HPL fills each node's memory, so instances differ; energy
        must compare joules per flop, reproducing Table II's 1.0."""
        snow = Linpack().run(SNOWBALL_A9500)
        xeon = Linpack().run(XEON_X5550)
        assert energy_ratio(xeon, snow) == pytest.approx(1.0, abs=0.08)

    def test_compare_runs_builds_a_table2_row(self):
        snow = Specfem3D().run(SNOWBALL_A9500)
        xeon = Specfem3D().run(XEON_X5550)
        row = compare_runs(xeon, snow)
        assert row.benchmark == "SPECFEM3D"
        assert row.ratio == pytest.approx(7.9, rel=0.05)
        assert row.energy_ratio == pytest.approx(0.2, abs=0.05)

    def test_gflops_per_watt(self):
        assert gflops_per_watt(24e9, 95.0) == pytest.approx(0.2526, rel=0.01)
        with pytest.raises(ConfigurationError):
            gflops_per_watt(1e9, 0.0)

    def test_mismatched_apps_rejected(self):
        snow = Specfem3D().run(SNOWBALL_A9500)
        xeon = Linpack().run(XEON_X5550)
        with pytest.raises(ConfigurationError):
            compare_runs(xeon, snow)
