"""Tests for repro.units."""

import pytest

from repro import units


class TestConstants:
    def test_binary_byte_prefixes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3

    def test_decimal_byte_prefixes(self):
        assert units.KB == 1000
        assert units.GB == 1000**3

    def test_flops_ladder(self):
        assert units.EFLOPS / units.PFLOPS == 1000
        assert units.PFLOPS / units.TFLOPS == 1000
        assert units.GFLOPS == 1e9

    def test_time_constants(self):
        assert units.MINUTE == 60
        assert units.HOUR == 3600
        assert units.US == pytest.approx(1000 * units.NS)


class TestBitConversions:
    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(1e9) == 125e6

    def test_bytes_to_bits_roundtrip(self):
        assert units.bits_to_bytes(units.bytes_to_bits(12345.0)) == 12345.0


class TestFormatting:
    def test_format_bytes_binary(self):
        assert units.format_bytes(32 * 1024) == "32.0 KiB"

    def test_format_bytes_decimal(self):
        assert units.format_bytes(1e9, binary=False) == "1.0 GB"

    def test_format_bytes_small(self):
        assert units.format_bytes(12) == "12.0 B"

    def test_format_bytes_huge_saturates_at_largest_suffix(self):
        assert "TiB" in units.format_bytes(5 * 1024**5)

    def test_format_rate_gflops(self):
        assert units.format_rate(24e9) == "24.0 GFLOPS"

    def test_format_rate_mflops(self):
        assert units.format_rate(620e6) == "620.0 MFLOPS"

    def test_format_rate_below_mflops(self):
        assert units.format_rate(10.0) == "10.0 FLOPS"

    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (186.8, "186.800 s"),
            (0.0234, "23.400 ms"),
            (2.1e-6, "2.100 us"),
            (5e-9, "5.000 ns"),
        ],
    )
    def test_format_seconds(self, seconds, expected):
        assert units.format_seconds(seconds) == expected
