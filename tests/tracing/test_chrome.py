"""Tests for the Chrome trace-event exporter and its validator."""

import json

import pytest

from repro.cluster import MpiJob, tibidabo
from repro.errors import TraceError
from repro.metrics.registry import MetricsRegistry, use_registry
from repro.tracing.chrome import (
    CHROME_SCHEMA_VERSION,
    export_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.tracing.recorder import TraceRecorder


@pytest.fixture(scope="module")
def traced():
    """A small traced job plus the registry that observed it."""
    registry = MetricsRegistry()
    with use_registry(registry):
        cluster = tibidabo(num_nodes=4, seed=3)
        recorder = TraceRecorder()

        def program(rank):
            yield rank.compute(0.01, label="work")
            yield from rank.alltoallv([2000] * rank.size)
            yield from rank.barrier()

        MpiJob(cluster, 4, program, tracer=recorder).run()
    recorder.fault("crash", 0.001, "node0", cores=2)
    return recorder, registry


class TestExport:
    def test_validates_and_serializes(self, traced):
        recorder, registry = traced
        document = export_chrome_trace(recorder, registry=registry)
        validate_chrome_trace(document)
        json.dumps(document, allow_nan=False)
        assert document["otherData"]["schema"] == CHROME_SCHEMA_VERSION
        assert document["otherData"]["num_ranks"] == 4

    def test_one_slice_per_state_one_track_per_rank(self, traced):
        recorder, _ = traced
        events = export_chrome_trace(recorder)["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(recorder.states)
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {r: f"rank {r}" for r in range(4)}

    def test_flow_pair_per_stamped_message(self, traced):
        recorder, _ = traced
        events = export_chrome_trace(recorder)["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        stamped = [c for c in recorder.comms if c.seq >= 0]
        assert len(starts) == len(ends) == len(stamped)
        assert {e["id"] for e in starts} == {c.seq for c in stamped}

    def test_faults_become_instant_events(self, traced):
        recorder, _ = traced
        events = export_chrome_trace(recorder)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(recorder.faults)
        assert instants[0]["name"] == "crash:node0"
        assert instants[0]["args"] == {"cores": 2}

    def test_derived_counter_tracks(self, traced):
        recorder, _ = traced
        events = export_chrome_trace(recorder)["traceEvents"]
        series = {e["name"] for e in events if e["ph"] == "C"}
        assert "messages in flight" in series
        assert "payload sent" in series
        in_flight = [
            e["args"]["messages"]
            for e in events
            if e["ph"] == "C" and e["name"] == "messages in flight"
        ]
        assert in_flight[-1] == 0  # every message eventually arrives

    def test_registry_metrics_embedded(self, traced):
        recorder, registry = traced
        events = export_chrome_trace(recorder, registry=registry)["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "C"}
        assert "des.events_dispatched" in names
        without = export_chrome_trace(recorder)["traceEvents"]
        assert "des.events_dispatched" not in {
            e["name"] for e in without if e["ph"] == "C"
        }

    def test_deterministic(self, traced):
        recorder, registry = traced
        first = export_chrome_trace(recorder, registry=registry)
        second = export_chrome_trace(recorder, registry=registry)
        assert first == second

    def test_write_round_trips(self, traced, tmp_path):
        recorder, registry = traced
        target = tmp_path / "deep" / "dir" / "trace.json"
        document = write_chrome_trace(target, recorder, registry=registry)
        loaded = json.loads(target.read_text())
        assert loaded == json.loads(json.dumps(document))
        validate_chrome_trace(loaded)


class TestValidator:
    def _minimal(self):
        return {
            "traceEvents": [
                {
                    "ph": "X", "name": "work", "pid": 1, "tid": 0,
                    "ts": 0.0, "dur": 5.0,
                },
            ],
            "displayTimeUnit": "ms",
        }

    def test_accepts_minimal(self):
        validate_chrome_trace(self._minimal())

    def test_rejects_non_object(self):
        with pytest.raises(TraceError):
            validate_chrome_trace([])

    def test_rejects_unknown_phase(self):
        doc = self._minimal()
        doc["traceEvents"][0]["ph"] = "Z"
        with pytest.raises(TraceError, match="unknown phase"):
            validate_chrome_trace(doc)

    def test_rejects_negative_duration(self):
        doc = self._minimal()
        doc["traceEvents"][0]["dur"] = -1.0
        with pytest.raises(TraceError, match="dur"):
            validate_chrome_trace(doc)

    def test_rejects_missing_timestamp(self):
        doc = self._minimal()
        del doc["traceEvents"][0]["ts"]
        with pytest.raises(TraceError, match="ts"):
            validate_chrome_trace(doc)

    def test_rejects_unpaired_flow_end(self):
        doc = self._minimal()
        doc["traceEvents"].append(
            {"ph": "f", "name": "m", "cat": "message", "id": 7,
             "pid": 1, "tid": 0, "ts": 1.0}
        )
        with pytest.raises(TraceError, match="without a start"):
            validate_chrome_trace(doc)

    def test_rejects_backwards_flow(self):
        doc = self._minimal()
        doc["traceEvents"] += [
            {"ph": "s", "name": "m", "cat": "message", "id": 7,
             "pid": 1, "tid": 0, "ts": 5.0},
            {"ph": "f", "name": "m", "cat": "message", "id": 7,
             "pid": 1, "tid": 1, "ts": 1.0},
        ]
        with pytest.raises(TraceError, match="ends before it starts"):
            validate_chrome_trace(doc)

    def test_rejects_non_numeric_counter(self):
        doc = self._minimal()
        doc["traceEvents"].append(
            {"ph": "C", "name": "c", "pid": 2, "tid": 0, "ts": 0.0,
             "args": {"value": "high"}}
        )
        with pytest.raises(TraceError, match="numeric"):
            validate_chrome_trace(doc)

    def test_rejects_bad_metadata(self):
        doc = self._minimal()
        doc["traceEvents"].append(
            {"ph": "M", "name": "nonsense", "pid": 1, "tid": 0, "args": {}}
        )
        with pytest.raises(TraceError, match="unknown metadata"):
            validate_chrome_trace(doc)

    def test_rejects_bad_display_unit(self):
        doc = self._minimal()
        doc["displayTimeUnit"] = "fortnights"
        with pytest.raises(TraceError, match="displayTimeUnit"):
            validate_chrome_trace(doc)
