"""Tests for the happens-before graph and critical-path extraction."""

import math

import pytest

from repro.cluster import MpiJob, tibidabo
from repro.errors import TraceError
from repro.tracing.graph import (
    PATH_CATEGORIES,
    CriticalPath,
    HappensBeforeGraph,
    PathSegment,
    build_graph,
    critical_path,
)
from repro.tracing.recorder import TraceRecorder


class _Msg:
    """Minimal message stand-in for recorder.comm()."""

    def __init__(self, src, dst, send_time, arrival_time, label, seq, tag="t"):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = 1000
        self.send_time = send_time
        self.arrival_time = arrival_time
        self.label = label
        self.seq = seq


def _late_sender_trace():
    """Rank 0 computes long, then sends; rank 1 blocks waiting for it."""
    rec = TraceRecorder()
    rec.state(0, "work", 0.0, 5.0, kind="compute")
    rec.state(0, "send", 5.0, 5.1, kind="send", cause=1)
    rec.comm(_Msg(0, 1, 5.0, 5.2, "p2p", seq=1))
    rec.state(1, "work", 0.0, 1.0, kind="compute")
    rec.state(1, "recv", 1.0, 5.2, kind="wait", cause=1)
    rec.state(1, "work", 5.2, 6.0, kind="compute")
    return rec


class TestHappensBeforeGraph:
    def test_counts_and_end(self):
        graph = build_graph(_late_sender_trace())
        assert graph.node_count == 5
        # 3 program-order edges (2 on rank 0, 2 on rank 1... minus one
        # each) plus one message edge.
        assert graph.edge_count == (1 + 2) + 1
        assert graph.end_time == pytest.approx(6.0)
        assert graph.end_rank == 1

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            build_graph(TraceRecorder())

    def test_validate_passes_on_consistent_trace(self):
        build_graph(_late_sender_trace()).validate()

    def test_validate_rejects_wait_ending_before_arrival(self):
        rec = TraceRecorder()
        rec.state(0, "send", 0.0, 0.1, kind="send", cause=1)
        rec.comm(_Msg(0, 1, 0.0, 9.0, "p2p", seq=1))
        rec.state(1, "recv", 0.0, 1.0, kind="wait", cause=1)
        with pytest.raises(TraceError):
            build_graph(rec).validate()


class TestCriticalPath:
    def test_late_sender_hop(self):
        path = critical_path(_late_sender_trace())
        # The path must hop from rank 1's wait to rank 0's compute at
        # the injection time — never charge rank 1's pre-send blocking.
        assert path.rank_changes == 1
        assert [s.rank for s in path.segments] == [0, 1, 1]
        assert path.breakdown["compute"] == pytest.approx(5.8)
        assert path.breakdown["wait"] == pytest.approx(0.2)
        assert path.breakdown["idle"] == pytest.approx(0.0)
        assert path.dominant_wait_label() == "recv"

    def test_segments_tile_the_runtime(self):
        path = critical_path(_late_sender_trace())
        covered = math.fsum(s.duration for s in path.segments)
        assert covered == pytest.approx(path.total_seconds)
        path.check_coverage()

    def test_trace_gap_becomes_idle(self):
        rec = TraceRecorder()
        rec.state(0, "work", 0.0, 1.0, kind="compute")
        rec.state(0, "work", 2.0, 3.0, kind="compute")
        path = critical_path(rec)
        assert path.breakdown["idle"] == pytest.approx(1.0)
        assert path.breakdown["compute"] == pytest.approx(2.0)

    def test_retry_states_become_rework(self):
        rec = TraceRecorder()
        rec.state(0, "work", 0.0, 1.0, kind="compute")
        rec.state(0, "retry", 1.0, 1.5, kind="retry")
        rec.state(0, "work", 1.5, 2.0, kind="compute")
        path = critical_path(rec)
        assert path.breakdown["rework"] == pytest.approx(0.5)

    def test_by_label_sorted_largest_first(self):
        path = critical_path(_late_sender_trace())
        seconds = list(path.by_label.values())
        assert seconds == sorted(seconds, reverse=True)

    def test_check_coverage_rejects_overlap(self):
        bad = CriticalPath(
            segments=(
                PathSegment(3, 0.0, 2.0, "compute", "fft"),
                PathSegment(5, 1.0, 2.0, "compute", "conv"),
            ),
            total_seconds=3.0,
        )
        with pytest.raises(TraceError) as err:
            bad.check_coverage()
        # The message names both offenders: rank, category, label and
        # the exact time windows — enough to find them in the trace.
        message = str(err.value)
        assert "overlap" in message
        assert "'fft' on rank 3" in message
        assert "'conv' on rank 5" in message
        assert "[0.000000000, 2.000000000]" in message

    def test_check_coverage_rejects_shortfall(self):
        bad = CriticalPath(
            segments=(PathSegment(2, 0.0, 1.0, "compute", "fft"),),
            total_seconds=5.0,
        )
        with pytest.raises(TraceError) as err:
            bad.check_coverage()
        # The message localizes the largest hole next to a named
        # segment, not just "coverage mismatch".
        message = str(err.value)
        assert "covers 1.000000000s of 5.000000000s" in message
        assert "[1.000000000, 5.000000000] after the last segment" in message
        assert "'fft' on rank 2" in message

    def test_check_coverage_names_interior_gap(self):
        bad = CriticalPath(
            segments=(
                PathSegment(0, 0.0, 1.0, "compute", "fft"),
                PathSegment(4, 3.0, 4.0, "mpi-wait", "alltoallv"),
            ),
            total_seconds=4.0,
        )
        with pytest.raises(TraceError) as err:
            bad.check_coverage()
        message = str(err.value)
        assert "[1.000000000, 3.000000000] between" in message
        assert "compute segment 'fft' on rank 0" in message
        assert "mpi-wait segment 'alltoallv' on rank 4" in message


class TestOnRealJob:
    @pytest.fixture(scope="class")
    def recorder(self):
        cluster = tibidabo(num_nodes=8, seed=1)
        rec = TraceRecorder()

        def program(rank):
            yield rank.compute(0.01, label="work")
            yield from rank.alltoallv([5000] * rank.size)
            yield rank.compute(0.005, label="work")
            yield from rank.barrier()

        MpiJob(cluster, 8, program, tracer=rec).run()
        return rec

    def test_walk_converges_and_tiles(self, recorder):
        graph = HappensBeforeGraph(recorder)
        graph.validate()
        path = graph.critical_path()
        path.check_coverage()
        assert path.total_seconds == pytest.approx(graph.end_time)

    def test_categories_are_known(self, recorder):
        path = critical_path(recorder)
        assert {s.category for s in path.segments} <= set(PATH_CATEGORIES)

    def test_collective_wait_lands_on_path(self, recorder):
        # Over half the 8-rank job is the alltoallv exchange; some of
        # it must be on the path as wait time.
        path = critical_path(recorder)
        assert path.breakdown["wait"] > 0.0
        assert path.dominant_wait_label() == "alltoallv"

    def test_deterministic(self, recorder):
        first = critical_path(recorder)
        second = critical_path(recorder)
        assert first.segments == second.segments
