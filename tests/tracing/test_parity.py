"""NullTracer ↔ TraceRecorder API-parity tests.

These introspect both classes so the parity cannot silently drift: a
method added to :class:`TraceRecorder` without a matching no-op on
:class:`NullTracer` (or with a different signature) fails here, not in
whatever analysis code first receives a ``tracer=NullTracer()``.
"""

import inspect

import pytest

from repro.tracing.recorder import NullTracer, TraceRecorder


def _public_api(cls):
    # dir() of an *instance* so TraceRecorder's data attributes
    # (states/comms/faults, set in __init__) count as API too.
    return {
        name
        for name in dir(cls())
        if not name.startswith("_")
    }


def _signature_of(cls, name):
    attribute = inspect.getattr_static(cls, name)
    if isinstance(attribute, property):
        return "property"
    return str(inspect.signature(attribute))


class TestApiParity:
    def test_null_tracer_covers_the_full_recorder_api(self):
        missing = _public_api(TraceRecorder) - _public_api(NullTracer)
        assert not missing, f"NullTracer lacks: {sorted(missing)}"

    def test_no_stray_null_tracer_extras(self):
        extra = _public_api(NullTracer) - _public_api(TraceRecorder)
        assert not extra, f"NullTracer grew unknown API: {sorted(extra)}"

    @pytest.mark.parametrize("name", sorted(_public_api(TraceRecorder)))
    def test_signatures_match(self, name):
        null_sig = _signature_of(NullTracer, name)
        # states/comms/faults are plain attributes on TraceRecorder
        # (set in __init__) but properties on NullTracer; both read as
        # list-valued data access, so either shape is parity.
        if name in ("states", "comms", "faults"):
            assert null_sig == "property"
        else:
            recorder_sig = _signature_of(TraceRecorder, name)
            assert null_sig == recorder_sig, (
                f"{name}: TraceRecorder{recorder_sig} "
                f"vs NullTracer{null_sig}"
            )


class TestBehavesLikeAnEmptyTrace:
    @pytest.fixture()
    def pair(self):
        return NullTracer(), TraceRecorder()

    def test_recording_is_discarded(self, pair):
        null, _ = pair
        null.state(0, "work", 0.0, 1.0, kind="compute", cause=3)

        class Msg:
            src, dst, tag, nbytes = 0, 1, "t", 10
            send_time, arrival_time, label, seq = 0.0, 0.1, "p2p", 5

        null.comm(Msg())
        null.fault("crash", 0.5, "node0", cores=[0, 1])
        assert null.states == [] and null.comms == [] and null.faults == []

    def test_queries_answer_as_empty(self, pair):
        null, empty = pair
        assert null.num_ranks == empty.num_ranks
        assert null.end_time == empty.end_time
        assert null.states_of(0) == empty.states_of(0)
        assert null.states_of(0, "work") == empty.states_of(0, "work")
        assert null.comms_labelled("x") == empty.comms_labelled("x")
        assert null.faults_of("crash") == empty.faults_of("crash")
        assert null.time_in_state(2, "work") == empty.time_in_state(2, "work")

    def test_check_sanity_passes(self, pair):
        null, empty = pair
        assert null.check_sanity() == empty.check_sanity() == None  # noqa: E711
