"""The streaming analyzer: bounded memory, exactness, failure modes.

The load-bearing claim is *byte identity*: for the same trace, the
streaming analysis — whatever its frontier limit, however much it
spilled — produces the same :class:`RunReport` JSON as the batch
graph+classifier pipeline.  Everything else (spill framing, eviction
accounting, live summaries, sampled error bounds) supports that.
"""

import json

import pytest

from repro.errors import TraceError
from repro.metrics.export import registry_to_dict
from repro.metrics.registry import MetricsRegistry
from repro.obs import build_run_report, build_stream_run_report
from repro.tracing import TraceRecorder
from repro.tracing.stream import (
    SpillLog,
    StreamConfig,
    TraceStreamAnalyzer,
    _decode_tag,
    _encode_tag,
    build_synthetic_trace,
)


def _tee(config=None, *, num_ranks=6, rounds=30, seed=11, registry=None):
    """Feed one synthetic trace to batch and stream simultaneously."""
    analyzer = TraceStreamAnalyzer(config, registry=registry)
    recorder = TraceRecorder(sink=analyzer)
    build_synthetic_trace(
        recorder, num_ranks=num_ranks, rounds=rounds, seed=seed
    )
    return recorder, analyzer


def _stream_only(config=None, **kwargs):
    analyzer = TraceStreamAnalyzer(config)
    build_synthetic_trace(analyzer, **kwargs)
    return analyzer


class TestByteIdentity:
    def test_stream_equals_batch_under_aggressive_eviction(self):
        config = StreamConfig(frontier_limit=64, segment_events=16)
        recorder, analyzer = _tee(config)
        with analyzer:
            result = analyzer.finalize()
            streamed = build_stream_run_report(result, scenario="tee")
        batch = build_run_report(recorder, scenario="tee")
        assert streamed.to_json() == batch.to_json()
        # The equality must have been earned: this run really spilled.
        assert result.stats.retired_segments > 0
        assert result.stats.spill_bytes > 0
        assert result.stats.frontier_high_water < result.stats.events_ingested

    def test_frontier_limit_never_changes_the_answer(self):
        documents = set()
        for limit in (1, 17, 256, None):
            with _stream_only(
                StreamConfig(frontier_limit=limit, segment_events=8)
            ) as analyzer:
                result = analyzer.finalize()
                documents.add(
                    build_stream_run_report(result, scenario="x").to_json()
                )
        assert len(documents) == 1

    def test_high_water_respects_the_limit(self):
        config = StreamConfig(frontier_limit=64, segment_events=16)
        with _stream_only(config) as analyzer:
            stats = analyzer.finalize().stats
        # Eviction runs after each ingest, so the high-water mark can
        # overshoot by at most one segment of not-yet-flushed waits.
        assert stats.frontier_high_water <= 64 + config.segment_events
        assert stats.frontier_live <= stats.frontier_high_water

    def test_finalize_is_idempotent(self):
        with _stream_only(StreamConfig(frontier_limit=32)) as analyzer:
            assert analyzer.finalize() is analyzer.finalize()


class TestLifecycle:
    def test_empty_stream_is_rejected(self):
        with TraceStreamAnalyzer() as analyzer:
            with pytest.raises(TraceError, match="empty trace stream"):
                analyzer.finalize()

    def test_finalize_after_close_is_rejected(self):
        analyzer = _stream_only(rounds=2)
        analyzer.close()
        with pytest.raises(TraceError, match="closed"):
            analyzer.finalize()

    def test_ingest_after_close_is_rejected(self):
        analyzer = TraceStreamAnalyzer()
        analyzer.close()
        with pytest.raises(TraceError, match="closed"):
            analyzer.state(0, "compute", 0.0, 1.0)

    def test_close_drops_the_owned_spill_dir(self):
        analyzer = _stream_only(
            StreamConfig(frontier_limit=8, segment_events=4), rounds=10
        )
        spill_dir = analyzer._dir
        assert spill_dir.exists()
        analyzer.close()
        assert not spill_dir.exists()

    def test_explicit_spill_dir_is_kept(self, tmp_path):
        config = StreamConfig(
            frontier_limit=8, segment_events=4, spill_dir=tmp_path / "spill"
        )
        analyzer = _stream_only(config, rounds=10)
        analyzer.finalize()
        analyzer.close()
        assert (tmp_path / "spill").exists()


class TestSpillLog:
    def test_round_trip(self, tmp_path):
        log = SpillLog(tmp_path / "s.spill")
        offset, length = log.append("states", 3, [[0, "a", 0.0, 1.0, "state", -1]])
        assert log.read(offset, length, kind="states", rank=3) == (
            [[0, "a", 0.0, 1.0, "state", -1]]
        )
        log.close()

    def test_corruption_is_a_trace_error(self, tmp_path):
        path = tmp_path / "s.spill"
        log = SpillLog(path)
        offset, length = log.append("states", 0, [[0, "a", 0.0, 1.0, "state", -1]])
        log._file.seek(offset + 30)
        log._file.write(b"X")
        log._file.flush()
        with pytest.raises(TraceError, match="corrupt or misaddressed"):
            log.read(offset, length, kind="states", rank=0)
        log.close()

    def test_misaddressed_read_is_a_trace_error(self, tmp_path):
        log = SpillLog(tmp_path / "s.spill")
        offset, length = log.append("states", 0, [])
        with pytest.raises(TraceError, match="corrupt or misaddressed"):
            log.read(offset, length, kind="states", rank=7)
        with pytest.raises(TraceError, match="corrupt or misaddressed"):
            log.read(offset, length, kind="comms", rank=0)
        log.close()

    def test_truncated_frame_is_a_trace_error(self, tmp_path):
        log = SpillLog(tmp_path / "s.spill")
        offset, length = log.append("states", 0, [[0, "a", 0.0, 1.0, "state", -1]])
        with pytest.raises(TraceError, match="unreadable"):
            log.read(offset, length - 5, kind="states", rank=0)
        log.close()


class TestTagCodec:
    def test_nested_tuples_round_trip(self):
        tag = ("alltoallv", 3, ("phase", 2.5), None)
        assert _decode_tag(_encode_tag(tag)) == tag

    def test_scalars_pass_through(self):
        for tag in (None, "x", 7, 2.5):
            assert _decode_tag(_encode_tag(tag)) == tag

    def test_unframable_tag_is_a_trace_error(self):
        with pytest.raises(TraceError, match="JSON-framable"):
            _encode_tag({"not": "hashable-framing"})


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"frontier_limit": 0}, "frontier_limit"),
            ({"segment_events": 0}, "segment_events"),
            ({"contention_factor": 1.0}, "contention_factor"),
            ({"summary_every": -1}, "summary_every"),
            ({"sample_per_label": 1}, "sample_per_label"),
            ({"cache_segments": 0}, "cache_segments"),
        ],
    )
    def test_bad_knobs_are_rejected(self, kwargs, match):
        with pytest.raises(TraceError, match=match):
            StreamConfig(**kwargs)


class TestMetrics:
    def test_trace_metrics_flow_and_stay_volatile(self):
        registry = MetricsRegistry()
        config = StreamConfig(frontier_limit=64, segment_events=16)
        recorder, analyzer = _tee(config, registry=registry)
        with analyzer:
            result = analyzer.finalize()
        stats = result.stats
        assert registry.counter("trace.events_ingested").value == (
            stats.events_ingested
        )
        assert registry.counter("trace.spill_bytes").value == stats.spill_bytes
        assert registry.counter("trace.retired_segments").value == (
            stats.retired_segments
        )
        assert registry.gauge("trace.frontier_high_water").value == (
            stats.frontier_high_water
        )
        # Volatile: present in the observability export, absent from
        # the deterministic one — so streaming never perturbs goldens.
        live = registry_to_dict(registry, deterministic=False)
        frozen = registry_to_dict(registry, deterministic=True)
        assert "trace.events_ingested" in live["counters"]
        assert not any(k.startswith("trace.") for k in frozen["counters"])
        assert not any(k.startswith("trace.") for k in frozen["gauges"])


class TestLiveSummaries:
    def test_on_summary_fires_with_monotone_progress(self):
        summaries = []
        config = StreamConfig(
            frontier_limit=64,
            segment_events=16,
            summary_every=100,
            on_summary=summaries.append,
        )
        with _stream_only(config, rounds=40) as analyzer:
            final = analyzer.live_summary()
            analyzer.finalize()
        assert len(summaries) >= 3
        counts = [s["events_ingested"] for s in summaries]
        assert counts == sorted(counts)
        assert all(s["provisional"] for s in summaries)
        for summary in summaries:
            assert summary["frontier"]["high_water"] >= summary["frontier"]["live"]
            for entry in summary["top_wait_states"]:
                assert entry["seconds"] > 0.0
                assert entry["occurrences"] >= 1
        assert final["events_ingested"] >= counts[-1]

    def test_summaries_are_provisional_not_authoritative(self):
        """The live classification converges toward — but is allowed to
        differ from — the exact finalized analysis."""
        config = StreamConfig(summary_every=100, on_summary=lambda s: None)
        with _stream_only(config, rounds=40) as analyzer:
            live = analyzer.live_summary()
            result = analyzer.finalize()
        live_total = sum(e["seconds"] for e in live["top_wait_states"])
        exact_total = sum(e.seconds for e in result.waits.entries)
        assert live_total > 0.0
        assert exact_total > 0.0


class TestSampling:
    def test_sampled_estimates_carry_error_bounds(self):
        exact = _stream_only(StreamConfig(), rounds=60, seed=3)
        with exact:
            exact_result = exact.finalize()
        config = StreamConfig(sample_per_label=128, sample_seed=5)
        with _stream_only(config, rounds=60, seed=3) as analyzer:
            result = analyzer.finalize()
        sampling = result.sampling
        assert sampling is not None
        assert sampling["mode"] == "reservoir"
        assert sampling["per_label_reservoir"] == 128
        assert sampling["entries"], "no sampled wait-state estimates"
        for entry in sampling["entries"]:
            assert entry["sampled"] <= min(128, entry["population"])
            assert entry["estimate_s"] > 0.0
            assert entry["ci95_s"] == pytest.approx(1.96 * entry["stderr_s"])
        # The dominant estimate lands within its own 95% interval
        # (fixed seeds — deterministic, not a flaky statistical test).
        exact_by_key = {
            (e.category, e.label): e.seconds for e in exact_result.waits.entries
        }
        top = sampling["entries"][0]
        true_seconds = exact_by_key[(top["category"], top["label"])]
        assert abs(top["estimate_s"] - true_seconds) <= max(
            top["ci95_s"], 0.35 * true_seconds
        )

    def test_sampling_leaves_the_critical_path_exact(self):
        with _stream_only(StreamConfig(), rounds=30) as analyzer:
            exact = analyzer.finalize()
        with _stream_only(
            StreamConfig(sample_per_label=64), rounds=30
        ) as analyzer:
            sampled = analyzer.finalize()
        assert sampled.path == exact.path
        assert sampled.runtime_seconds == exact.runtime_seconds
        assert sampled.waits.efficiencies == exact.waits.efficiencies

    def test_sampling_is_seed_deterministic(self):
        documents = []
        for _ in range(2):
            with _stream_only(
                StreamConfig(sample_per_label=64, sample_seed=9), rounds=30
            ) as analyzer:
                result = analyzer.finalize()
                documents.append(json.dumps(result.sampling, sort_keys=True))
        assert documents[0] == documents[1]


class TestStreamingValidation:
    def test_wait_ending_before_arrival_is_rejected(self):
        """Same validation the batch graph applies, at finalize time."""

        class _Msg:
            src, dst, tag, nbytes, seq = 0, 1, "t", 8, 0
            send_time, arrival_time, label = 0.0, 5.0, "p2p"

        analyzer = TraceStreamAnalyzer()
        analyzer.state(0, "compute", 0.0, 1.0)
        analyzer.state(1, "p2p", 1.0, 2.0, kind="wait", cause=0)
        analyzer.comm(_Msg())
        with analyzer:
            with pytest.raises(TraceError, match="before its cause arrives"):
                analyzer.finalize()
