"""Tests for repro.tracing.timeline (ASCII Paraver view)."""

import pytest

from repro.errors import TraceError
from repro.tracing.recorder import TraceRecorder
from repro.tracing.timeline import render_timeline


def _recorder() -> TraceRecorder:
    recorder = TraceRecorder()
    # rank 0: compute 0-1s, alltoallv 1-2s
    recorder.state(0, "compute", 0.0, 1.0)
    recorder.state(0, "alltoallv", 1.0, 2.0)
    # rank 1: compute the whole window
    recorder.state(1, "compute", 0.0, 2.0)
    return recorder


class TestRenderTimeline:
    def test_one_row_per_rank(self):
        text = render_timeline(_recorder(), width=40)
        lines = text.splitlines()
        assert any(line.startswith("rank   0") for line in lines)
        assert any(line.startswith("rank   1") for line in lines)

    def test_states_occupy_their_halves(self):
        text = render_timeline(_recorder(), width=40)
        rank0 = next(l for l in text.splitlines() if l.startswith("rank   0"))
        cells = rank0.split("|")[1]
        first_half, second_half = cells[:20], cells[20:]
        assert first_half.count("#") > 15
        assert second_half.count("A") > 15

    def test_idle_cells_are_dots(self):
        recorder = TraceRecorder()
        recorder.state(0, "compute", 0.0, 0.5)
        recorder.state(0, "compute", 1.5, 2.0)
        text = render_timeline(recorder, width=40)
        cells = text.splitlines()[1].split("|")[1]
        assert "." in cells[12:28]

    def test_legend_lists_used_symbols(self):
        text = render_timeline(_recorder(), width=40)
        legend = text.splitlines()[-1]
        assert "A=" in legend and "#=" in legend and ".=idle" in legend

    def test_rank_filter(self):
        text = render_timeline(_recorder(), width=40, ranks=[1])
        assert "rank   0" not in text
        assert "rank   1" in text

    def test_window_selection(self):
        text = render_timeline(_recorder(), width=40, t_start=1.0, t_end=2.0)
        rank0 = next(l for l in text.splitlines() if l.startswith("rank   0"))
        cells = rank0.split("|")[1]
        assert cells.count("A") > 35  # whole window is the collective

    def test_unknown_labels_get_spare_symbols(self):
        recorder = TraceRecorder()
        recorder.state(0, "exotic-phase", 0.0, 1.0)
        text = render_timeline(recorder, width=20)
        assert "a=exotic-phase" in text.splitlines()[-1]

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            render_timeline(TraceRecorder())

    def test_bad_window_rejected(self):
        with pytest.raises(TraceError):
            render_timeline(_recorder(), t_start=5.0, t_end=1.0)

    def test_unknown_rank_filter_rejected(self):
        with pytest.raises(TraceError):
            render_timeline(_recorder(), ranks=[99])

    def test_narrow_width_rejected(self):
        with pytest.raises(TraceError):
            render_timeline(_recorder(), width=2)
