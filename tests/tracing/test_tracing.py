"""Tests for repro.tracing: events, recorder, Paraver export, analysis."""

import pytest

from repro.cluster import MpiJob, tibidabo
from repro.errors import TraceError
from repro.tracing.analysis import analyze_collectives
from repro.tracing.events import CommEvent, StateEvent
from repro.tracing.paraver import export_pcf, export_prv, export_row, parse_prv
from repro.tracing.recorder import NullTracer, TraceRecorder


class TestEvents:
    def test_state_duration(self):
        assert StateEvent(0, "compute", 1.0, 3.5).duration == 2.5

    def test_reversed_state_rejected(self):
        with pytest.raises(TraceError):
            StateEvent(0, "compute", 3.0, 1.0)

    def test_comm_latency(self):
        comm = CommEvent(0, 1, "t", 100, 1.0, 1.25, "send")
        assert comm.latency == 0.25

    def test_time_travelling_message_rejected(self):
        with pytest.raises(TraceError):
            CommEvent(0, 1, "t", 100, 2.0, 1.0, "send")

    def test_collective_instance_extraction(self):
        comm = CommEvent(0, 1, ("alltoallv", 3, 7), 100, 0.0, 1.0, "alltoallv")
        assert comm.collective_instance == ("alltoallv", 3)

    def test_plain_tags_have_no_instance(self):
        comm = CommEvent(0, 1, 42, 100, 0.0, 1.0, "send")
        assert comm.collective_instance is None


def _traced_job(num_ranks=8, nodes=8, seed=1):
    cluster = tibidabo(num_nodes=nodes, seed=seed)
    recorder = TraceRecorder()

    def program(rank):
        yield rank.compute(0.01, label="work")
        yield from rank.alltoallv([5000] * rank.size)
        yield rank.compute(0.005, label="work")
        yield from rank.barrier()

    MpiJob(cluster, num_ranks, program, tracer=recorder).run()
    return recorder


class TestRecorder:
    def test_null_tracer_accepts_everything(self):
        tracer = NullTracer()
        tracer.state(0, "x", 0.0, 1.0)
        tracer.comm(object())

    def test_records_states_and_comms(self):
        recorder = _traced_job()
        assert recorder.num_ranks == 8
        assert recorder.states
        assert recorder.comms
        recorder.check_sanity()

    def test_time_in_state(self):
        recorder = _traced_job()
        assert recorder.time_in_state(0, "work") == pytest.approx(0.015, rel=0.01)

    def test_states_of_filters(self):
        recorder = _traced_job()
        labels = {s.label for s in recorder.states_of(0)}
        assert "work" in labels
        assert all(s.rank == 0 for s in recorder.states_of(0))

    def test_comms_labelled(self):
        recorder = _traced_job()
        a2a = recorder.comms_labelled("alltoallv")
        assert len(a2a) == 8 * 7  # one message per ordered pair

    def test_end_time_is_max_timestamp(self):
        recorder = _traced_job()
        assert recorder.end_time >= max(s.t1 for s in recorder.states)


class TestParaver:
    def test_export_has_header_and_records(self):
        recorder = _traced_job()
        text = export_prv(recorder)
        lines = text.splitlines()
        assert lines[0].startswith("#Paraver")
        assert any(line.startswith("1:") for line in lines)
        assert any(line.startswith("3:") for line in lines)

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            export_prv(TraceRecorder())

    def test_roundtrip_preserves_counts_and_labels(self):
        recorder = _traced_job()
        back = parse_prv(export_prv(recorder))
        assert len(back.states) == len(recorder.states)
        assert len(back.comms) == len(recorder.comms)
        assert {s.label for s in back.states} == {s.label for s in recorder.states}

    def test_roundtrip_preserves_timestamps_to_ns(self):
        recorder = _traced_job()
        back = parse_prv(export_prv(recorder))
        for original, parsed in zip(recorder.states[:20], back.states[:20]):
            assert parsed.t0 == pytest.approx(original.t0, abs=2e-9)
            assert parsed.rank == original.rank

    def test_missing_header_rejected(self):
        with pytest.raises(TraceError):
            parse_prv("1:1:1:1:1:0:10:1\n")

    def test_malformed_line_reports_line_number(self):
        recorder = _traced_job()
        text = export_prv(recorder) + "1:bogus\n"
        with pytest.raises(TraceError, match="malformed"):
            parse_prv(text)

    def test_unsupported_record_type_rejected(self):
        with pytest.raises(TraceError):
            parse_prv("#Paraver x\n9:1:2:3\n")

    def test_pcf_lists_all_state_labels(self):
        recorder = _traced_job()
        pcf = export_pcf(recorder)
        assert "STATES" in pcf and "STATES_COLOR" in pcf
        for label in {s.label for s in recorder.states}:
            assert label in pcf

    def test_pcf_state_table_matches_prv_labels(self):
        """The .pcf STATES section and the .prv round-trip must agree
        on the set of state labels."""
        recorder = _traced_job()
        pcf = export_pcf(recorder)
        states_section = pcf.split("STATES\n", 1)[1].split("STATES_COLOR", 1)[0]
        pcf_labels = {
            line.split(None, 1)[1]
            for line in states_section.splitlines()
            if line and line.split(None, 1)[0].isdigit()
        }
        back = parse_prv(export_prv(recorder))
        assert {s.label for s in back.states} | {"Idle"} == pcf_labels | {"Idle"}

    def test_row_names_every_rank(self):
        recorder = _traced_job()
        row = export_row(recorder)
        assert f"LEVEL THREAD SIZE {recorder.num_ranks}" in row
        assert "rank 0" in row and f"rank {recorder.num_ranks - 1}" in row

    def test_companion_files_need_content(self):
        with pytest.raises(TraceError):
            export_pcf(TraceRecorder())
        with pytest.raises(TraceError):
            export_row(TraceRecorder())


class TestAnalysis:
    def test_instances_grouped_per_invocation(self):
        cluster = tibidabo(num_nodes=8, seed=1)
        recorder = TraceRecorder()

        def program(rank):
            for _ in range(3):
                yield rank.compute(0.001)
                yield from rank.alltoallv([2000] * rank.size)

        MpiJob(cluster, 8, program, tracer=recorder).run()
        report = analyze_collectives(recorder, "alltoallv")
        assert len(report.instances) == 3
        assert all(i.messages == 8 * 7 for i in report.instances)

    def test_no_collectives_rejected(self):
        recorder = _traced_job()
        with pytest.raises(TraceError):
            analyze_collectives(recorder, "bcast")

    def test_invalid_factor_rejected(self):
        recorder = _traced_job()
        with pytest.raises(TraceError):
            analyze_collectives(recorder, "alltoallv", delay_factor=1.0)

    def test_uncongested_job_has_no_delays(self):
        cluster = tibidabo(num_nodes=8, seed=1, upgraded_switches=True)
        recorder = TraceRecorder()

        def program(rank):
            for _ in range(4):
                yield rank.compute(0.01)
                yield from rank.alltoallv([2000] * rank.size)

        MpiJob(cluster, 8, program, tracer=recorder).run()
        report = analyze_collectives(recorder, "alltoallv", delay_factor=5.0)
        assert report.delayed_fraction < 0.3

    def test_congested_36_core_run_is_mostly_delayed(self):
        """The Figure 4 observation: 'when using 36 cores most of these
        collective communications are longer and delayed'."""
        from repro.apps import BigDFT
        cluster = tibidabo(num_nodes=18, seed=7)
        recorder = TraceRecorder()
        app = BigDFT()
        MpiJob(cluster, 36, app.rank_program(cluster, 36), tracer=recorder).run()
        report = analyze_collectives(recorder, "alltoallv")
        assert report.delayed_fraction > 0.5
        # Mixed impact: some instances hit all ranks, others only part.
        partial = [i for i in report.delayed if not i.all_ranks_delayed]
        assert partial
