"""Tests for Scalasca-style wait-state classification and POP metrics."""

import pytest

from repro.cluster import MpiJob, tibidabo
from repro.errors import TraceError
from repro.tracing.recorder import TraceRecorder
from repro.tracing.waitstates import (
    BENIGN_CATEGORIES,
    WAIT_CATEGORIES,
    EfficiencyReport,
    classify_wait_states,
    efficiency_report,
)


class _Msg:
    def __init__(self, src, dst, send_time, arrival_time, label, seq, tag="t"):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = 1000
        self.send_time = send_time
        self.arrival_time = arrival_time
        self.label = label
        self.seq = seq


def _clean_peers(rec, label="p2p", n=4, latency=0.1, seq0=100):
    """Add n clean messages so the label's baseline is `latency`."""
    for i in range(n):
        rec.comm(_Msg(2, 3, 10.0 + i, 10.0 + i + latency, label, seq=seq0 + i))


class TestClassification:
    def test_genuine_late_sender(self):
        # The sender computes right up to the send: its lateness bottoms
        # out in intrinsic work, so the wait is charged as late-sender.
        rec = TraceRecorder()
        rec.state(0, "work", 0.0, 5.0, kind="compute")
        rec.comm(_Msg(0, 1, 5.0, 5.1, "p2p", seq=1))
        rec.state(1, "recv", 0.0, 5.1, kind="wait", cause=1)
        _clean_peers(rec)
        report = classify_wait_states(rec)
        assert report.seconds("late-sender", "recv") == pytest.approx(5.0)
        assert report.seconds("transfer", "recv") == pytest.approx(0.1)
        assert report.dominant.category == "late-sender"

    def test_congested_message_is_switch_contention(self):
        rec = TraceRecorder()
        # Baseline latency 0.1s; the watched message takes 2.1s.
        _clean_peers(rec, n=5, latency=0.1)
        rec.comm(_Msg(0, 1, 0.0, 2.1, "p2p", seq=1))
        rec.state(1, "recv", 0.0, 2.1, kind="wait", cause=1)
        report = classify_wait_states(rec)
        assert report.seconds("switch-contention", "recv") == pytest.approx(
            2.0, rel=0.01
        )
        assert report.seconds("transfer", "recv") == pytest.approx(0.1, rel=0.01)
        assert report.dominant.category == "switch-contention"

    def test_clean_in_flight_is_transfer_only(self):
        rec = TraceRecorder()
        _clean_peers(rec, n=5, latency=0.1)
        rec.comm(_Msg(0, 1, 0.0, 0.1, "p2p", seq=1))
        rec.state(1, "recv", 0.0, 0.1, kind="wait", cause=1)
        report = classify_wait_states(rec)
        assert report.seconds("switch-contention") == 0.0
        assert report.seconds("transfer", "recv") == pytest.approx(0.1)

    def test_delay_cost_propagates_through_late_sender(self):
        # Rank 1 sends late because *it* was blocked on a congested
        # message from rank 0 — rank 2's wait must be billed to the
        # switch, not to rank 1.
        rec = TraceRecorder()
        _clean_peers(rec, n=5, latency=0.1)
        rec.comm(_Msg(0, 1, 0.0, 3.0, "p2p", seq=1))
        rec.state(1, "recv", 0.0, 3.0, kind="wait", cause=1)
        rec.comm(_Msg(1, 2, 3.0, 3.1, "p2p", seq=2))
        rec.state(1, "send", 3.0, 3.1, kind="send", cause=2)
        rec.state(2, "recv", 0.0, 3.1, kind="wait", cause=2)
        report = classify_wait_states(rec)
        # Rank 2 blocked 3.1s: 0.1 in flight (transfer) + 3.0 pre-send,
        # of which ~2.9 traces to the congested hop and ~0.1 to its
        # baseline transfer.  Nothing is genuine late-sender.
        assert report.seconds("late-sender") == pytest.approx(0.0, abs=1e-9)
        assert report.seconds("switch-contention", "recv") > 2.5
        assert report.dominant.category == "switch-contention"

    def test_buffered_messages_are_late_receiver_and_benign(self):
        rec = TraceRecorder()
        _clean_peers(rec, n=5, latency=0.1)
        rec.comm(_Msg(0, 1, 0.0, 0.1, "p2p", seq=1))
        # Receive posted 4s after arrival: mailbox hit, zero-length wait.
        rec.state(1, "recv", 4.1, 4.1, kind="wait", cause=1)
        report = classify_wait_states(rec)
        assert report.seconds("late-receiver", "recv") == pytest.approx(4.0)
        assert report.dominant is None  # benign categories never dominate
        assert report.blocked_seconds == pytest.approx(0.0)
        assert report.total_wait_seconds == pytest.approx(4.0)

    def test_collective_imbalance_counts_introduced_skew_once(self):
        rec = TraceRecorder()
        # Instance 0: rank 1 enters 2s after rank 0 (introduced skew).
        rec.comm(_Msg(0, 1, 0.0, 0.1, "x", seq=1, tag=("alltoallv", 0, 0)))
        rec.comm(_Msg(1, 0, 2.0, 2.1, "x", seq=2, tag=("alltoallv", 0, 1)))
        # Instance 1: both enter 1s after their instance-0 exits — the
        # same 2s skew is inherited, not new.
        rec.comm(_Msg(0, 1, 3.1, 3.2, "x", seq=3, tag=("alltoallv", 1, 0)))
        rec.comm(_Msg(1, 0, 1.1, 1.2, "x", seq=4, tag=("alltoallv", 1, 1)))
        rec.state(0, "work", 0.0, 3.2, kind="compute")
        report = classify_wait_states(rec)
        assert report.seconds("collective-imbalance", "alltoallv") == pytest.approx(
            2.0
        )

    def test_unstamped_traces_classify_nothing(self):
        rec = TraceRecorder()
        rec.state(0, "recv", 0.0, 1.0, kind="wait", cause=-1)
        rec.comm(_Msg(0, 1, 0.0, 0.1, "p2p", seq=-1))
        report = classify_wait_states(rec)
        assert report.total_wait_seconds == 0.0
        assert report.dominant is None

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            classify_wait_states(TraceRecorder())

    def test_rejects_bad_contention_factor(self):
        rec = TraceRecorder()
        rec.state(0, "work", 0.0, 1.0, kind="compute")
        with pytest.raises(TraceError):
            classify_wait_states(rec, contention_factor=1.0)

    def test_categories_are_known(self):
        rec = TraceRecorder()
        _clean_peers(rec, n=5, latency=0.1)
        rec.comm(_Msg(0, 1, 0.0, 3.0, "p2p", seq=1))
        rec.state(1, "recv", 0.0, 3.0, kind="wait", cause=1)
        report = classify_wait_states(rec)
        assert {e.category for e in report.entries} <= set(WAIT_CATEGORIES)
        assert BENIGN_CATEGORIES <= set(WAIT_CATEGORIES)


class TestEfficiencies:
    def test_pop_identity(self):
        report = EfficiencyReport(
            runtime_seconds=10.0, useful_seconds=(8.0, 6.0, 4.0)
        )
        assert report.parallel_efficiency == pytest.approx(
            report.load_balance * report.communication_efficiency
        )
        assert report.load_balance == pytest.approx(6.0 / 8.0)
        assert report.communication_efficiency == pytest.approx(0.8)

    def test_degenerate_trace(self):
        report = EfficiencyReport(runtime_seconds=0.0, useful_seconds=(0.0,))
        assert report.load_balance == 1.0
        assert report.parallel_efficiency == 1.0

    def test_from_recorder(self):
        rec = TraceRecorder()
        rec.state(0, "work", 0.0, 4.0, kind="compute")
        rec.state(1, "work", 0.0, 2.0, kind="compute")
        rec.state(1, "recv", 2.0, 4.0, kind="wait")
        report = efficiency_report(rec)
        assert report.useful_seconds == (4.0, 2.0)
        assert report.runtime_seconds == pytest.approx(4.0)
        assert report.load_balance == pytest.approx(0.75)

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            efficiency_report(TraceRecorder())


class TestFigure4Signal:
    """The acceptance-critical end-to-end property, at reduced scale."""

    @staticmethod
    def _program(rank):
        for _ in range(4):
            yield rank.compute(0.05, label="scf")
            yield from rank.alltoallv([100_000] * rank.size)

    def test_switch_contention_dominates_congested_alltoallv(self):
        cluster = tibidabo(num_nodes=12, seed=1)
        rec = TraceRecorder()
        MpiJob(cluster, 24, self._program, tracer=rec).run()
        report = classify_wait_states(rec)
        top = report.dominant
        assert top is not None
        assert top.category == "switch-contention"
        assert top.label == "alltoallv"
        assert "switch-contention" in report.explain()

    def test_upgraded_switches_remove_the_pathology(self):
        cluster = tibidabo(num_nodes=12, seed=1, upgraded_switches=True)
        rec = TraceRecorder()
        MpiJob(cluster, 24, self._program, tracer=rec).run()
        report = classify_wait_states(rec)
        contention = report.seconds("switch-contention")
        assert contention < 0.1 * max(report.blocked_seconds, 1e-12)
